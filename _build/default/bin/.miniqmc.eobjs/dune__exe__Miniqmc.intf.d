bin/miniqmc.mli:
