bin/oqmc_run.ml: Arg Build Builder Checkpoint Cmd Cmdliner Dmc Input List Oqmc_core Oqmc_workloads Printf Spec String System Term Validation Variant Vmc
