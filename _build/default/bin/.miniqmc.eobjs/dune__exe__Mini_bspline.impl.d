bin/mini_bspline.ml: Arg Array Cmd Cmdliner List Oqmc_containers Oqmc_rng Oqmc_spline Precision Printf Term Timers Xoshiro
