bin/mini_disttable.ml: Arg Cmd Cmdliner Dt_aa_forward Dt_aa_ref Dt_aa_soa Lattice List Oqmc_containers Oqmc_particle Oqmc_rng Particle_set Precision Printf Term Timers Vec3 Xoshiro
