bin/oqmc_run.mli:
