bin/mini_bspline.mli:
