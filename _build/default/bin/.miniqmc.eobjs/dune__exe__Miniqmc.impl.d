bin/miniqmc.ml: Arg Build Builder Cmd Cmdliner Engine_api Format Oqmc_containers Oqmc_core Oqmc_particle Oqmc_rng Oqmc_workloads Printf Spec Term Timers Variant Wbuffer Xoshiro
