open Oqmc_containers
open Oqmc_core
open Oqmc_workloads
open Oqmc_rng

(* miniQMC: the full-path miniapp (Sec. 7.1).  Runs the drift-and-diffusion
   sweep plus measurement of one workload in one build variant with the
   kernel timers on, and prints throughput, the hot-spot profile and the
   memory footprint — the numbers the paper's miniapps were built to
   expose.  Command-line options change the problem for fast prototyping,
   exactly as the paper describes. *)

let run workload variant reduction sweeps walkers tau with_nlpp seed =
  let spec = Spec.find workload in
  let variant = Variant.of_string variant in
  let sys = Builder.make ~seed ~with_nlpp ~reduction spec in
  let timers = Timers.create () in
  let engine = Build.engine ~timers ~variant ~seed sys in
  let rng = Xoshiro.create (seed + 1) in
  Printf.printf "miniqmc: %s  variant=%s  N=%d  reduction=%d  nlpp=%b\n"
    spec.Spec.wname
    (Variant.to_string variant)
    engine.Engine_api.n_electrons reduction with_nlpp;
  (* warmup *)
  for _ = 1 to 3 do
    ignore (engine.Engine_api.sweep rng ~tau)
  done;
  Timers.reset timers;
  let w = Oqmc_particle.Walker.create engine.Engine_api.n_electrons in
  engine.Engine_api.register_walker w;
  let accepted = ref 0 in
  let t0 = Timers.now () in
  for wi = 1 to walkers do
    engine.Engine_api.restore_walker w;
    for _ = 1 to sweeps do
      let r = engine.Engine_api.sweep rng ~tau in
      accepted := !accepted + r.Engine_api.accepted
    done;
    let el = engine.Engine_api.measure () in
    engine.Engine_api.save_walker w;
    if wi = 1 then Printf.printf "E_L (first walker) = %.6f\n" el
  done;
  let wall = Timers.now () -. t0 in
  let steps = walkers * sweeps in
  Printf.printf "throughput: %.1f steps/s  (%d steps in %.3f s)\n"
    (float_of_int steps /. wall)
    steps wall;
  Printf.printf "acceptance: %.3f\n"
    (float_of_int !accepted
    /. float_of_int (steps * engine.Engine_api.n_electrons));
  Printf.printf "engine memory: %.2f MB   walker buffer: %.1f kB\n"
    (float_of_int (engine.Engine_api.memory_bytes ()) /. 1e6)
    (float_of_int (Wbuffer.bytes w.Oqmc_particle.Walker.buffer) /. 1024.);
  Format.printf "@[<v>kernel timers:@,%a@]@." Timers.pp timers

open Cmdliner

let workload =
  Arg.(
    value & opt string "NiO-32"
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Workload: Graphite, Be-64, NiO-32 or NiO-64.")

let variant =
  Arg.(
    value & opt string "Current"
    & info [ "v"; "variant" ] ~docv:"VARIANT"
        ~doc:"Build variant: Ref, Ref+MP, Current or Current(f64).")

let reduction =
  Arg.(
    value & opt int 8
    & info [ "r"; "reduction" ] ~docv:"R"
        ~doc:"Uniform problem-size reduction factor.")

let sweeps =
  Arg.(value & opt int 20 & info [ "s"; "sweeps" ] ~doc:"Sweeps per walker.")

let walkers =
  Arg.(value & opt int 4 & info [ "n"; "walkers" ] ~doc:"Number of walkers.")

let tau = Arg.(value & opt float 0.05 & info [ "t"; "tau" ] ~doc:"Time step.")

let nlpp =
  Arg.(
    value & flag
    & info [ "nlpp" ] ~doc:"Enable the non-local pseudopotential.")

let seed = Arg.(value & opt int 20170101 & info [ "seed" ] ~doc:"RNG seed.")

let cmd =
  let doc = "miniQMC: the full-path QMC miniapp with kernel timers" in
  Cmd.v
    (Cmd.info "miniqmc" ~doc)
    Term.(
      const run $ workload $ variant $ reduction $ sweeps $ walkers $ tau
      $ nlpp $ seed)

let () = exit (Cmd.eval cmd)
