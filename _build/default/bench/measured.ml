open Oqmc_containers
open Oqmc_core
open Oqmc_rng

(* Measured-run helpers: build an engine for a variant, run instrumented
   sweeps, and report throughput plus the per-kernel timer profile. *)

type run = {
  variant : Variant.t;
  throughput : float; (* sweeps (MC steps × walkers) per second *)
  step_time : float; (* seconds per walker step *)
  profile : (string * float) list;
  timers : Timers.t;
  acceptance : float;
  memory_bytes : int;
  walker_bytes : int; (* serialized walker size (buffer + positions) *)
}

(* One timed iteration mirrors a DMC generation for one walker: restore
   the wavefunction state from the buffer, sweep, measure, serialize the
   state back — so the Ref policy pays for its 5N² buffer traffic exactly
   where production runs do. *)
let run_variant ?(sweeps = 30) ?(measure_every = 5) ~variant ~seed sys =
  let timers = Timers.create () in
  let engine = Build.engine ~timers ~variant ~seed sys in
  let rng = Xoshiro.create (seed + 17) in
  let w = Oqmc_particle.Walker.create engine.Engine_api.n_electrons in
  engine.Engine_api.register_walker w;
  (* Equilibrate a little and warm the caches before timing. *)
  for _ = 1 to 5 do
    ignore (engine.Engine_api.sweep rng ~tau:0.05)
  done;
  engine.Engine_api.save_walker w;
  Timers.reset timers;
  let accepted = ref 0 and proposed = ref 0 in
  let t0 = Timers.now () in
  for s = 1 to sweeps do
    engine.Engine_api.restore_walker w;
    let r = engine.Engine_api.sweep rng ~tau:0.05 in
    accepted := !accepted + r.Engine_api.accepted;
    proposed := !proposed + r.Engine_api.proposed;
    if s mod measure_every = 0 then ignore (engine.Engine_api.measure ());
    engine.Engine_api.save_walker w
  done;
  let wall = Timers.now () -. t0 in
  {
    variant;
    throughput = float_of_int sweeps /. wall;
    step_time = wall /. float_of_int sweeps;
    profile = Timers.profile timers;
    timers;
    acceptance = float_of_int !accepted /. float_of_int (max 1 !proposed);
    memory_bytes = engine.Engine_api.memory_bytes ();
    walker_bytes = Oqmc_particle.Walker.message_bytes w;
  }

(* Per-kernel time ratio between two runs (speedup of [b] over [a]). *)
let kernel_speedups a b =
  List.filter_map
    (fun key ->
      let ta = Timers.total a.timers key and tb = Timers.total b.timers key in
      if ta > 0. && tb > 0. then Some (key, ta /. tb) else None)
    Report.kernel_order
