bench/measured.ml: Build Engine_api List Oqmc_containers Oqmc_core Oqmc_particle Oqmc_rng Report Timers Variant Xoshiro
