bench/main.mli:
