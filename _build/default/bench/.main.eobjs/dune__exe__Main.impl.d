bench/main.ml: Array Experiments Microbench Sys
