(* Delayed determinant updates (the paper's Sec. 8.4 outlook).

   Runs the same VMC problem with the standard Sherman–Morrison DetUpdate
   and with the delayed (Woodbury) scheme at several delay factors,
   checking that the physics is unchanged and showing where the blocked
   update starts to pay: the flush touches the O(N²) inverse once per k
   accepted moves instead of once per move, so its advantage grows with N
   once the inverse stops fitting in cache.

   Run with:  dune exec examples/delayed_update_demo.exe *)

open Oqmc_core
open Oqmc_workloads

let () =
  let system = Validation.electron_gas ~n_up:16 ~n_down:16 ~box:8.0 () in
  Printf.printf
    "delayed-update demo: %d electrons, VMC, Sherman-Morrison vs delayed\n"
    (System.n_electrons system);
  let run delay =
    let factory domain =
      let timers = Oqmc_containers.Timers.create () in
      Build.engine ~timers ?delay ~variant:Variant.Current_f64
        ~seed:(50 + domain) system
    in
    Vmc.run ~factory
      {
        Vmc.n_walkers = 2;
        warmup = 10;
        blocks = 4;
        steps_per_block = 10;
        tau = 0.2;
        seed = 51;
        n_domains = 1;
      }
  in
  let base = run None in
  Printf.printf "%-18s energy %10.5f +/- %.5f   %8.1f samples/s\n"
    "Sherman-Morrison" base.Vmc.energy base.Vmc.energy_error
    base.Vmc.throughput;
  List.iter
    (fun k ->
      let res = run (Some k) in
      Printf.printf "%-18s energy %10.5f +/- %.5f   %8.1f samples/s\n"
        (Printf.sprintf "delayed k=%d" k)
        res.Vmc.energy res.Vmc.energy_error res.Vmc.throughput;
      if abs_float (res.Vmc.energy -. base.Vmc.energy) > 0.05 then
        Printf.printf "   WARNING: energies diverge beyond statistics!\n")
    [ 4; 8; 16 ];
  Printf.printf
    "\nSee `dune exec bench/main.exe -- --exp delayed` for the isolated \
     kernel crossover sweep.\n"
