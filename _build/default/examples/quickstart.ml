(* Quickstart: variational Monte Carlo for an interacting electron gas.

   This walks through the public API end to end:
   1. describe a physical system (System.t),
   2. pick a build variant (the paper's Ref / Ref+MP / Current),
   3. run the VMC driver and read off energy, variance and throughput.

   Run with:  dune exec examples/quickstart.exe *)

open Oqmc_core
open Oqmc_workloads

let () =
  (* 12 electrons (6 up, 6 down) in a periodic cubic box with plane-wave
     orbitals and a two-body Jastrow factor — a miniature homogeneous
     electron gas. *)
  let system = Validation.electron_gas ~n_up:6 ~n_down:6 ~box:6.0 () in
  Printf.printf "system: %d electrons, periodic box\n"
    (System.n_electrons system);

  (* The engine factory fixes the build variant.  [Variant.Current] is the
     paper's fully optimized design: SoA distance tables, mixed precision,
     compute-on-the-fly Jastrow. *)
  let factory = Build.factory ~variant:Variant.Current ~seed:42 system in

  let params =
    {
      Vmc.n_walkers = 8;
      warmup = 50; (* equilibration sweeps per walker *)
      blocks = 10;
      steps_per_block = 20;
      tau = 0.3; (* Metropolis time step *)
      seed = 7;
      n_domains = 1; (* walker parallelism over OCaml domains *)
    }
  in
  let res = Vmc.run ~factory params in

  Printf.printf "VMC energy   : %.5f +/- %.5f Ha\n" res.Vmc.energy
    res.Vmc.energy_error;
  Printf.printf "variance     : %.5f\n" res.Vmc.variance;
  Printf.printf "acceptance   : %.1f%%\n" (100. *. res.Vmc.acceptance);
  Printf.printf "throughput   : %.0f samples/s\n" res.Vmc.throughput;

  (* The same run in the Ref (baseline) variant — identical physics, the
     engine internals are the AoS / store-over-compute design. *)
  let factory_ref = Build.factory ~variant:Variant.Ref ~seed:42 system in
  let res_ref = Vmc.run ~factory:factory_ref params in
  Printf.printf "\nRef variant gives the same physics: E = %.5f vs %.5f\n"
    res_ref.Vmc.energy res.Vmc.energy;
  Printf.printf "energy difference: %.2e (within statistics + precision)\n"
    (abs_float (res_ref.Vmc.energy -. res.Vmc.energy))
