(* Pair-correlation function of the electron gas.

   Runs VMC with the g(r) estimator twice — with and without the two-body
   Jastrow factor — and prints both histograms.  The Jastrow digs the
   correlation hole at contact (g(0) suppressed) while leaving the
   long-range structure near 1; this is the correlation physics the
   paper's J2 kernels spend their cycles on.

   Run with:  dune exec examples/pair_correlation.exe *)

open Oqmc_core
open Oqmc_particle
open Oqmc_workloads

let box = 5.5
let n_up = 4
let n_down = 4

let run_gofr ~with_jastrow =
  let sys =
    if with_jastrow then Validation.electron_gas ~n_up ~n_down ~box ()
    else
      System.validate
        {
          System.name = "heg-nojastrow";
          lattice = Lattice.cubic box;
          n_up;
          n_down;
          ions = [];
          spo =
            Oqmc_wavefunction.Spo_analytic.plane_waves
              ~lattice:(Lattice.cubic box) ~n_orb:(max n_up n_down);
          j1 = None;
          j2 = None;
          ham =
            {
              System.coulomb = true;
              ewald = false;
              harmonic = None;
              nlpp = None;
            };
        }
  in
  let gofr = Observables.Gofr.create ~bins:12 ~lattice:(Lattice.cubic box) () in
  let res =
    Vmc.run
      ~observe:(Observables.Gofr.accumulate gofr)
      ~factory:(Build.factory ~variant:Variant.Current ~seed:8 sys)
      {
        Vmc.n_walkers = 6;
        warmup = 50;
        blocks = 30;
        steps_per_block = 10;
        tau = 0.3;
        seed = 9;
        n_domains = 1;
      }
  in
  (res, Observables.Gofr.result gofr)

let () =
  Printf.printf "pair correlation of a %d-electron gas (box %.1f bohr)\n"
    (n_up + n_down) box;
  let res_j, g_j = run_gofr ~with_jastrow:true in
  let res_0, g_0 = run_gofr ~with_jastrow:false in
  Printf.printf "E with Jastrow    : %.4f +/- %.4f  (var %.3f)\n"
    res_j.Vmc.energy res_j.Vmc.energy_error res_j.Vmc.variance;
  Printf.printf "E without Jastrow : %.4f +/- %.4f  (var %.3f)\n\n"
    res_0.Vmc.energy res_0.Vmc.energy_error res_0.Vmc.variance;
  Printf.printf "%8s %14s %14s\n" "r(bohr)" "g(r) Jastrow" "g(r) bare";
  Array.iteri
    (fun i (r, gj) ->
      let _, g0 = g_0.(i) in
      Printf.printf "%8.2f %14.3f %14.3f\n" r gj g0)
    g_j;
  Printf.printf
    "\nThe Jastrow-dressed g(r) is suppressed at contact (the correlation \
     hole) and both\ncurves approach 1 at large separation.\n"
