(* Graphite throughput benchmark (the CORAL-style workload of Sec. 4.1).

   Measures MC-sample throughput of the scaled Graphite benchmark across
   build variants and domain counts — the figure of merit P = M·<Nw>/T of
   Sec. 6.2 that all of the paper's speedups are expressed in.

   Run with:  dune exec examples/graphite_throughput.exe *)

open Oqmc_core
open Oqmc_workloads

let () =
  let system =
    Builder.make ~reduction:10 ~with_nlpp:false ~seed:99 Spec.graphite
  in
  Printf.printf
    "Graphite throughput benchmark: %d electrons, VMC sampling\n"
    (System.n_electrons system);
  Printf.printf "%-14s %8s %14s %12s\n" "variant" "domains" "samples/s"
    "rel.";
  let baseline = ref 0. in
  List.iter
    (fun variant ->
      List.iter
        (fun n_domains ->
          let factory = Build.factory ~variant ~seed:5 system in
          let res =
            Vmc.run ~factory
              {
                Vmc.n_walkers = 4 * n_domains;
                warmup = 10;
                blocks = 4;
                steps_per_block = 10;
                tau = 0.1;
                seed = 6;
                n_domains;
              }
          in
          if !baseline = 0. then baseline := res.Vmc.throughput;
          Printf.printf "%-14s %8d %14.1f %11.2fx\n"
            (Variant.to_string variant)
            n_domains res.Vmc.throughput
            (res.Vmc.throughput /. !baseline))
        [ 1; 2 ])
    [ Variant.Ref; Variant.Ref_mp; Variant.Current ];
  Printf.printf
    "\nThroughput is the paper's figure of merit; on SIMD hardware the \
     Current engine's\nvectorizable kernels add the 2-4.5x on top of what \
     layout and precision give here.\n"
