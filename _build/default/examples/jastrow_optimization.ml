(* Jastrow optimization: producing functors like the paper's Fig. 3.

   The two-body functor u(r) = a·e^{−r/f}·(1 − (r/rc)²)² is parameterized
   by its contact amplitude and range, and the optimizer minimizes the
   VMC variance of an interacting electron gas over (a, f).  This is the
   wavefunction-optimization step that precedes every production DMC run;
   the optimized curves are what Fig. 3 plots for NiO.

   Run with:  dune exec examples/jastrow_optimization.exe *)

open Oqmc_core
open Oqmc_particle
open Oqmc_workloads
open Oqmc_spline

let box = 6.0
let n_up = 4
let n_down = 4

let system_of p =
  let amplitude = Float.max 0.01 p.(0) in
  let range = Float.max 0.2 p.(1) in
  let lattice = Lattice.cubic box in
  let cutoff = Lattice.wigner_seitz_radius lattice in
  let target r =
    amplitude *. exp (-.r /. range) *. Jastrow_sets.smooth_cut r cutoff
  in
  let u =
    Cubic_spline_1d.fit ~f:target ~deriv0:None ~deriv_cut:(Some 0.) ~cutoff
      ~intervals:10 ()
  in
  System.validate
    {
      System.name = "heg-jopt";
      lattice;
      n_up;
      n_down;
      ions = [];
      spo =
        Oqmc_wavefunction.Spo_analytic.plane_waves ~lattice
          ~n_orb:(max n_up n_down);
      j1 = None;
      j2 = Some [| [| u; u |]; [| u; u |] |];
      ham = { System.coulomb = true; ewald = false; harmonic = None; nlpp = None };
    }

let () =
  Printf.printf
    "optimizing a 2-parameter J2 functor for a %d-electron gas\n"
    (n_up + n_down);
  let start = [| 0.05; 0.5 |] in
  let r =
    Optimizer.optimize ~objective:(Optimizer.Mixed 2.0)
      ~vmc_params:
        {
          Vmc.n_walkers = 4;
          warmup = 30;
          blocks = 4;
          steps_per_block = 10;
          tau = 0.3;
          seed = 7;
          n_domains = 1;
        }
      ~max_iter:25 ~tol:1e-4 ~init_step:0.2 ~system_of start
  in
  (match r.Optimizer.history with
  | first :: _ ->
      Printf.printf "start : a=%.3f f=%.3f  E=%.4f  var=%.4f\n"
        first.Optimizer.params.(0) first.Optimizer.params.(1)
        first.Optimizer.energy first.Optimizer.variance
  | [] -> ());
  Printf.printf "best  : a=%.3f f=%.3f  E=%.4f  var=%.4f  (%d evaluations)\n"
    r.Optimizer.best.(0) r.Optimizer.best.(1) r.Optimizer.vmc.Vmc.energy
    r.Optimizer.vmc.Vmc.variance r.Optimizer.nm.Nelder_mead.evaluations;
  (* Tabulate the optimized functor, Fig. 3 style. *)
  let sys = system_of r.Optimizer.best in
  (match sys.System.j2 with
  | Some m ->
      Printf.printf "\noptimized u(r):\n";
      Array.iter
        (fun (rr, u) -> Printf.printf "  r=%5.2f  u=%8.5f\n" rr u)
        (Jastrow_sets.tabulate m.(0).(0) ~points:8)
  | None -> ())
