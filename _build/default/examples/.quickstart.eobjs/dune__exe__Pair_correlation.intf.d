examples/pair_correlation.mli:
