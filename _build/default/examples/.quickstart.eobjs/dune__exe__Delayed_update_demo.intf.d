examples/delayed_update_demo.mli:
