examples/timestep_study.ml: Build Dmc List Oqmc_core Oqmc_particle Oqmc_wavefunction Oqmc_workloads Printf System Validation Variant Vmc
