examples/nio_dmc.mli:
