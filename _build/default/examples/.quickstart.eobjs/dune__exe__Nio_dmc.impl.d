examples/nio_dmc.ml: Build Builder Dmc Oqmc_core Oqmc_particle Oqmc_workloads Printf Spec Variant
