examples/delayed_update_demo.ml: Build List Oqmc_containers Oqmc_core Oqmc_workloads Printf System Validation Variant Vmc
