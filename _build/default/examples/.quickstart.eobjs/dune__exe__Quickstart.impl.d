examples/quickstart.ml: Build Oqmc_core Oqmc_workloads Printf System Validation Variant Vmc
