examples/graphite_throughput.mli:
