examples/timestep_study.mli:
