examples/quickstart.mli:
