examples/jastrow_optimization.mli:
