examples/graphite_throughput.ml: Build Builder List Oqmc_core Oqmc_workloads Printf Spec System Variant Vmc
