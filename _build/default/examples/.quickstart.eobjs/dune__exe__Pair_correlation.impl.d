examples/pair_correlation.ml: Array Build Lattice Observables Oqmc_core Oqmc_particle Oqmc_wavefunction Oqmc_workloads Printf System Validation Variant Vmc
