(* Diffusion Monte Carlo on the NiO-32 benchmark (scaled).

   The flagship workload of the paper: a strongly correlated oxide with
   Slater-Jastrow trial wavefunction, non-local pseudopotentials on Ni and
   O, and the full DMC machinery — branching walkers, trial-energy
   feedback and simulated-rank load balancing.  The run compares the Ref
   and Current engines on identical physics.

   Run with:  dune exec examples/nio_dmc.exe *)

open Oqmc_core
open Oqmc_workloads

let run_variant variant =
  (* reduction=12 shrinks NiO-32 to laptop size while keeping every code
     path (B-spline orbitals, J1/J2, NLPP quadrature) alive. *)
  let system =
    Builder.make ~reduction:12 ~with_nlpp:true ~seed:2017 Spec.nio32
  in
  let factory = Build.factory ~variant ~seed:3 system in
  let res =
    Dmc.run ~factory
      {
        Dmc.target_walkers = 12;
        warmup = 10;
        generations = 40;
        tau = 0.005;
        seed = 4;
        n_domains = 1;
        ranks = 8; (* simulated MPI ranks for the load-balance accounting *)
      }
  in
  Printf.printf "\n[%s]\n" (Variant.to_string variant);
  Printf.printf "  DMC energy      : %.5f +/- %.5f Ha\n" res.Dmc.energy
    res.Dmc.energy_error;
  Printf.printf "  population      : %.1f walkers (target 12)\n"
    res.Dmc.mean_population;
  Printf.printf "  acceptance      : %.1f%%\n" (100. *. res.Dmc.acceptance);
  Printf.printf "  tau_corr        : %.2f generations\n" res.Dmc.tau_corr;
  Printf.printf "  DMC efficiency  : kappa = %.3g\n" res.Dmc.efficiency;
  Printf.printf "  throughput      : %.1f samples/s\n" res.Dmc.throughput;
  Printf.printf "  walker exchange : %d messages, %.2f MB\n"
    res.Dmc.comm_messages
    (float_of_int res.Dmc.comm_bytes /. 1e6);
  res

let () =
  Printf.printf "DMC on NiO-32 (scaled), Ref vs Current engines\n";
  let r_ref = run_variant Variant.Ref in
  let r_cur = run_variant Variant.Current in
  Printf.printf
    "\nsame physics, different engines: dE = %.4f (statistical: ~%.4f)\n"
    (abs_float (r_ref.Dmc.energy -. r_cur.Dmc.energy))
    (r_ref.Dmc.energy_error +. r_cur.Dmc.energy_error);
  let msg r =
    match r.Dmc.final_walkers with
    | w :: _ -> float_of_int (Oqmc_particle.Walker.message_bytes w) /. 1024.
    | [] -> 0.
  in
  Printf.printf
    "serialized walker size drops with the Current engine (the paper's \
     22.5 MB reduction\non full NiO-64): Ref %.1f kB vs Current %.1f kB \
     per walker message\n"
    (msg r_ref) (msg r_cur)
