(* DMC time-step study.

   The DMC algorithm (Alg. 1 of the paper) carries a systematic error
   that vanishes as τ → 0; production practice runs several time steps
   and extrapolates.  With an exact trial wavefunction the local energy
   is constant, so this study uses a deliberately imperfect trial
   function (wrong trap frequency) on the harmonic validation system:
   VMC (the τ-independent variational bound) sits above the exact ground
   state, and DMC recovers the exact energy as τ shrinks despite the
   imperfect guidance.

   Run with:  dune exec examples/timestep_study.exe *)

open Oqmc_core
open Oqmc_workloads

let n = 3
let omega = 1.0
let trial_omega = 1.3 (* deliberately wrong trial wavefunction *)

let system =
  System.validate
    {
      System.name = "ho-timestep";
      lattice = Oqmc_particle.Lattice.open_cell;
      n_up = n;
      n_down = 0;
      ions = [];
      spo = Oqmc_wavefunction.Spo_analytic.harmonic ~omega:trial_omega ~n_orb:n;
      j1 = None;
      j2 = None;
      ham =
        { System.coulomb = false; ewald = false; harmonic = Some omega; nlpp = None };
    }

let () =
  let exact = Validation.harmonic_exact_energy ~n ~omega in
  let factory = Build.factory ~variant:Variant.Current_f64 ~seed:12 system in
  Printf.printf
    "DMC time-step study: %d fermions, trap w=%.1f, trial w=%.1f\n" n omega
    trial_omega;
  Printf.printf "exact ground-state energy: %.4f\n\n" exact;
  let vmc =
    Vmc.run ~factory
      {
        Vmc.n_walkers = 8;
        warmup = 100;
        blocks = 20;
        steps_per_block = 20;
        tau = 0.25;
        seed = 13;
        n_domains = 1;
      }
  in
  Printf.printf "VMC (variational bound): %.4f +/- %.4f\n\n" vmc.Vmc.energy
    vmc.Vmc.energy_error;
  Printf.printf "%8s %12s %12s %12s %12s\n" "tau" "E_DMC" "error" "E-exact"
    "acceptance";
  List.iter
    (fun tau ->
      let r =
        Dmc.run ~factory
          {
            Dmc.target_walkers = 24;
            warmup = int_of_float (2.0 /. tau /. 10.) + 20;
            generations = int_of_float (6.0 /. tau) + 100;
            tau;
            seed = 14;
            n_domains = 1;
            ranks = 1;
          }
      in
      Printf.printf "%8.3f %12.4f %12.4f %12.4f %11.1f%%\n" tau r.Dmc.energy
        r.Dmc.energy_error
        (r.Dmc.energy -. exact)
        (100. *. r.Dmc.acceptance))
    [ 0.08; 0.04; 0.02; 0.01 ];
  Printf.printf
    "\nDMC lands on the exact energy within error bars at every tau while \
     VMC stays pinned\nwell above it: projection beats the variational \
     bound even with an imperfect trial\nwavefunction.  Residual spread \
     at small tau is statistical plus the population-control\nbias of the \
     small (24-walker) ensemble; production runs extrapolate tau -> 0 at \
     fixed\nlarge population.\n"
