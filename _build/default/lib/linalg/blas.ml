open Oqmc_containers

(* Hand-rolled BLAS-1/2/3 kernels over precision-fixed aligned storage.

   These are the building blocks of DetUpdate (BLAS2 Sherman–Morrison) and
   of the delayed-update scheme (BLAS3 flush).  Accumulation is always in
   double; only loads/stores happen at the storage precision, matching the
   paper's mixed-precision policy. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)

  let dot (x : A.t) (y : A.t) n =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (A.unsafe_get x i *. A.unsafe_get y i)
    done;
    !acc

  let scal alpha (x : A.t) n =
    for i = 0 to n - 1 do
      A.unsafe_set x i (alpha *. A.unsafe_get x i)
    done

  let axpy alpha (x : A.t) (y : A.t) n =
    for i = 0 to n - 1 do
      A.unsafe_set y i (A.unsafe_get y i +. (alpha *. A.unsafe_get x i))
    done

  let copy (x : A.t) (y : A.t) n =
    for i = 0 to n - 1 do
      A.unsafe_set y i (A.unsafe_get x i)
    done

  let asum (x : A.t) n =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. abs_float (A.unsafe_get x i)
    done;
    !acc

  let nrm2 (x : A.t) n = sqrt (dot x x n)

  (* y := A x, A is rows×cols (row-major, leading dimension honored). *)
  let gemv (a : M.t) (x : A.t) (y : A.t) =
    let rows = M.rows a and cols = M.cols a and ld = M.ld a in
    let data = M.data a in
    for i = 0 to rows - 1 do
      let base = i * ld in
      let acc = ref 0. in
      for j = 0 to cols - 1 do
        acc := !acc +. (A.unsafe_get data (base + j) *. A.unsafe_get x j)
      done;
      A.unsafe_set y i !acc
    done

  (* y := Aᵀ x. *)
  let gemv_t (a : M.t) (x : A.t) (y : A.t) =
    let rows = M.rows a and cols = M.cols a and ld = M.ld a in
    let data = M.data a in
    for j = 0 to cols - 1 do
      A.unsafe_set y j 0.
    done;
    for i = 0 to rows - 1 do
      let base = i * ld in
      let xi = A.unsafe_get x i in
      for j = 0 to cols - 1 do
        A.unsafe_set y j (A.unsafe_get y j +. (xi *. A.unsafe_get data (base + j)))
      done
    done

  (* A := A + alpha · x yᵀ (rank-1 update). *)
  let ger alpha (x : A.t) (y : A.t) (a : M.t) =
    let rows = M.rows a and cols = M.cols a and ld = M.ld a in
    let data = M.data a in
    for i = 0 to rows - 1 do
      let base = i * ld in
      let axi = alpha *. A.unsafe_get x i in
      for j = 0 to cols - 1 do
        A.unsafe_set data (base + j)
          (A.unsafe_get data (base + j) +. (axi *. A.unsafe_get y j))
      done
    done

  (* C := alpha · A B + beta · C. *)
  let gemm ?(alpha = 1.) ?(beta = 0.) (a : M.t) (b : M.t) (c : M.t) =
    if M.cols a <> M.rows b || M.rows a <> M.rows c || M.cols b <> M.cols c
    then invalid_arg "Blas.gemm: shape mismatch";
    let n = M.rows a and k = M.cols a and m = M.cols b in
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        M.unsafe_set c i j (beta *. M.unsafe_get c i j)
      done;
      for p = 0 to k - 1 do
        let aip = alpha *. M.unsafe_get a i p in
        if aip <> 0. then
          for j = 0 to m - 1 do
            M.unsafe_set c i j
              (M.unsafe_get c i j +. (aip *. M.unsafe_get b p j))
          done
      done
    done

  let row_dot (a : M.t) i (x : A.t) =
    let ld = M.ld a and cols = M.cols a in
    let data = M.data a in
    let base = i * ld in
    let acc = ref 0. in
    for j = 0 to cols - 1 do
      acc := !acc +. (A.unsafe_get data (base + j) *. A.unsafe_get x j)
    done;
    !acc
end
