open Oqmc_containers

(** Hand-rolled BLAS-1/2/3 kernels at a fixed storage precision with
    double-precision accumulation — the substrate of the determinant update
    (Sherman–Morrison, BLAS2) and the delayed-update flush (BLAS3). *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module M : module type of Matrix.Make (R)

  val dot : A.t -> A.t -> int -> float
  val scal : float -> A.t -> int -> unit
  val axpy : float -> A.t -> A.t -> int -> unit
  (** [axpy alpha x y n] : [y := y + alpha x] over the first [n] entries. *)

  val copy : A.t -> A.t -> int -> unit
  val asum : A.t -> int -> float
  val nrm2 : A.t -> int -> float

  val gemv : M.t -> A.t -> A.t -> unit
  (** [gemv a x y] : [y := A x]. *)

  val gemv_t : M.t -> A.t -> A.t -> unit
  (** [gemv_t a x y] : [y := Aᵀ x]. *)

  val ger : float -> A.t -> A.t -> M.t -> unit
  (** [ger alpha x y a] : [A := A + alpha x yᵀ]. *)

  val gemm : ?alpha:float -> ?beta:float -> M.t -> M.t -> M.t -> unit
  (** [gemm a b c] : [C := alpha A B + beta C].
      @raise Invalid_argument on shape mismatch. *)

  val row_dot : M.t -> int -> A.t -> float
  (** Dot of matrix row [i] with a vector — the determinant-ratio kernel. *)
end
