open Oqmc_containers

(* Rank-1 Slater-determinant update (DetUpdate).

   The engine stores B = M⁻ᵀ, the transposed inverse of the Slater matrix
   M(i,j) = φⱼ(rᵢ).  Moving electron k replaces row k of M by the orbital
   vector v, so by the matrix-determinant lemma the acceptance ratio is the
   contiguous row dot  ρ = B[k]·v,  and on acceptance B is refreshed with a
   Sherman–Morrison rank-1 update:

     y  = B v − e_k            (gemv)
     B ← B − (1/ρ) y ⊗ B[k]    (ger)

   which is the BLAS2 O(N²) DetUpdate kernel of the paper. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)
  module B = Blas.Make (R)

  type workspace = { y : A.t; rk : A.t }

  let make_workspace n = { y = A.create n; rk = A.create n }

  let ratio (binv : M.t) k (v : A.t) = B.row_dot binv k v

  let update_row (binv : M.t) k (v : A.t) ~ratio ~(ws : workspace) =
    let n = M.rows binv in
    if abs_float ratio < 1e-300 then
      invalid_arg "Sherman_morrison.update_row: zero ratio";
    (* y := B v − e_k *)
    B.gemv binv v ws.y;
    A.unsafe_set ws.y k (A.unsafe_get ws.y k -. 1.);
    (* Save the pre-update row k, then apply the rank-1 correction. *)
    let data = M.data binv and ld = M.ld binv in
    let base_k = k * ld in
    for j = 0 to n - 1 do
      A.unsafe_set ws.rk j (A.unsafe_get data (base_k + j))
    done;
    let c = -1. /. ratio in
    for i = 0 to n - 1 do
      let f = c *. A.unsafe_get ws.y i in
      if f <> 0. then begin
        let base = i * ld in
        for j = 0 to n - 1 do
          A.unsafe_set data (base + j)
            (A.unsafe_get data (base + j) +. (f *. A.unsafe_get ws.rk j))
        done
      end
    done
end
