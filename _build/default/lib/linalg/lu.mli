open Oqmc_containers

(** LU decomposition with partial pivoting (double-precision work arrays).
    Provides determinants and the inverse-transpose initialization /
    periodic recompute of the Slater-determinant engine. *)

exception Singular
(** Raised when a pivot is exactly zero. *)

type decomp

val decompose_arrays : float array array -> int -> decomp
(** Decompose the leading [n × n] block of a row array-of-arrays.
    @raise Singular on a zero pivot. *)

val log_abs_det : decomp -> float
val det_sign : decomp -> float
val det : decomp -> float
val solve_vec : decomp -> float array -> float array
(** Solve [A x = b] using the decomposition. *)

val inverse_arrays : float array array -> int -> float array array

module Make (R : Precision.REAL) : sig
  module M : module type of Matrix.Make (R)

  val log_det : M.t -> float * float
  (** [(sign, log|det|)] of a square matrix.
      @raise Invalid_argument if not square.  @raise Singular. *)

  val det : M.t -> float

  val invert_transpose : src:M.t -> dst:M.t -> float * float
  (** [dst := src⁻¹ᵀ]; returns [(sign, log|det|)] of [src].  The transposed
      layout makes the PbyP determinant ratio a contiguous row dot. *)

  val invert : src:M.t -> dst:M.t -> unit
end
