lib/linalg/sherman_morrison.ml: Aligned Blas Matrix Oqmc_containers Precision
