lib/linalg/lu.ml: Array Matrix Oqmc_containers Precision
