lib/linalg/delayed_update.ml: Aligned Array Blas Matrix Oqmc_containers Precision
