lib/linalg/delayed_update.mli: Aligned Matrix Oqmc_containers Precision
