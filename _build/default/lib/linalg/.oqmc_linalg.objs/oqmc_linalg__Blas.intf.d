lib/linalg/blas.mli: Aligned Matrix Oqmc_containers Precision
