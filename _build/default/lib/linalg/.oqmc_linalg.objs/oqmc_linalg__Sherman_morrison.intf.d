lib/linalg/sherman_morrison.mli: Aligned Matrix Oqmc_containers Precision
