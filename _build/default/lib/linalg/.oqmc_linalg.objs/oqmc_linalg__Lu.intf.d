lib/linalg/lu.mli: Matrix Oqmc_containers Precision
