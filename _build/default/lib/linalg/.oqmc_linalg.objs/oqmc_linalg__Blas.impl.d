lib/linalg/blas.ml: Aligned Matrix Oqmc_containers Precision
