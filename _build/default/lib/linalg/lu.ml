open Oqmc_containers

(* LU decomposition with partial pivoting, in double precision.

   Used at walker initialization and for the periodic recompute-from-scratch
   step that keeps the mixed-precision inverse accurate (the paper's
   accuracy-preserving measure, Sec. 2).  Work happens on plain double
   arrays regardless of storage precision; results are rounded on store. *)

exception Singular

type decomp = {
  lu : float array array;
  pivots : int array;
  sign : float;
  n : int;
}

let decompose_arrays a n =
  let lu = Array.init n (fun i -> Array.copy a.(i)) in
  let pivots = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivot: largest magnitude in column k at/below row k. *)
    let pmax = ref (abs_float lu.(k).(k)) and prow = ref k in
    for i = k + 1 to n - 1 do
      let v = abs_float lu.(i).(k) in
      if v > !pmax then begin
        pmax := v;
        prow := i
      end
    done;
    if !pmax = 0. then raise Singular;
    if !prow <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!prow);
      lu.(!prow) <- tmp;
      let tp = pivots.(k) in
      pivots.(k) <- pivots.(!prow);
      pivots.(!prow) <- tp;
      sign := -. !sign
    end;
    let pivot = lu.(k).(k) in
    for i = k + 1 to n - 1 do
      let f = lu.(i).(k) /. pivot in
      lu.(i).(k) <- f;
      if f <> 0. then begin
        let row_i = lu.(i) and row_k = lu.(k) in
        for j = k + 1 to n - 1 do
          row_i.(j) <- row_i.(j) -. (f *. row_k.(j))
        done
      end
    done
  done;
  { lu; pivots; sign = !sign; n }

let log_abs_det d =
  let acc = ref 0. in
  for k = 0 to d.n - 1 do
    acc := !acc +. log (abs_float d.lu.(k).(k))
  done;
  !acc

let det_sign d =
  let s = ref d.sign in
  for k = 0 to d.n - 1 do
    if d.lu.(k).(k) < 0. then s := -. !s
  done;
  !s

let det d = det_sign d *. exp (log_abs_det d)

(* Solve LU x = P b in place on [x] initialized from the permuted rhs. *)
let solve_vec d b =
  let n = d.n in
  let x = Array.init n (fun i -> b.(d.pivots.(i))) in
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (d.lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (d.lu.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. d.lu.(i).(i)
  done;
  x

let inverse_of_decomp d =
  let n = d.n in
  let inv = Array.make_matrix n n 0. in
  let e = Array.make n 0. in
  for col = 0 to n - 1 do
    e.(col) <- 1.;
    let x = solve_vec d e in
    e.(col) <- 0.;
    for row = 0 to n - 1 do
      inv.(row).(col) <- x.(row)
    done
  done;
  inv

let inverse_arrays a n = inverse_of_decomp (decompose_arrays a n)

module Make (R : Precision.REAL) = struct
  module M = Matrix.Make (R)

  let to_arrays (m : M.t) =
    Array.init (M.rows m) (fun i ->
        Array.init (M.cols m) (fun j -> M.get m i j))

  let log_det (m : M.t) =
    if M.rows m <> M.cols m then invalid_arg "Lu.log_det: not square";
    let d = decompose_arrays (to_arrays m) (M.rows m) in
    (det_sign d, log_abs_det d)

  let det (m : M.t) =
    let sign, logd = log_det m in
    sign *. exp logd

  (* dst := (src)⁻¹ᵀ — the inverse-transpose layout used by the Slater
     determinant so the ratio for electron k is a contiguous row dot. *)
  let invert_transpose ~(src : M.t) ~(dst : M.t) =
    let n = M.rows src in
    if M.cols src <> n then invalid_arg "Lu.invert_transpose: not square";
    if M.rows dst <> n || M.cols dst <> n then
      invalid_arg "Lu.invert_transpose: bad destination shape";
    let d = decompose_arrays (to_arrays src) n in
    let inv = inverse_of_decomp d in
    let sign = det_sign d and logd = log_abs_det d in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        M.set dst i j inv.(j).(i)
      done
    done;
    (sign, logd)

  let invert ~(src : M.t) ~(dst : M.t) =
    let n = M.rows src in
    if M.cols src <> n then invalid_arg "Lu.invert: not square";
    let inv = inverse_arrays (to_arrays src) n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        M.set dst i j inv.(i).(j)
      done
    done
end
