open Oqmc_containers

(** Sherman–Morrison rank-1 determinant update — the paper's BLAS2
    [DetUpdate] kernel.  Operates on the transposed inverse [B = M⁻ᵀ] so
    that both the acceptance ratio and the update stream contiguous rows. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module M : module type of Matrix.Make (R)

  type workspace

  val make_workspace : int -> workspace
  (** Scratch vectors for an [n × n] problem; reusable across updates. *)

  val ratio : M.t -> int -> A.t -> float
  (** [ratio binv k v] is [det M' / det M] when row [k] of the Slater matrix
      is replaced by the orbital values [v]. *)

  val update_row : M.t -> int -> A.t -> ratio:float -> ws:workspace -> unit
  (** Apply the accepted replacement to [binv] in place.  [ratio] must be
      the value returned by {!ratio} for the same [(k, v)].
      @raise Invalid_argument if [ratio] is (numerically) zero. *)
end
