open Oqmc_containers

(* Delayed determinant updates (Woodbury identity), the paper's proposed
   future-work DetUpdate scheme (Sec. 8.4, McDaniel et al. 2016).

   Instead of applying an O(N²) Sherman–Morrison update on every accepted
   move, accepted rows are queued; ratios against the implicit, partially
   updated inverse cost O(kN) via a k×k Schur system, and every [delay]
   acceptances the queue is flushed into the stored inverse with BLAS3-like
   O(kN²) work.  With distinct replaced rows (guaranteed by the ordered
   PbyP sweep; enforced here by flushing on a repeat) the correction reads

     ρ(r, v) = B₀[r]·v − p S⁻¹ q
     p_j = B₀[r_j]·v        q_i = (B₀ v_i)[r] − δ_{r_i r}
     S(i,j) = B₀[r_j]·v_i

   where B₀ = M⁻ᵀ is the last flushed inverse, r_i the queued rows and v_i
   the queued orbital vectors.  S⁻¹ is maintained incrementally by bordered
   (Schur-complement) extension, O(k²) per acceptance. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)
  module B = Blas.Make (R)

  (* Flat row-row dot avoiding the bigarray-proxy allocation of M.row in
     the hot loops. *)
  let row_row_dot (x : M.t) i (y : M.t) j n =
    let xd = M.data x and yd = M.data y in
    let xb = i * M.ld x and yb = j * M.ld y in
    let acc = ref 0. in
    for p = 0 to n - 1 do
      acc := !acc +. (A.unsafe_get xd (xb + p) *. A.unsafe_get yd (yb + p))
    done;
    !acc

  type t = {
    binv : M.t; (* B₀ = M⁻ᵀ, updated only at flush *)
    n : int;
    delay : int;
    vs : M.t; (* queued orbital vectors, row i = v_i *)
    brows : M.t; (* row i = B₀[r_i] captured at acceptance *)
    rows : int array; (* queued replaced-row indices *)
    sinv : float array array; (* inverse of the k×k Schur matrix S *)
    mutable k : int;
    (* scratch *)
    p : float array;
    q : float array;
    sq : float array;
    col : float array;
    tmat : M.t; (* k_max × n scratch for the flush *)
    ymat : M.t; (* n × k_max scratch for the flush *)
  }

  let create ?(delay = 16) (binv : M.t) =
    let n = M.rows binv in
    if M.cols binv <> n then invalid_arg "Delayed_update.create: not square";
    if delay < 1 then invalid_arg "Delayed_update.create: delay < 1";
    let delay = min delay n in
    {
      binv;
      n;
      delay;
      vs = M.create delay n;
      brows = M.create delay n;
      rows = Array.make delay (-1);
      sinv = Array.make_matrix delay delay 0.;
      k = 0;
      p = Array.make delay 0.;
      q = Array.make delay 0.;
      sq = Array.make delay 0.;
      col = Array.make delay 0.;
      tmat = M.create delay n;
      ymat = M.create n delay;
    }

  let binv t = t.binv
  let pending t = t.k
  let delay t = t.delay

  (* ρ(r,v) against the implicit inverse. *)
  let ratio t r (v : A.t) =
    let base = B.row_dot t.binv r v in
    if t.k = 0 then base
    else begin
      let k = t.k in
      for j = 0 to k - 1 do
        t.p.(j) <- B.row_dot t.brows j v
      done;
      for i = 0 to k - 1 do
        let qi = row_row_dot t.vs i t.binv r t.n in
        t.q.(i) <- (if t.rows.(i) = r then qi -. 1. else qi)
      done;
      let corr = ref 0. in
      for j = 0 to k - 1 do
        let acc = ref 0. in
        for i = 0 to k - 1 do
          acc := !acc +. (t.sinv.(j).(i) *. t.q.(i))
        done;
        corr := !corr +. (t.p.(j) *. !acc)
      done;
      base -. !corr
    end

  (* Flush the queue: B₀ ← B₀ − Y S⁻ᵀ W with Y = B₀Vᵀ − E and W = brows. *)
  let flush t =
    if t.k > 0 then begin
      let k = t.k and n = t.n in
      (* T := S⁻ᵀ W, i.e. T(i,:) = Σ_j S⁻¹(j,i) · brows(j,:). *)
      for i = 0 to k - 1 do
        for b = 0 to n - 1 do
          M.unsafe_set t.tmat i b 0.
        done;
        for j = 0 to k - 1 do
          let c = t.sinv.(j).(i) in
          if c <> 0. then
            for b = 0 to n - 1 do
              M.unsafe_set t.tmat i b
                (M.unsafe_get t.tmat i b +. (c *. M.unsafe_get t.brows j b))
            done
        done
      done;
      (* Y(a,i) = B₀[a]·v_i − δ_{a,r_i}  (the BLAS3-flavoured block); row a
         of B₀ stays cache-resident across the k columns. *)
      for a = 0 to n - 1 do
        for i = 0 to k - 1 do
          M.unsafe_set t.ymat a i (row_row_dot t.binv a t.vs i n)
        done
      done;
      for i = 0 to k - 1 do
        M.unsafe_set t.ymat t.rows.(i) i (M.unsafe_get t.ymat t.rows.(i) i -. 1.)
      done;
      (* B₀ −= Y T *)
      for a = 0 to n - 1 do
        for i = 0 to k - 1 do
          let y = M.unsafe_get t.ymat a i in
          if y <> 0. then
            for b = 0 to n - 1 do
              M.unsafe_set t.binv a b
                (M.unsafe_get t.binv a b -. (y *. M.unsafe_get t.tmat i b))
            done
        done
      done;
      t.k <- 0
    end

  (* Extend S⁻¹ by one bordered row/column via the Schur complement. *)
  let extend_sinv t =
    let k = t.k in
    (* New S entries: column b_i = S(i,k) = brows[k]·v_i,
       row c_j = S(k,j) = brows[j]·v_k, corner d = brows[k]·v_k. *)
    let b = Array.make k 0. and c = Array.make k 0. in
    for i = 0 to k - 1 do
      b.(i) <- row_row_dot t.brows k t.vs i t.n;
      c.(i) <- row_row_dot t.brows i t.vs k t.n
    done;
    let d = row_row_dot t.brows k t.vs k t.n in
    (* sb = S⁻¹ b, cs = c S⁻¹, schur = d − c S⁻¹ b *)
    let sb = Array.make k 0. and cs = Array.make k 0. in
    for i = 0 to k - 1 do
      let acc = ref 0. in
      for j = 0 to k - 1 do
        acc := !acc +. (t.sinv.(i).(j) *. b.(j))
      done;
      sb.(i) <- !acc
    done;
    for j = 0 to k - 1 do
      let acc = ref 0. in
      for i = 0 to k - 1 do
        acc := !acc +. (c.(i) *. t.sinv.(i).(j))
      done;
      cs.(j) <- !acc
    done;
    let schur = ref d in
    for i = 0 to k - 1 do
      schur := !schur -. (c.(i) *. sb.(i))
    done;
    if abs_float !schur < 1e-300 then
      invalid_arg "Delayed_update: singular Schur complement";
    let inv_s = 1. /. !schur in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        t.sinv.(i).(j) <- t.sinv.(i).(j) +. (sb.(i) *. cs.(j) *. inv_s)
      done
    done;
    for i = 0 to k - 1 do
      t.sinv.(i).(k) <- -.sb.(i) *. inv_s;
      t.sinv.(k).(i) <- -.cs.(i) *. inv_s
    done;
    t.sinv.(k).(k) <- inv_s

  let accept t r (v : A.t) =
    (* A repeat of a pending row would break the distinct-rows invariant;
       flush first (the ordered PbyP sweep never triggers this). *)
    let repeat = ref false in
    for i = 0 to t.k - 1 do
      if t.rows.(i) = r then repeat := true
    done;
    if !repeat then flush t;
    let k = t.k in
    t.rows.(k) <- r;
    for j = 0 to t.n - 1 do
      M.unsafe_set t.vs k j (A.unsafe_get v j);
      M.unsafe_set t.brows k j (M.unsafe_get t.binv r j)
    done;
    extend_sinv t;
    t.k <- k + 1;
    if t.k = t.delay then flush t
end
