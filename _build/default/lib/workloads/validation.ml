open Oqmc_containers
open Oqmc_particle
open Oqmc_wavefunction
open Oqmc_core

(* Analytically solvable systems used by the integration tests.

   [harmonic]: N non-interacting same-spin fermions in an isotropic trap
   with the exact eigenfunction determinant — the local energy is then the
   exact eigenvalue at EVERY configuration (zero variance), which checks
   the whole PbyP + kinetic-energy machinery end to end.

   [free_fermions]: plane-wave determinant in a periodic box; the kinetic
   energy is exact and known in closed form. *)

let harmonic ~n ~omega : System.t =
  System.validate
    {
      System.name = Printf.sprintf "ho-%d" n;
      lattice = Lattice.open_cell;
      n_up = n;
      n_down = 0;
      ions = [];
      spo = Spo_analytic.harmonic ~omega ~n_orb:n;
      j1 = None;
      j2 = None;
      ham = { System.coulomb = false; ewald = false; harmonic = Some omega; nlpp = None };
    }

let harmonic_exact_energy ~n ~omega =
  Spo_analytic.harmonic_total_energy ~omega ~n

let free_fermions ~n ~box : System.t =
  let lattice = Lattice.cubic box in
  System.validate
    {
      System.name = Printf.sprintf "heg-%d" n;
      lattice;
      n_up = n;
      n_down = 0;
      ions = [];
      spo = Spo_analytic.plane_waves ~lattice ~n_orb:n;
      j1 = None;
      j2 = None;
      ham = { System.coulomb = false; ewald = false; harmonic = None; nlpp = None };
    }

(* Exact kinetic energy of the plane-wave determinant: Σ |G|²/2 over the
   occupied orbitals in the same shell ordering as the SPO engine. *)
let free_fermions_exact_energy ~n ~box =
  let lattice = Lattice.cubic box in
  ignore lattice;
  (* Re-derive the shell ordering: orbital 0 is constant; orbitals 2m−1
     and 2m share |G| of the m-th vector. *)
  let gs =
    let g = 2. *. Float.pi /. box in
    let lim = 6 in
    let all = ref [] in
    for i = -lim to lim do
      for j = -lim to lim do
        for k = -lim to lim do
          if
            (i <> 0 || j <> 0 || k <> 0)
            && (i > 0 || (i = 0 && (j > 0 || (j = 0 && k > 0))))
          then
            all :=
              (g *. g
              *. float_of_int ((i * i) + (j * j) + (k * k)))
              :: !all
        done
      done
    done;
    Array.of_list (List.sort compare !all)
  in
  let acc = ref 0. in
  for m = 1 to n - 1 do
    acc := !acc +. (0.5 *. gs.((m - 1) / 2))
  done;
  !acc

(* Hydrogen-like atom with a Slater 1s trial orbital: at zeta = Z the
   trial function is exact, so E_L = -Z^2/2 at every configuration — the
   zero-variance anchor that exercises the electron-ion Coulomb term. *)
let hydrogen ?(zeta = 1.0) ?(z = 1.0) () : System.t =
  System.validate
    {
      System.name = Printf.sprintf "hydrogen-z%.2f" zeta;
      lattice = Lattice.open_cell;
      n_up = 1;
      n_down = 0;
      ions = [ { System.sname = "H"; charge = z; positions = [ Vec3.zero ] } ];
      spo = Spo_analytic.slater_1s ~centers:[| Vec3.zero |] ~zeta;
      j1 = None;
      j2 = None;
      ham = { System.coulomb = true; ewald = false; harmonic = None; nlpp = None };
    }

(* <H> of the Slater 1s trial function for nuclear charge Z:
   E(zeta) = zeta^2/2 - Z zeta. *)
let hydrogen_variational_energy ~zeta ~z = (zeta *. zeta /. 2.) -. (z *. zeta)

(* Interacting electron gas with a J2 factor: not exactly solvable, but
   Ref and Current variants must agree — used by the cross-variant
   consistency tests and the quickstart example. *)
let electron_gas ?(ewald = false) ~n_up ~n_down ~box () : System.t =
  let lattice = Lattice.cubic box in
  let cutoff = Lattice.wigner_seitz_radius lattice in
  let j2 =
    if n_down > 0 then Jastrow_sets.ee_set ~cutoff
    else Jastrow_sets.ee_set_single ~cutoff
  in
  System.validate
    {
      System.name = Printf.sprintf "heg-j2-%d" (n_up + n_down);
      lattice;
      n_up;
      n_down;
      ions = [];
      spo = Spo_analytic.plane_waves ~lattice ~n_orb:(max n_up n_down);
      j1 = None;
      j2 = Some j2;
      ham = { System.coulomb = true; ewald; harmonic = None; nlpp = None };
    }
