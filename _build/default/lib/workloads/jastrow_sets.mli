open Oqmc_spline

(** Jastrow functor sets shaped like the optimized NiO functors of
    Fig. 3: two-body functors with the electron-electron cusp conditions
    and smooth cutoff, and attractive one-body wells per ion species
    (deeper and shorter-ranged for heavier species). *)

val smooth_cut : float -> float -> float
(** (1 − (r/rc)²)² cutoff envelope. *)

val two_body :
  cusp:float -> cutoff:float -> ?intervals:int -> unit -> Cubic_spline_1d.t
(** Radial functor with du/dr(0) = [cusp] (−1/2 antiparallel, −1/4
    parallel for the exp(−Σu) convention). *)

val one_body :
  depth:float ->
  range:float ->
  cutoff:float ->
  ?intervals:int ->
  unit ->
  Cubic_spline_1d.t

val ee_set : cutoff:float -> Cubic_spline_1d.t array array
(** Spin-pair matrix [uu ud; ud uu]. *)

val ee_set_single : cutoff:float -> Cubic_spline_1d.t array array

val ion_set : cutoff:float -> Spec.species list -> Cubic_spline_1d.t array

val tabulate : Cubic_spline_1d.t -> points:int -> (float * float) array
(** (r, u(r)) samples for the Fig. 3 regeneration. *)
