(* The four benchmark workloads of Table 1, with their exact paper
   parameters.  These drive both the Table 1 reproduction (all values
   computed analytically, no allocation) and the runnable scaled systems
   built by {!Builder}. *)

type species = {
  sp_name : string;
  z_eff : float; (* effective valence charge Z* *)
  pseudopotential : bool;
}

type t = {
  wname : string;
  n : int; (* electrons *)
  n_ion : int;
  ions_per_cell : int;
  n_cells : int;
  species : species list; (* with per-ion multiplicity n_ion/len *)
  n_spos : int; (* unique single-particle orbitals *)
  fft_grid : int * int * int;
  box : float * float * float; (* orthorhombic supercell extents (bohr) *)
}

let graphite =
  {
    wname = "Graphite";
    n = 256;
    n_ion = 64;
    ions_per_cell = 4;
    n_cells = 16;
    species = [ { sp_name = "C"; z_eff = 4.; pseudopotential = true } ];
    n_spos = 80;
    fft_grid = (28, 28, 80);
    (* 2x2x2 orthorhombic graphite cells, a = 4.65, c = 12.68 bohr *)
    box = (9.3, 16.11, 25.36);
  }

let be64 =
  {
    wname = "Be-64";
    n = 256;
    n_ion = 64;
    ions_per_cell = 2;
    n_cells = 32;
    species = [ { sp_name = "Be"; z_eff = 4.; pseudopotential = false } ];
    n_spos = 81;
    fft_grid = (84, 84, 144);
    (* hcp Be, a = 4.33, c = 6.78 bohr, orthorhombic representation *)
    box = (8.66, 15.0, 27.12);
  }

let nio32 =
  {
    wname = "NiO-32";
    n = 384;
    n_ion = 32;
    ions_per_cell = 4;
    n_cells = 8;
    species =
      [
        { sp_name = "Ni"; z_eff = 18.; pseudopotential = true };
        { sp_name = "O"; z_eff = 6.; pseudopotential = true };
      ];
    n_spos = 144;
    fft_grid = (80, 80, 80);
    (* rock salt, conventional cube a0 = 7.88 bohr, 2x2x1 cells *)
    box = (15.76, 15.76, 7.88);
  }

let nio64 =
  {
    wname = "NiO-64";
    n = 768;
    n_ion = 64;
    ions_per_cell = 4;
    n_cells = 16;
    species =
      [
        { sp_name = "Ni"; z_eff = 18.; pseudopotential = true };
        { sp_name = "O"; z_eff = 6.; pseudopotential = true };
      ];
    n_spos = 240;
    fft_grid = (80, 80, 80);
    box = (15.76, 15.76, 15.76);
  }

let all = [ graphite; be64; nio32; nio64 ]

let find name =
  match
    List.find_opt
      (fun s -> String.lowercase_ascii s.wname = String.lowercase_ascii name)
      all
  with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Spec.find: unknown workload %S" name)

(* B-spline table size in GB as reported in Table 1 (the stored orbital
   coefficients are complex doubles: 16 bytes per grid point per SPO). *)
let bspline_gb t =
  let nx, ny, nz = t.fft_grid in
  float_of_int ((nx + 3) * (ny + 3) * (nz + 3) * t.n_spos * 16) /. 1e9

let pp_row ppf t =
  let nx, ny, nz = t.fft_grid in
  Format.fprintf ppf "%-9s %5d %5d %8d %8d  %-12s %6d  %dx%dx%d  %6.1f"
    t.wname t.n t.n_ion t.ions_per_cell t.n_cells
    (String.concat ","
       (List.map
          (fun s -> Printf.sprintf "%s(%g)" s.sp_name s.z_eff)
          t.species))
    t.n_spos nx ny nz (bspline_gb t)
