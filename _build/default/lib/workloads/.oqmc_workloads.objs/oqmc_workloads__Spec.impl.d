lib/workloads/spec.ml: Format List Printf String
