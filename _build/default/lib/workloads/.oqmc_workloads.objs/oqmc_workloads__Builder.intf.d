lib/workloads/builder.mli: Nlpp Oqmc_containers Oqmc_core Oqmc_hamiltonian Spec System Vec3
