lib/workloads/jastrow_sets.mli: Cubic_spline_1d Oqmc_spline Spec
