lib/workloads/jastrow_sets.ml: Array Cubic_spline_1d List Oqmc_spline Spec
