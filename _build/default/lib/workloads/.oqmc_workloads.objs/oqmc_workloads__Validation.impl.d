lib/workloads/validation.ml: Array Float Jastrow_sets Lattice List Oqmc_containers Oqmc_core Oqmc_particle Oqmc_wavefunction Printf Spo_analytic System Vec3
