lib/workloads/validation.mli: Oqmc_core System
