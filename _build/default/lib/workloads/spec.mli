(** The four benchmark workloads of Table 1 with their exact paper
    parameters, driving both the Table 1 reproduction and the runnable
    scaled systems. *)

type species = { sp_name : string; z_eff : float; pseudopotential : bool }

type t = {
  wname : string;
  n : int;
  n_ion : int;
  ions_per_cell : int;
  n_cells : int;
  species : species list;
  n_spos : int;
  fft_grid : int * int * int;
  box : float * float * float;  (** orthorhombic supercell extents, bohr *)
}

val graphite : t
val be64 : t
val nio32 : t
val nio64 : t
val all : t list

val find : string -> t
(** Case-insensitive.  @raise Invalid_argument otherwise. *)

val bspline_gb : t -> float
(** Table 1's B-spline column: complex double coefficients, 16 bytes per
    grid point per SPO. *)

val pp_row : Format.formatter -> t -> unit
