open Oqmc_core

(** Analytically solvable systems for the integration tests: exact
    eigenfunction determinants give constant local energy (zero
    variance), checking the whole PbyP machinery end to end. *)

val harmonic : n:int -> omega:float -> System.t
(** [n] same-spin fermions in an isotropic trap with the exact
    eigenfunction determinant. *)

val harmonic_exact_energy : n:int -> omega:float -> float

val free_fermions : n:int -> box:float -> System.t
(** Plane-wave determinant in a periodic cube, no interaction. *)

val free_fermions_exact_energy : n:int -> box:float -> float

val hydrogen : ?zeta:float -> ?z:float -> unit -> System.t
(** Hydrogen-like atom with a Slater 1s trial orbital; exact (zero
    variance) at [zeta = z]. *)

val hydrogen_variational_energy : zeta:float -> z:float -> float
(** ⟨H⟩ = ζ²/2 − Zζ for the 1s trial function. *)

val electron_gas :
  ?ewald:bool -> n_up:int -> n_down:int -> box:float -> unit -> System.t
(** Interacting electron gas with a two-body Jastrow — not exactly
    solvable, but every build variant must agree on it.  [ewald] swaps
    the minimum-image Coulomb for the full Ewald sum. *)
