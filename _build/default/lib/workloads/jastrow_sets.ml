open Oqmc_spline

(* Jastrow functor sets shaped like the optimized NiO functors of Fig. 3.

   Two-body functors satisfy the electron-electron cusp conditions
   (du/dr|₀ = −1/2 antiparallel, −1/4 parallel for the exp(−Σu)
   convention) and decay smoothly to zero at the cutoff; one-body functors
   are attractive wells around the ions, deeper for the heavier species.
   The analytic target shapes are A·e^{−r/F}·(1 − (r/rc)²)² fitted by the
   B-spline interpolator, which is how QMCPACK's optimizer-produced
   coefficient tables look in practice. *)

let smooth_cut r rc =
  let x = r /. rc in
  if x >= 1. then 0. else (1. -. (x *. x)) ** 2.

(* Two-body functor with amplitude [a] at the origin and range [f]. *)
let two_body ~cusp ~cutoff ?(intervals = 10) () =
  let a = -.cusp *. 1.6 (* u(0): deeper well for stronger cusp *) in
  let f = 1.1 in
  let target r = a *. exp (-.r /. f) *. smooth_cut r cutoff in
  Cubic_spline_1d.fit ~f:target ~deriv0:(Some cusp) ~deriv_cut:(Some 0.)
    ~cutoff ~intervals ()

(* One-body functor: attractive well of depth [depth] and range [f]. *)
let one_body ~depth ~range ~cutoff ?(intervals = 10) () =
  let target r = -.depth *. exp (-.r /. range) *. smooth_cut r cutoff in
  Cubic_spline_1d.fit ~f:target ~deriv0:None ~deriv_cut:(Some 0.) ~cutoff
    ~intervals ()

(* Spin-pair functor matrix [uu ud; du dd] with the standard cusps. *)
let ee_set ~cutoff =
  let uu = two_body ~cusp:(-0.25) ~cutoff () in
  let ud = two_body ~cusp:(-0.5) ~cutoff () in
  [| [| uu; ud |]; [| ud; uu |] |]

(* Single-species (all-parallel or spin-restricted) variant. *)
let ee_set_single ~cutoff = [| [| two_body ~cusp:(-0.5) ~cutoff () |] |]

(* One-body functors per ion species, keyed by effective charge: heavier
   species bind a deeper, shorter-ranged well (the Ni vs O contrast of
   Fig. 3). *)
let ion_set ~cutoff (species : Spec.species list) =
  Array.of_list
    (List.map
       (fun (s : Spec.species) ->
         let depth = 0.12 +. (0.02 *. s.Spec.z_eff) in
         let range = 1.8 /. sqrt s.Spec.z_eff in
         one_body ~depth ~range ~cutoff ())
       species)

(* Tabulate u(r) for the Fig. 3 regeneration. *)
let tabulate fn ~points =
  Array.init points (fun i ->
      let r =
        Cubic_spline_1d.cutoff fn *. float_of_int i /. float_of_int points
      in
      (r, Cubic_spline_1d.evaluate fn r))
