lib/particle/dt_ab_ref.ml: Aligned Dt_kernels Lattice Oqmc_containers Particle_set Precision Vec3
