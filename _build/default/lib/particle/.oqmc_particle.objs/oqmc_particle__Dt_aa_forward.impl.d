lib/particle/dt_aa_forward.ml: Aligned Dt_kernels Lattice Matrix Oqmc_containers Particle_set Precision Vec3
