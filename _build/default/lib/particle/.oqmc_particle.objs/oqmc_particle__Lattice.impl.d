lib/particle/lattice.ml: Array Float Format Oqmc_containers Vec3
