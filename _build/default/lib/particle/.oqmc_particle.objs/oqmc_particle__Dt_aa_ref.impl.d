lib/particle/dt_aa_ref.ml: Aligned Dt_kernels Lattice Oqmc_containers Particle_set Precision Vec3
