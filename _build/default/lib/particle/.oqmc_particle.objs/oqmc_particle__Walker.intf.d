lib/particle/walker.mli: Oqmc_containers Pos_aos Precision Wbuffer
