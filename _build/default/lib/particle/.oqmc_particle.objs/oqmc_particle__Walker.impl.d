lib/particle/walker.ml: Oqmc_containers Pos_aos Precision Wbuffer
