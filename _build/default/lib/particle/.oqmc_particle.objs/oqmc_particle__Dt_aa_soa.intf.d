lib/particle/dt_aa_soa.mli: Aligned Matrix Oqmc_containers Particle_set Precision Vec3
