lib/particle/particle_set.mli: Lattice Oqmc_containers Pos_aos Precision Vec3 Vsc Walker
