lib/particle/dt_aa_ref.mli: Aligned Oqmc_containers Particle_set Precision Vec3
