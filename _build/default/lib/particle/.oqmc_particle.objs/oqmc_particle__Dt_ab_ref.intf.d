lib/particle/dt_ab_ref.mli: Aligned Oqmc_containers Particle_set Precision Vec3
