lib/particle/particle_set.ml: Array Lattice Oqmc_containers Pos_aos Precision Vec3 Vsc Walker
