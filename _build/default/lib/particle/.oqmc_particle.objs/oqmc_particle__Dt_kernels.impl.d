lib/particle/dt_kernels.ml: Aligned Lattice Oqmc_containers Precision Vec3
