lib/particle/lattice.mli: Format Oqmc_containers Vec3
