lib/particle/dt_ab_soa.mli: Aligned Matrix Oqmc_containers Particle_set Precision Vec3
