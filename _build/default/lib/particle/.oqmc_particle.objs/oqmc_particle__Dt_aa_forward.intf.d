lib/particle/dt_aa_forward.mli: Aligned Matrix Oqmc_containers Particle_set Precision Vec3
