open Oqmc_containers

(* ParticleSet: the central physics abstraction (paper Fig. 4/5).

   Holds the positions of one species group (electrons, or the fixed ions)
   in BOTH layouts: [r] is the AoS container the high-level physics and the
   Ref kernels use, [rsoa] is its SoA companion added by the optimization
   work.  The only extra costs of the duplication are the AoS-to-SoA
   assignment in [load_walker] and a 6-scalar write on each accepted move,
   exactly as the paper describes.

   The particle-by-particle protocol is [propose] / [accept] / [reject]:
   a proposal never touches the containers, acceptance writes the single
   particle to both. *)

type species = { name : string; charge : float; count : int }

module Make (R : Precision.REAL) = struct
  module Aos = Pos_aos.Make (R)
  module Vs = Vsc.Make (R)

  type t = {
    lattice : Lattice.t;
    species : species array;
    spec_of : int array;
    n : int;
    r : Aos.t;
    rsoa : Vs.t;
    mutable active : int;
    mutable active_pos : Vec3.t;
  }

  let create ~lattice species =
    let species = Array.of_list species in
    let n = Array.fold_left (fun acc s -> acc + s.count) 0 species in
    if n = 0 then invalid_arg "Particle_set.create: no particles";
    let spec_of = Array.make n 0 in
    let idx = ref 0 in
    Array.iteri
      (fun si s ->
        if s.count < 0 then invalid_arg "Particle_set.create: negative count";
        for _ = 1 to s.count do
          spec_of.(!idx) <- si;
          incr idx
        done)
      species;
    {
      lattice;
      species;
      spec_of;
      n;
      r = Aos.create n;
      rsoa = Vs.create n;
      active = -1;
      active_pos = Vec3.zero;
    }

  let n t = t.n
  let lattice t = t.lattice
  let species t = Array.copy t.species
  let n_species t = Array.length t.species
  let species_index t i = t.spec_of.(i)
  let species_of t i = t.species.(t.spec_of.(i))
  let charge t i = (species_of t i).charge

  let first_of_species t si =
    let rec go i = if i >= t.n then None else if t.spec_of.(i) = si then Some i else go (i + 1) in
    go 0

  let aos t = t.r
  let soa t = t.rsoa

  let get t i = Aos.get t.r i

  let set t i pos =
    Aos.set t.r i pos;
    Vs.set t.rsoa i pos

  let set_all t positions =
    if Array.length positions <> t.n then
      invalid_arg "Particle_set.set_all: size mismatch";
    Array.iteri (fun i p -> set t i p) positions

  (* Uniformly random positions in the cell; [u] supplies uniforms in
     [0,1).  Open cells scatter over [0, spread)³. *)
  let randomize ?(spread = 1.) t u =
    for i = 0 to t.n - 1 do
      let s = Vec3.make (u ()) (u ()) (u ()) in
      let pos =
        if Lattice.is_periodic t.lattice then Lattice.to_cart t.lattice s
        else Vec3.scale spread s
      in
      set t i pos
    done

  (* loadWalker: copy a stored walker's positions into this compute engine
     (AoS assignment + the extra AoS-to-SoA transposition, Fig. 5). *)
  let load_walker t (w : Walker.t) =
    if Walker.n_particles w <> t.n then
      invalid_arg "Particle_set.load_walker: size mismatch";
    for i = 0 to t.n - 1 do
      Aos.set t.r i (Walker.Aos.get w.Walker.r i)
    done;
    Vs.assign_from_aos t.rsoa t.r;
    t.active <- -1

  let store_walker t (w : Walker.t) =
    if Walker.n_particles w <> t.n then
      invalid_arg "Particle_set.store_walker: size mismatch";
    for i = 0 to t.n - 1 do
      Walker.Aos.set w.Walker.r i (Aos.get t.r i)
    done

  let propose t k pos =
    if k < 0 || k >= t.n then invalid_arg "Particle_set.propose: bad index";
    t.active <- k;
    t.active_pos <- pos

  let active t = t.active
  let active_pos t = t.active_pos

  let accept t =
    if t.active < 0 then invalid_arg "Particle_set.accept: no active move";
    set t t.active t.active_pos;
    t.active <- -1

  let reject t = t.active <- -1

  let bytes t = Aos.bytes t.r + Vs.bytes t.rsoa
end
