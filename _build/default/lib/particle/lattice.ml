open Oqmc_containers

(* Simulation cell: lattice vectors, Cartesian/fractional conversion and
   minimum-image displacements.

   Rows of [a] are the lattice vectors, so a Cartesian position is
   r = s₁a₁ + s₂a₂ + s₃a₃ for fractional s.  Orthorhombic cells get a
   branch-free minimum-image fast path used inside the distance-table
   kernels; general (e.g. hexagonal graphite) cells wrap fractionally and
   then refine over the 26 neighbour images, which is exact for any cell
   whose Wigner–Seitz cell is contained in the first shell. *)

type kind = Open | Ortho of float * float * float | General

type t = {
  a : Vec3.t array; (* lattice vectors (rows) *)
  g : Vec3.t array; (* columns of A⁻¹: s_i = g_i · r *)
  kind : kind;
  volume : float;
}

let det3 a =
  Vec3.dot a.(0) (Vec3.cross a.(1) a.(2))

let inverse_rows a =
  (* Rows of A⁻ᵀ, i.e. reciprocal vectors / volume: gᵢ·aⱼ = δᵢⱼ. *)
  let v = det3 a in
  if abs_float v < 1e-12 then invalid_arg "Lattice: singular cell";
  [|
    Vec3.scale (1. /. v) (Vec3.cross a.(1) a.(2));
    Vec3.scale (1. /. v) (Vec3.cross a.(2) a.(0));
    Vec3.scale (1. /. v) (Vec3.cross a.(0) a.(1));
  |]

let open_cell =
  let a =
    [| Vec3.make 1. 0. 0.; Vec3.make 0. 1. 0.; Vec3.make 0. 0. 1. |]
  in
  { a; g = inverse_rows a; kind = Open; volume = 1. }

let orthorhombic lx ly lz =
  if lx <= 0. || ly <= 0. || lz <= 0. then
    invalid_arg "Lattice.orthorhombic: non-positive extent";
  let a =
    [| Vec3.make lx 0. 0.; Vec3.make 0. ly 0.; Vec3.make 0. 0. lz |]
  in
  { a; g = inverse_rows a; kind = Ortho (lx, ly, lz); volume = lx *. ly *. lz }

let cubic l = orthorhombic l l l

let general vectors =
  if Array.length vectors <> 3 then
    invalid_arg "Lattice.general: need exactly 3 vectors";
  let a = Array.map (fun v -> v) vectors in
  let volume = det3 a in
  if volume <= 0. then
    invalid_arg "Lattice.general: vectors must be right-handed (volume > 0)";
  { a; g = inverse_rows a; kind = General; volume }

let kind t = t.kind
let frac_rows t = Array.map (fun v -> v) t.g
let volume t = match t.kind with Open -> infinity | _ -> t.volume
let vectors t = Array.map (fun v -> v) t.a

let ortho_dims t = match t.kind with Ortho (x, y, z) -> Some (x, y, z) | _ -> None
let is_periodic t = t.kind <> Open

let to_frac t (r : Vec3.t) =
  Vec3.make (Vec3.dot t.g.(0) r) (Vec3.dot t.g.(1) r) (Vec3.dot t.g.(2) r)

let to_cart t (s : Vec3.t) =
  Vec3.add
    (Vec3.scale s.Vec3.x t.a.(0))
    (Vec3.add (Vec3.scale s.Vec3.y t.a.(1)) (Vec3.scale s.Vec3.z t.a.(2)))

let frac_wrap s = s -. Float.round s (* into [-0.5, 0.5] *)

let pbc_wrap01 x = x -. Float.of_int (int_of_float (Float.floor x))

let wrap_position t r =
  match t.kind with
  | Open -> r
  | Ortho _ | General ->
      let s = to_frac t r in
      to_cart t
        (Vec3.make (pbc_wrap01 s.Vec3.x) (pbc_wrap01 s.Vec3.y)
           (pbc_wrap01 s.Vec3.z))

(* Minimum-image displacement for dr = r_b − r_a. *)
let min_image_disp t (dr : Vec3.t) =
  match t.kind with
  | Open -> dr
  | Ortho (lx, ly, lz) ->
      Vec3.make
        (dr.Vec3.x -. (lx *. Float.round (dr.Vec3.x /. lx)))
        (dr.Vec3.y -. (ly *. Float.round (dr.Vec3.y /. ly)))
        (dr.Vec3.z -. (lz *. Float.round (dr.Vec3.z /. lz)))
  | General ->
      let s = to_frac t dr in
      let s0 =
        Vec3.make (frac_wrap s.Vec3.x) (frac_wrap s.Vec3.y)
          (frac_wrap s.Vec3.z)
      in
      let best = ref (to_cart t s0) in
      let best2 = ref (Vec3.norm2 !best) in
      for i = -1 to 1 do
        for j = -1 to 1 do
          for k = -1 to 1 do
            if i <> 0 || j <> 0 || k <> 0 then begin
              let cand =
                to_cart t
                  (Vec3.make
                     (s0.Vec3.x +. float_of_int i)
                     (s0.Vec3.y +. float_of_int j)
                     (s0.Vec3.z +. float_of_int k))
              in
              let n2 = Vec3.norm2 cand in
              if n2 < !best2 then begin
                best := cand;
                best2 := n2
              end
            end
          done
        done
      done;
      !best

let min_image_dist t a b = Vec3.norm (min_image_disp t (Vec3.sub b a))

(* Radius of the inscribed sphere of the Wigner–Seitz cell: the largest
   safe cutoff for short-ranged functors under minimum image. *)
let wigner_seitz_radius t =
  match t.kind with
  | Open -> infinity
  | Ortho (lx, ly, lz) -> 0.5 *. Float.min lx (Float.min ly lz)
  | General ->
      let r = ref infinity in
      let plane i j =
        (* Half distance between lattice planes normal to aᵢ×aⱼ. *)
        let n = Vec3.normalize (Vec3.cross t.a.(i) t.a.(j)) in
        let k = 3 - i - j in
        abs_float (Vec3.dot n t.a.(k)) /. 2.
      in
      r := Float.min !r (plane 0 1);
      r := Float.min !r (plane 1 2);
      r := Float.min !r (plane 2 0);
      !r

let pp ppf t =
  match t.kind with
  | Open -> Format.fprintf ppf "open boundary"
  | Ortho (x, y, z) -> Format.fprintf ppf "orthorhombic %g x %g x %g" x y z
  | General ->
      Format.fprintf ppf "general cell a1=%a a2=%a a3=%a" Vec3.pp t.a.(0)
        Vec3.pp t.a.(1) Vec3.pp t.a.(2)
