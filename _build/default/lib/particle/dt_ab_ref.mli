open Oqmc_containers

(** Electron-ion (AB) distance table, reference design: a dense
    N × N_ion block with interleaved AoS displacements, filled by walking
    the ions' interleaved positions. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module Ps : module type of Particle_set.Make (R)

  type t

  val create : sources:Ps.t -> Ps.t -> t
  val n : t -> int
  val n_sources : t -> int

  val evaluate : t -> Ps.t -> unit
  val move : t -> Vec3.t -> unit

  val update : t -> int -> unit
  (** Commit the temporary row for electron [k]. *)

  val dist : t -> int -> int -> float
  val displ : t -> int -> int -> Vec3.t

  val temp_dist : t -> A.t
  val temp_displ : t -> int -> Vec3.t

  val bytes : t -> int
end
