open Oqmc_containers

(** A Monte Carlo walker: an electron configuration plus DMC bookkeeping
    and the anonymous state buffer.  Always double precision — walkers are
    what gets serialized between ranks. *)

module Aos : module type of Pos_aos.Make (Precision.F64)

type t = {
  r : Aos.t;
  mutable weight : float;
  mutable multiplicity : int;
  mutable age : int;
  mutable log_psi : float;
  mutable e_local : float;
  buffer : Wbuffer.t;
  id : int;
}

val create : int -> t
(** Fresh walker for [n] particles, unit weight, empty buffer. *)

val n_particles : t -> int

val copy : t -> t
(** Deep copy with a fresh id (used by DMC branching). *)

val message_bytes : t -> int
(** Serialized size: positions, scalar properties and state buffer. *)
