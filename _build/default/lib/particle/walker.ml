open Oqmc_containers

(* A Monte Carlo walker: one electron configuration plus the bookkeeping
   needed by the DMC population (weight, multiplicity, age) and the
   anonymous buffer into which wavefunction components serialize their
   internal state.  Walkers are always stored in double precision — they
   are the units serialized for load balancing — while the compute engines
   (ParticleSet, TrialWaveFunction) hold precision-dependent copies. *)

module Aos = Pos_aos.Make (Precision.F64)

type t = {
  r : Aos.t;
  mutable weight : float;
  mutable multiplicity : int;
  mutable age : int;
  mutable log_psi : float;
  mutable e_local : float;
  buffer : Wbuffer.t;
  id : int;
}

let counter = ref 0

let create n =
  incr counter;
  {
    r = Aos.create n;
    weight = 1.;
    multiplicity = 1;
    age = 0;
    log_psi = 0.;
    e_local = 0.;
    buffer = Wbuffer.create ();
    id = !counter;
  }

let n_particles t = Aos.length t.r

let copy t =
  incr counter;
  {
    r = Aos.copy t.r;
    weight = t.weight;
    multiplicity = t.multiplicity;
    age = t.age;
    log_psi = t.log_psi;
    e_local = t.e_local;
    buffer = Wbuffer.copy t.buffer;
    id = !counter;
  }

(* Size of the serialized walker (positions + scalars + buffer): the
   load-balancing message the paper's Jastrow memory optimization shrinks
   by 22.5 MB for NiO-64. *)
let message_bytes t = Aos.bytes t.r + (8 * 4) + Wbuffer.bytes t.buffer
