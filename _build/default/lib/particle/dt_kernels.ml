open Oqmc_containers

(* Row kernels shared by the distance tables: distances and displacement
   vectors from one point to every particle of a set, in both layouts.

   These loops ARE the paper's DistTable hot spot.  The SoA kernel streams
   three unit-stride component rows; the AoS kernel walks the interleaved
   x y z groups with stride 3 — the access pattern whose poor
   vectorizability motivated the transformation.  The orthorhombic
   minimum-image branch is hoisted out of the loops. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)

  (* Round-half-away-from-zero via integer truncation: cheaper than the
     libm round call in these inner loops, and ties never matter here. *)
  let nearest x =
    float_of_int (int_of_float (if x >= 0. then x +. 0.5 else x -. 0.5))

  (* dr(p, i) = r_i − p, minimum image, for all i in [0, n).  The output
     rows receive distances and the three displacement components. *)
  let soa_row ~lattice ~(xs : A.t) ~(ys : A.t) ~(zs : A.t) ~n ~px ~py ~pz
      ~(d : A.t) ~(dx : A.t) ~(dy : A.t) ~(dz : A.t) =
    match Lattice.kind lattice with
    | Lattice.Ortho (lx, ly, lz) ->
        let ix = 1. /. lx and iy = 1. /. ly and iz = 1. /. lz in
        for i = 0 to n - 1 do
          let ddx = A.unsafe_get xs i -. px in
          let ddy = A.unsafe_get ys i -. py in
          let ddz = A.unsafe_get zs i -. pz in
          let ddx = ddx -. (lx *. nearest (ddx *. ix)) in
          let ddy = ddy -. (ly *. nearest (ddy *. iy)) in
          let ddz = ddz -. (lz *. nearest (ddz *. iz)) in
          A.unsafe_set dx i ddx;
          A.unsafe_set dy i ddy;
          A.unsafe_set dz i ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.Open ->
        for i = 0 to n - 1 do
          let ddx = A.unsafe_get xs i -. px in
          let ddy = A.unsafe_get ys i -. py in
          let ddz = A.unsafe_get zs i -. pz in
          A.unsafe_set dx i ddx;
          A.unsafe_set dy i ddy;
          A.unsafe_set dz i ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.General ->
        let p = Vec3.make px py pz in
        for i = 0 to n - 1 do
          let ri =
            Vec3.make (A.unsafe_get xs i) (A.unsafe_get ys i)
              (A.unsafe_get zs i)
          in
          let dr = Lattice.min_image_disp lattice (Vec3.sub ri p) in
          A.unsafe_set dx i dr.Vec3.x;
          A.unsafe_set dy i dr.Vec3.y;
          A.unsafe_set dz i dr.Vec3.z;
          A.unsafe_set d i (Vec3.norm dr)
        done

  (* Same relation over an interleaved AoS source; displacements are
     written interleaved as well (the Ref storage format). *)
  let aos_row ~lattice ~(src : A.t) ~n ~px ~py ~pz ~(d : A.t) ~(dr : A.t) =
    match Lattice.kind lattice with
    | Lattice.Ortho (lx, ly, lz) ->
        let ix = 1. /. lx and iy = 1. /. ly and iz = 1. /. lz in
        for i = 0 to n - 1 do
          let base = 3 * i in
          let ddx = A.unsafe_get src base -. px in
          let ddy = A.unsafe_get src (base + 1) -. py in
          let ddz = A.unsafe_get src (base + 2) -. pz in
          let ddx = ddx -. (lx *. nearest (ddx *. ix)) in
          let ddy = ddy -. (ly *. nearest (ddy *. iy)) in
          let ddz = ddz -. (lz *. nearest (ddz *. iz)) in
          A.unsafe_set dr base ddx;
          A.unsafe_set dr (base + 1) ddy;
          A.unsafe_set dr (base + 2) ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.Open ->
        for i = 0 to n - 1 do
          let base = 3 * i in
          let ddx = A.unsafe_get src base -. px in
          let ddy = A.unsafe_get src (base + 1) -. py in
          let ddz = A.unsafe_get src (base + 2) -. pz in
          A.unsafe_set dr base ddx;
          A.unsafe_set dr (base + 1) ddy;
          A.unsafe_set dr (base + 2) ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.General ->
        let p = Vec3.make px py pz in
        for i = 0 to n - 1 do
          let base = 3 * i in
          let ri =
            Vec3.make (A.unsafe_get src base)
              (A.unsafe_get src (base + 1))
              (A.unsafe_get src (base + 2))
          in
          let dd = Lattice.min_image_disp lattice (Vec3.sub ri p) in
          A.unsafe_set dr base dd.Vec3.x;
          A.unsafe_set dr (base + 1) dd.Vec3.y;
          A.unsafe_set dr (base + 2) dd.Vec3.z;
          A.unsafe_set d i (Vec3.norm dd)
        done
end
