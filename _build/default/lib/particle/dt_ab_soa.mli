open Oqmc_containers

(** Electron-ion (AB) distance table, optimized design: one padded
    SIMD-aligned row of ion distances per electron, streamed from the
    fixed ions' SoA container.  Ions never move, so there are no column
    updates and no staleness: acceptance is a single row copy. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module M : module type of Matrix.Make (R)
  module Ps : module type of Particle_set.Make (R)

  type t

  val create : sources:Ps.t -> Ps.t -> t
  (** [create ~sources targets]: [sources] are the fixed ions. *)

  val n : t -> int
  val n_sources : t -> int

  val evaluate : t -> Ps.t -> unit
  val move : t -> Vec3.t -> unit
  val accept : t -> int -> unit

  val dist : t -> int -> int -> float
  val displ : t -> int -> int -> Vec3.t

  val row_dist : t -> int -> A.t
  val row_dx : t -> int -> A.t
  val row_dy : t -> int -> A.t
  val row_dz : t -> int -> A.t

  val temp_dist : t -> A.t
  val temp_dx : t -> A.t
  val temp_dy : t -> A.t
  val temp_dz : t -> A.t

  val bytes : t -> int
end
