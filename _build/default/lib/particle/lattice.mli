open Oqmc_containers

(** Simulation cell: lattice vectors, fractional coordinates, and
    minimum-image displacements.  Orthorhombic cells have a branch-free
    fast path used by the distance-table kernels; general cells refine the
    fractional wrap over the 26 neighbour images. *)

type kind = Open | Ortho of float * float * float | General

type t

val open_cell : t
(** No periodicity; displacements are plain differences. *)

val orthorhombic : float -> float -> float -> t
val cubic : float -> t

val general : Vec3.t array -> t
(** Cell from 3 right-handed lattice vectors.
    @raise Invalid_argument otherwise. *)

val kind : t -> kind

(** Rows g_b of the inverse cell: s_b = g_b · r, with g_b · a_c = δ_bc. *)
val frac_rows : t -> Vec3.t array
val volume : t -> float
val vectors : t -> Vec3.t array

val ortho_dims : t -> (float * float * float) option
(** Extents when orthorhombic — enables the fast kernel path. *)

val is_periodic : t -> bool

val to_frac : t -> Vec3.t -> Vec3.t
val to_cart : t -> Vec3.t -> Vec3.t

val wrap_position : t -> Vec3.t -> Vec3.t
(** Map into the home cell (no-op for open boundaries). *)

val min_image_disp : t -> Vec3.t -> Vec3.t
(** Minimum-image image of a displacement vector. *)

val min_image_dist : t -> Vec3.t -> Vec3.t -> float

val wigner_seitz_radius : t -> float
(** Largest safe cutoff radius for short-ranged functors. *)

val pp : Format.formatter -> t -> unit
