open Oqmc_containers

(** Electron-electron (AA) distance table, reference (Ref) design: packed
    upper-triangle storage with interleaved AoS displacements (Fig. 6a).
    A move computes a temporary row against the AoS positions;
    {!Make.update} scatters it back into the triangle with sign flips
    below the diagonal — the unaligned access pattern the paper
    replaces. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module Ps : module type of Particle_set.Make (R)

  type t

  val create : Ps.t -> t
  val n : t -> int

  val evaluate : t -> Ps.t -> unit
  (** Fill the full triangle from the AoS positions. *)

  val move : t -> Ps.t -> int -> Vec3.t -> unit
  (** Temporary row: dr(k,i) = r_i − r_k' for all i. *)

  val update : t -> int -> unit
  (** Commit the temporary row into the triangle (N−1 strided copies). *)

  val dist : t -> int -> int -> float

  val displ : t -> int -> int -> Vec3.t
  (** dr(i→j) = r_j − r_i, any order of arguments. *)

  val temp_dist : t -> A.t
  val temp_displ : t -> int -> Vec3.t

  val bytes : t -> int
end
