open Oqmc_containers

(** ParticleSet — the central physics abstraction.  Positions are held in
    both layouts: the AoS container used by the high-level physics and Ref
    kernels, and its SoA companion used by the optimized kernels.  The
    particle-by-particle move protocol is {!Make.propose} /
    {!Make.accept} / {!Make.reject}. *)

type species = { name : string; charge : float; count : int }

module Make (R : Precision.REAL) : sig
  module Aos : module type of Pos_aos.Make (R)
  module Vs : module type of Vsc.Make (R)

  type t

  val create : lattice:Lattice.t -> species list -> t
  (** Particles grouped by species, in declaration order.
      @raise Invalid_argument if empty or a count is negative. *)

  val n : t -> int
  val lattice : t -> Lattice.t
  val species : t -> species array
  val n_species : t -> int
  val species_index : t -> int -> int
  val species_of : t -> int -> species
  val charge : t -> int -> float
  val first_of_species : t -> int -> int option

  val aos : t -> Aos.t
  (** The AoS position container [R] (shared storage). *)

  val soa : t -> Vs.t
  (** The SoA companion [Rsoa] (shared storage). *)

  val get : t -> int -> Vec3.t

  val set : t -> int -> Vec3.t -> unit
  (** Write-through to both containers. *)

  val set_all : t -> Vec3.t array -> unit

  val randomize : ?spread:float -> t -> (unit -> float) -> unit
  (** Uniform positions in the cell from a [0,1) uniform supplier. *)

  val load_walker : t -> Walker.t -> unit
  (** [loadWalker]: AoS copy plus the AoS-to-SoA assignment. *)

  val store_walker : t -> Walker.t -> unit

  val propose : t -> int -> Vec3.t -> unit
  (** Stage a single-particle move; containers are untouched. *)

  val active : t -> int
  (** Index of the staged move, or [-1]. *)

  val active_pos : t -> Vec3.t

  val accept : t -> unit
  (** Commit the staged move (6 scalar writes across R and Rsoa).
      @raise Invalid_argument without a staged move. *)

  val reject : t -> unit

  val bytes : t -> int
end
