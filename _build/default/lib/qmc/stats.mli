(** Monte Carlo statistics: running moments, sample series, integrated
    autocorrelation time and the DMC efficiency κ of Sec. 3. *)

type running

val make_running : unit -> running
val push : running -> float -> unit
val count : running -> int
val mean : running -> float
val variance : running -> float
val std_error : running -> float

type series

val make_series : unit -> series
val append : series -> float -> unit
val length : series -> int
val get : series -> int -> float
val to_array : series -> float array
val series_mean : series -> float
val series_variance : series -> float

val autocorrelation : series -> int -> float
(** Normalized autocorrelation at a given lag. *)

val autocorrelation_time : series -> float
(** Integrated autocorrelation time τ_corr with a self-consistent
    window. *)

val series_error : series -> float
(** Error bar inflated by τ_corr. *)

val efficiency : variance:float -> tau_corr:float -> t_mc:float -> float
(** κ = 1/(σ² τ_corr T_MC); infinite for degenerate inputs. *)
