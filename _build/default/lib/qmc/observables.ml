open Oqmc_containers
open Oqmc_particle

(* Scalar-field observables accumulated over walker configurations.

   Production QMC measures more than the energy; the classic pair of
   estimators is the pair-correlation function g(r) (which shows the
   exchange-correlation hole the Jastrow factor digs) and radial density
   profiles for trapped systems.  Drivers call [accumulate] once per
   measured configuration; normalization happens at readout. *)

(* ---- pair correlation ---- *)

module Gofr = struct
  type t = {
    lattice : Lattice.t;
    r_max : float;
    bins : int;
    dr : float;
    counts : float array;
    mutable samples : int;
    mutable n_particles : int;
  }

  let create ?(bins = 50) ~lattice () =
    let r_max =
      if Lattice.is_periodic lattice then Lattice.wigner_seitz_radius lattice
      else invalid_arg "Gofr.create: open cell (use Density for traps)"
    in
    {
      lattice;
      r_max;
      bins;
      dr = r_max /. float_of_int bins;
      counts = Array.make bins 0.;
      samples = 0;
      n_particles = 0;
    }

  let accumulate t (w : Walker.t) =
    let n = Walker.n_particles w in
    t.n_particles <- n;
    t.samples <- t.samples + 1;
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let d =
          Lattice.min_image_dist t.lattice
            (Walker.Aos.get w.Walker.r i)
            (Walker.Aos.get w.Walker.r j)
        in
        if d < t.r_max then begin
          let b = int_of_float (d /. t.dr) in
          if b >= 0 && b < t.bins then t.counts.(b) <- t.counts.(b) +. 1.
        end
      done
    done

  (* g(r) normalized against the ideal-gas pair density, so an
     uncorrelated system reads 1 in every bin. *)
  let result t =
    if t.samples = 0 then [||]
    else begin
      let n = float_of_int t.n_particles in
      let volume = Lattice.volume t.lattice in
      let rho_pairs = n *. (n -. 1.) /. 2. /. volume in
      Array.init t.bins (fun b ->
          let r_lo = float_of_int b *. t.dr in
          let r_hi = r_lo +. t.dr in
          let shell =
            4. /. 3. *. Float.pi *. ((r_hi ** 3.) -. (r_lo ** 3.))
          in
          let expected = rho_pairs *. shell *. float_of_int t.samples in
          let r_mid = r_lo +. (0.5 *. t.dr) in
          (r_mid, if expected > 0. then t.counts.(b) /. expected else 0.))
    end

  let samples t = t.samples
end

(* ---- radial density around a center (trapped systems) ---- *)

module Density = struct
  type t = {
    center : Vec3.t;
    r_max : float;
    bins : int;
    dr : float;
    counts : float array;
    mutable samples : int;
  }

  let create ?(bins = 50) ?(center = Vec3.zero) ~r_max () =
    if r_max <= 0. then invalid_arg "Density.create: r_max <= 0";
    {
      center;
      r_max;
      bins;
      dr = r_max /. float_of_int bins;
      counts = Array.make bins 0.;
      samples = 0;
    }

  let accumulate t (w : Walker.t) =
    t.samples <- t.samples + 1;
    for i = 0 to Walker.n_particles w - 1 do
      let d = Vec3.dist t.center (Walker.Aos.get w.Walker.r i) in
      if d < t.r_max then begin
        let b = int_of_float (d /. t.dr) in
        if b >= 0 && b < t.bins then t.counts.(b) <- t.counts.(b) +. 1.
      end
    done

  (* n(r): particles per unit volume in each radial shell. *)
  let result t =
    if t.samples = 0 then [||]
    else
      Array.init t.bins (fun b ->
          let r_lo = float_of_int b *. t.dr in
          let r_hi = r_lo +. t.dr in
          let shell =
            4. /. 3. *. Float.pi *. ((r_hi ** 3.) -. (r_lo ** 3.))
          in
          let r_mid = r_lo +. (0.5 *. t.dr) in
          (r_mid, t.counts.(b) /. shell /. float_of_int t.samples))

  let total t =
    if t.samples = 0 then 0.
    else Array.fold_left ( +. ) 0. t.counts /. float_of_int t.samples

  let samples t = t.samples
end
