(* Build variants of the engine, matching the paper's measurement points:

   - [Ref]        : AoS kernels, packed tables, store-over-compute, all
                    double precision (QMC_MIXED_PRECISION=0 baseline).
   - [Ref_mp]     : the same algorithms with single-precision storage for
                    the key data structures (QMC_MIXED_PRECISION=1).
   - [Current]    : SoA kernels, forward-update / compute-on-the-fly
                    tables and Jastrows, mixed precision — all the
                    optimizations of Sec. 7.
   - [Current_f64]: the Current algorithms at double precision; an
                    ablation that isolates layout/algorithm effects from
                    precision effects. *)

type t = Ref | Ref_mp | Current | Current_f64

(* Update policy: [Store] keeps pair state and updates it on acceptance;
   [Otf] recomputes rows on the fly. *)
type layout = Store | Otf

let layout = function Ref | Ref_mp -> Store | Current | Current_f64 -> Otf

let precision_name = function
  | Ref -> "f64"
  | Ref_mp -> "f32"
  | Current -> "f32"
  | Current_f64 -> "f64"

let to_string = function
  | Ref -> "Ref"
  | Ref_mp -> "Ref+MP"
  | Current -> "Current"
  | Current_f64 -> "Current(f64)"

let of_string = function
  | "ref" | "Ref" -> Ref
  | "ref+mp" | "Ref+MP" | "mp" -> Ref_mp
  | "current" | "Current" -> Current
  | "current64" | "Current(f64)" -> Current_f64
  | s -> invalid_arg (Printf.sprintf "Variant.of_string: %S" s)

let all = [ Ref; Ref_mp; Current; Current_f64 ]
