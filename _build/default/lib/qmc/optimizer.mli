(** Trial-wavefunction optimization: minimize the mixed cost E + w·σ²
    over wavefunction parameters with fixed-seed VMC evaluations (the
    step that produces optimized Jastrow functors like the paper's
    Fig. 3). *)

type objective = Variance | Energy | Mixed of float

type history_entry = { params : float array; energy : float; variance : float }

type result = {
  best : float array;
  best_cost : float;
  history : history_entry list;
  vmc : Vmc.result;
  nm : Nelder_mead.result;
}

val default_params : Vmc.params

val optimize :
  ?objective:objective ->
  ?vmc_params:Vmc.params ->
  ?variant:Variant.t ->
  ?max_iter:int ->
  ?tol:float ->
  ?init_step:float ->
  system_of:(float array -> System.t) ->
  float array ->
  result
(** [optimize ~system_of x0] minimizes the objective over parameter
    vectors, rebuilding the system via [system_of] for each trial
    point. *)
