(* Derivative-free Nelder–Mead simplex minimizer.

   The wavefunction optimizer needs a robust minimizer of noisy,
   non-differentiable objectives (VMC variance as a function of Jastrow
   parameters); the classic simplex with standard coefficients
   (reflection 1, expansion 2, contraction ½, shrink ½) is what QMCPACK's
   legacy optimizers fall back to as well. *)

type result = {
  x : float array;
  fx : float;
  iterations : int;
  evaluations : int;
  converged : bool;
}

let default_tol = 1e-6

let minimize ?(max_iter = 200) ?(tol = default_tol) ?(init_step = 0.5) ~f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty parameter vector";
  let evals = ref 0 in
  let eval x =
    incr evals;
    f x
  in
  (* Initial simplex: x0 plus a step along each axis. *)
  let simplex =
    Array.init (n + 1) (fun i ->
        let x = Array.copy x0 in
        if i > 0 then x.(i - 1) <- x.(i - 1) +. init_step;
        x)
  in
  let values = Array.map eval simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    idx
  in
  let centroid exclude =
    let c = Array.make n 0. in
    Array.iteri
      (fun i x ->
        if i <> exclude then
          Array.iteri (fun j v -> c.(j) <- c.(j) +. (v /. float_of_int n)) x)
      simplex;
    c
  in
  let blend a b alpha =
    Array.init n (fun j -> a.(j) +. (alpha *. (b.(j) -. a.(j))))
  in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) in
    let second_worst = idx.(n - 1) in
    (* Convergence: spread of function values. *)
    if abs_float (values.(worst) -. values.(best)) < tol then
      converged := true
    else begin
      let c = centroid worst in
      (* Reflection. *)
      let xr = blend c simplex.(worst) (-1.) in
      let fr = eval xr in
      if fr < values.(best) then begin
        (* Expansion. *)
        let xe = blend c simplex.(worst) (-2.) in
        let fe = eval xe in
        if fe < fr then begin
          simplex.(worst) <- xe;
          values.(worst) <- fe
        end
        else begin
          simplex.(worst) <- xr;
          values.(worst) <- fr
        end
      end
      else if fr < values.(second_worst) then begin
        simplex.(worst) <- xr;
        values.(worst) <- fr
      end
      else begin
        (* Contraction toward the better of worst/reflected. *)
        let xc =
          if fr < values.(worst) then blend c xr 0.5
          else blend c simplex.(worst) 0.5
        in
        let fc = eval xc in
        if fc < Float.min fr values.(worst) then begin
          simplex.(worst) <- xc;
          values.(worst) <- fc
        end
        else begin
          (* Shrink toward the best vertex. *)
          Array.iteri
            (fun i x ->
              if i <> best then begin
                simplex.(i) <- blend simplex.(best) x 0.5;
                values.(i) <- eval simplex.(i)
              end)
            simplex
        end
      end
    end
  done;
  let idx = order () in
  {
    x = Array.copy simplex.(idx.(0));
    fx = values.(idx.(0));
    iterations = !iter;
    evaluations = !evals;
    converged = !converged;
  }
