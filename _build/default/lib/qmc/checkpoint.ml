open Oqmc_particle
open Oqmc_containers

(* Checkpoint/restart for walker populations.

   Production DMC runs over days checkpoint their walker ensemble (the
   serialized Walker objects of the load-balancing path) so a job can
   resume mid-propagation.  The format is a versioned plain-text stream:
   portable, diffable, and the buffers are written in full precision via
   the %h hex-float format so restart is bit-exact. *)

let magic = "OQMC-CHECKPOINT-1"

let write_walker oc (w : Walker.t) =
  let n = Walker.n_particles w in
  Printf.fprintf oc "walker %d %h %d %d %h %h\n" n w.Walker.weight
    w.Walker.multiplicity w.Walker.age w.Walker.log_psi w.Walker.e_local;
  for i = 0 to n - 1 do
    let p = Walker.Aos.get w.Walker.r i in
    Printf.fprintf oc "%h %h %h\n" p.Vec3.x p.Vec3.y p.Vec3.z
  done;
  let buf = Wbuffer.contents w.Walker.buffer in
  Printf.fprintf oc "buffer %d\n" (Array.length buf);
  Array.iter (fun v -> Printf.fprintf oc "%h\n" v) buf

let save ~path ~e_trial walkers =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" magic;
      Printf.fprintf oc "e_trial %h\n" e_trial;
      Printf.fprintf oc "walkers %d\n" (List.length walkers);
      List.iter (write_walker oc) walkers)

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let read_line_exn ic what =
  match input_line ic with
  | line -> line
  | exception End_of_file -> fail "unexpected end of file reading %s" what

let scan_line ic what fmt f =
  let line = read_line_exn ic what in
  try Scanf.sscanf line fmt f
  with Scanf.Scan_failure _ | Failure _ ->
    fail "malformed %s line: %S" what line

let read_walker ic =
  let n, weight, multiplicity, age, log_psi, e_local =
    scan_line ic "walker header" "walker %d %h %d %d %h %h"
      (fun a b c d e f -> (a, b, c, d, e, f))
  in
  if n < 1 then fail "walker with %d particles" n;
  let w = Walker.create n in
  w.Walker.weight <- weight;
  w.Walker.multiplicity <- multiplicity;
  w.Walker.age <- age;
  w.Walker.log_psi <- log_psi;
  w.Walker.e_local <- e_local;
  for i = 0 to n - 1 do
    let x, y, z =
      scan_line ic "position" "%h %h %h" (fun x y z -> (x, y, z))
    in
    Walker.Aos.set w.Walker.r i (Vec3.make x y z)
  done;
  let nbuf = scan_line ic "buffer header" "buffer %d" Fun.id in
  Wbuffer.clear w.Walker.buffer;
  for _ = 1 to nbuf do
    let v = scan_line ic "buffer value" "%h" Fun.id in
    Wbuffer.add w.Walker.buffer v
  done;
  Wbuffer.rewind w.Walker.buffer;
  w

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = read_line_exn ic "magic" in
      if header <> magic then fail "bad magic %S" header;
      let e_trial = scan_line ic "e_trial" "e_trial %h" Fun.id in
      let count = scan_line ic "walker count" "walkers %d" Fun.id in
      if count < 0 then fail "negative walker count";
      let walkers = List.init count (fun _ -> read_walker ic) in
      (e_trial, walkers))
