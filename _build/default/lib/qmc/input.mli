(** Minimal line-oriented input deck ([key = value], [#] comments) for the
    production driver.  Unknown keys are rejected. *)

type t = {
  method_ : string;
  workload : string;
  variant : Variant.t;
  reduction : int;
  walkers : int;
  blocks : int;
  steps : int;
  tau : float;
  domains : int;
  nlpp : bool;
  seed : int;
  checkpoint : string option;
  restore : string option;
}

val default : t

exception Parse_error of string

val parse_string : string -> t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> t
