(** Derivative-free Nelder–Mead simplex minimizer, used by the
    wavefunction optimizer on noisy VMC objectives. *)

type result = {
  x : float array;
  fx : float;
  iterations : int;
  evaluations : int;
  converged : bool;
}

val default_tol : float

val minimize :
  ?max_iter:int ->
  ?tol:float ->
  ?init_step:float ->
  f:(float array -> float) ->
  float array ->
  result
(** Minimize [f] from the start point [x0].
    @raise Invalid_argument for an empty parameter vector. *)
