open Oqmc_containers
open Oqmc_particle
open Oqmc_spline
open Oqmc_wavefunction
open Oqmc_hamiltonian

(* Physical system description, independent of build variant and storage
   precision.  Workload definitions (Table 1 benchmarks, validation
   systems) produce values of this type; the engine factory turns one into
   a per-thread compute engine for a given variant. *)

type ion_group = { sname : string; charge : float; positions : Vec3.t list }

type ham_spec = {
  coulomb : bool; (* e-e, e-I (if ions), I-I Coulomb terms *)
  ewald : bool;
  (* full Ewald electrostatics instead of the minimum-image shortcut
     (only meaningful with [coulomb = true] and a periodic cell) *)
  harmonic : float option; (* external ½ω²r² trap (validation systems) *)
  nlpp : Nlpp.ion_species array option; (* per ion species *)
}

type t = {
  name : string;
  lattice : Lattice.t;
  n_up : int;
  n_down : int;
  ions : ion_group list;
  spo : Spo.t; (* shared by both spin determinants, as in the benchmarks *)
  j1 : Cubic_spline_1d.t array option; (* functor per ion species *)
  j2 : Cubic_spline_1d.t array array option; (* functor per spin pair *)
  ham : ham_spec;
}

let n_electrons t = t.n_up + t.n_down

let n_ions t =
  List.fold_left (fun acc g -> acc + List.length g.positions) 0 t.ions

let validate t =
  if t.n_up < 1 then invalid_arg "System: n_up < 1";
  if t.n_down < 0 then invalid_arg "System: n_down < 0";
  let need = max t.n_up t.n_down in
  if t.spo.Spo.n_orb < need then
    invalid_arg "System: fewer orbitals than electrons of one spin";
  (match t.j1 with
  | Some fs ->
      if List.length t.ions <> Array.length fs then
        invalid_arg "System: J1 functor count mismatch"
  | None -> ());
  (match t.j2 with
  | Some m ->
      let ns = if t.n_down > 0 then 2 else 1 in
      if Array.length m <> ns then
        invalid_arg "System: J2 functor matrix mismatch"
  | None -> ());
  (match t.ham.nlpp with
  | Some sp ->
      if List.length t.ions <> Array.length sp then
        invalid_arg "System: NLPP species mismatch"
  | None -> ());
  t
