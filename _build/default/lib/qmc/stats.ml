(* Monte Carlo statistics: running moments, a growable sample series, the
   integrated autocorrelation time τ_corr of Sec. 3 and the DMC efficiency
   κ = 1/(σ² τ_corr T_MC). *)

type running = { mutable n : int; mutable mean : float; mutable m2 : float }

let make_running () = { n = 0; mean = 0.; m2 = 0. }

let push r x =
  r.n <- r.n + 1;
  let d = x -. r.mean in
  r.mean <- r.mean +. (d /. float_of_int r.n);
  r.m2 <- r.m2 +. (d *. (x -. r.mean))

let count r = r.n
let mean r = r.mean

let variance r = if r.n < 2 then 0. else r.m2 /. float_of_int (r.n - 1)

let std_error r =
  if r.n < 2 then 0. else sqrt (variance r /. float_of_int r.n)

(* ---- sample series ---- *)

type series = { mutable data : float array; mutable len : int }

let make_series () = { data = Array.make 1024 0.; len = 0 }

let append s x =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0. in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let length s = s.len
let get s i = s.data.(i)
let to_array s = Array.sub s.data 0 s.len

let series_mean s =
  if s.len = 0 then 0.
  else begin
    let acc = ref 0. in
    for i = 0 to s.len - 1 do
      acc := !acc +. s.data.(i)
    done;
    !acc /. float_of_int s.len
  end

let series_variance s =
  if s.len < 2 then 0.
  else begin
    let m = series_mean s in
    let acc = ref 0. in
    for i = 0 to s.len - 1 do
      let d = s.data.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int (s.len - 1)
  end

(* Normalized autocorrelation at lag [k]. *)
let autocorrelation s k =
  let n = s.len in
  if k >= n || n < 2 then 0.
  else begin
    let m = series_mean s in
    let num = ref 0. and den = ref 0. in
    for i = 0 to n - 1 - k do
      num := !num +. ((s.data.(i) -. m) *. (s.data.(i + k) -. m))
    done;
    for i = 0 to n - 1 do
      let d = s.data.(i) -. m in
      den := !den +. (d *. d)
    done;
    if !den = 0. then 0. else !num /. !den
  end

(* Integrated autocorrelation time with the standard self-consistent
   window (Sokal): τ = 1 + 2 Σ ρ(k), summed while k < 5τ. *)
let autocorrelation_time s =
  if s.len < 8 then 1.
  else begin
    let tau = ref 1. in
    let k = ref 1 in
    let continue = ref true in
    while !continue && !k < s.len / 2 do
      let rho = autocorrelation s !k in
      tau := !tau +. (2. *. rho);
      if float_of_int !k >= 5. *. !tau then continue := false;
      incr k
    done;
    Float.max 1. !tau
  end

(* Error bar corrected for autocorrelation. *)
let series_error s =
  if s.len < 2 then 0.
  else
    sqrt (series_variance s *. autocorrelation_time s /. float_of_int s.len)

(* DMC efficiency κ = 1/(σ² τ_corr T_MC)  (Sec. 3). *)
let efficiency ~variance ~tau_corr ~t_mc =
  if variance <= 0. || tau_corr <= 0. || t_mc <= 0. then infinity
  else 1. /. (variance *. tau_corr *. t_mc)
