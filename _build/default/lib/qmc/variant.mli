(** Build variants of the engine — the paper's measurement points. *)

type t =
  | Ref  (** AoS, packed tables, store-over-compute, all double. *)
  | Ref_mp  (** Ref algorithms with single-precision key storage. *)
  | Current  (** SoA, compute-on-the-fly, mixed precision (Sec. 7). *)
  | Current_f64
      (** Current algorithms at double precision — the layout/algorithm
          ablation. *)

type layout = Store | Otf

val layout : t -> layout
val precision_name : t -> string
val to_string : t -> string

val of_string : string -> t
(** Accepts the {!to_string} forms and common lowercase spellings.
    @raise Invalid_argument otherwise. *)

val all : t list
