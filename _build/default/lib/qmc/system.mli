open Oqmc_containers
open Oqmc_particle
open Oqmc_spline
open Oqmc_wavefunction
open Oqmc_hamiltonian

(** Physical-system description, independent of build variant and storage
    precision.  Workload definitions produce values of this type; the
    engine factory ({!Build}) turns one into per-thread compute engines. *)

type ion_group = { sname : string; charge : float; positions : Vec3.t list }

type ham_spec = {
  coulomb : bool;  (** e-e / e-I / I-I Coulomb terms *)
  ewald : bool;
      (** full Ewald electrostatics instead of minimum image (periodic
          cells only) *)
  harmonic : float option;  (** external ½ω²r² trap (validation) *)
  nlpp : Nlpp.ion_species array option;  (** channels per ion species *)
}

type t = {
  name : string;
  lattice : Lattice.t;
  n_up : int;
  n_down : int;
  ions : ion_group list;
  spo : Spo.t;  (** shared by both spin determinants *)
  j1 : Cubic_spline_1d.t array option;  (** functor per ion species *)
  j2 : Cubic_spline_1d.t array array option;  (** per spin pair *)
  ham : ham_spec;
}

val n_electrons : t -> int
val n_ions : t -> int

val validate : t -> t
(** Sanity-check counts and cross-references; returns the input.
    @raise Invalid_argument on inconsistencies. *)
