lib/qmc/runner.ml: Array Domain Engine_api Oqmc_containers Timers
