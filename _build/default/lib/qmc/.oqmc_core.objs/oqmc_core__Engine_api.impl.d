lib/qmc/engine_api.ml: Oqmc_containers Oqmc_particle Oqmc_rng Timers Walker
