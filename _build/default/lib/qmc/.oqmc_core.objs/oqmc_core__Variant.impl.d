lib/qmc/variant.ml: Printf
