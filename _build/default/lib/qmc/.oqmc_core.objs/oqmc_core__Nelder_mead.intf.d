lib/qmc/nelder_mead.mli:
