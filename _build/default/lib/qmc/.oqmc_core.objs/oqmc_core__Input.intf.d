lib/qmc/input.mli: Variant
