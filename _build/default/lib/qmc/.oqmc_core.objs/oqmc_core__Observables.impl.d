lib/qmc/observables.ml: Array Float Lattice Oqmc_containers Oqmc_particle Vec3 Walker
