lib/qmc/population.ml: Array Float List Oqmc_particle Oqmc_rng Walker Xoshiro
