lib/qmc/checkpoint.ml: Array Fun List Oqmc_containers Oqmc_particle Printf Scanf Vec3 Walker Wbuffer
