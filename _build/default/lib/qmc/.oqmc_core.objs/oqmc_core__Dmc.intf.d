lib/qmc/dmc.mli: Engine_api Oqmc_particle
