lib/qmc/system.mli: Cubic_spline_1d Lattice Nlpp Oqmc_containers Oqmc_hamiltonian Oqmc_particle Oqmc_spline Oqmc_wavefunction Spo Vec3
