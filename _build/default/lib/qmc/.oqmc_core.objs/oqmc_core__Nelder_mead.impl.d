lib/qmc/nelder_mead.ml: Array Float Fun
