lib/qmc/observables.mli: Lattice Oqmc_containers Oqmc_particle Vec3 Walker
