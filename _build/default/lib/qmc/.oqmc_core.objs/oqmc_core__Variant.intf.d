lib/qmc/variant.mli:
