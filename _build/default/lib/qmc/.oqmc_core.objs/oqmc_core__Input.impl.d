lib/qmc/input.ml: Fun List Printf String Variant
