lib/qmc/stats.mli:
