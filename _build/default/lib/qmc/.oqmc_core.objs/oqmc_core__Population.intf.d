lib/qmc/population.mli: Oqmc_particle Oqmc_rng Walker
