lib/qmc/runner.mli: Engine_api Oqmc_containers
