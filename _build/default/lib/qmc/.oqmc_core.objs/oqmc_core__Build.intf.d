lib/qmc/build.mli: Engine Engine_api Oqmc_containers Precision System Timers Variant
