lib/qmc/system.ml: Array Cubic_spline_1d Lattice List Nlpp Oqmc_containers Oqmc_hamiltonian Oqmc_particle Oqmc_spline Oqmc_wavefunction Spo Vec3
