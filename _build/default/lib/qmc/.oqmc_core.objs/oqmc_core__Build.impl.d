lib/qmc/build.ml: Engine Engine_api Oqmc_containers Precision System Timers Variant
