lib/qmc/optimizer.ml: Array Build List Nelder_mead System Variant Vmc
