lib/qmc/vmc.ml: Array Engine_api Oqmc_containers Oqmc_particle Oqmc_rng Runner Stats Walker Xoshiro
