lib/qmc/dmc.ml: Array Engine_api List Oqmc_containers Oqmc_particle Oqmc_rng Population Runner Stats Walker Xoshiro
