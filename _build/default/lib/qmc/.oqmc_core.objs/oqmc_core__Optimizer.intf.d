lib/qmc/optimizer.mli: Nelder_mead System Variant Vmc
