lib/qmc/stats.ml: Array Float
