lib/qmc/checkpoint.mli: Oqmc_particle Walker
