lib/qmc/vmc.mli: Engine_api Oqmc_particle
