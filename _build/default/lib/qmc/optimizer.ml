(* Trial-wavefunction optimization (the step that produces functors like
   the paper's Fig. 3 before any production DMC run).

   The objective is the standard mixed cost  E + w·σ²  estimated by a
   short VMC run with a FIXED seed: the same random-number stream across
   parameter sets makes the objective a deterministic function of the
   parameters (a cheap stand-in for correlated sampling), so the simplex
   minimizer sees a smooth landscape even at small sample counts.
   For the exact ground state σ² = 0, so variance-dominated costs drive
   the Jastrow toward the physically optimal functor. *)

type objective = Variance | Energy | Mixed of float
(* Mixed w: cost = E + w σ² *)

type history_entry = { params : float array; energy : float; variance : float }

type result = {
  best : float array;
  best_cost : float;
  history : history_entry list;
  vmc : Vmc.result; (* final evaluation at the optimum *)
  nm : Nelder_mead.result;
}

let cost_of objective (r : Vmc.result) =
  match objective with
  | Variance -> r.Vmc.variance
  | Energy -> r.Vmc.energy
  | Mixed w -> r.Vmc.energy +. (w *. r.Vmc.variance)

let default_params =
  {
    Vmc.n_walkers = 4;
    warmup = 30;
    blocks = 4;
    steps_per_block = 10;
    tau = 0.3;
    seed = 2718;
    n_domains = 1;
  }

(* Minimize [objective] over parameters, where [system_of] rebuilds the
   trial wavefunction for a parameter vector. *)
let optimize ?(objective = Mixed 1.0) ?(vmc_params = default_params)
    ?(variant = Variant.Current_f64) ?(max_iter = 40) ?(tol = 1e-4)
    ?(init_step = 0.3) ~(system_of : float array -> System.t) x0 =
  let history = ref [] in
  let evaluate params =
    let sys = system_of params in
    let factory = Build.factory ~variant ~seed:vmc_params.Vmc.seed sys in
    let r = Vmc.run ~factory vmc_params in
    history :=
      {
        params = Array.copy params;
        energy = r.Vmc.energy;
        variance = r.Vmc.variance;
      }
      :: !history;
    (r, cost_of objective r)
  in
  let nm =
    Nelder_mead.minimize ~max_iter ~tol ~init_step
      ~f:(fun p -> snd (evaluate p))
      x0
  in
  let final_vmc, best_cost = evaluate nm.Nelder_mead.x in
  {
    best = nm.Nelder_mead.x;
    best_cost;
    history = List.rev !history;
    vmc = final_vmc;
    nm;
  }
