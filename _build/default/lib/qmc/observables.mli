open Oqmc_containers
open Oqmc_particle

(** Configuration observables beyond the energy: the pair-correlation
    function g(r) and radial density profiles.  Drivers feed walkers via
    [accumulate]; normalization happens at readout. *)

module Gofr : sig
  type t

  val create : ?bins:int -> lattice:Lattice.t -> unit -> t
  (** Histogram out to the Wigner–Seitz radius.
      @raise Invalid_argument for an open cell. *)

  val accumulate : t -> Walker.t -> unit

  val result : t -> (float * float) array
  (** (r, g(r)) pairs; an uncorrelated system reads 1 everywhere. *)

  val samples : t -> int
end

module Density : sig
  type t

  val create : ?bins:int -> ?center:Vec3.t -> r_max:float -> unit -> t
  (** @raise Invalid_argument if [r_max <= 0]. *)

  val accumulate : t -> Walker.t -> unit

  val result : t -> (float * float) array
  (** (r, n(r)) radial density. *)

  val total : t -> float
  (** Average number of particles inside [r_max] per sample. *)

  val samples : t -> int
end
