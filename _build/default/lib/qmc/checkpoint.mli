open Oqmc_particle

(** Checkpoint/restart of a walker ensemble: versioned plain-text format
    with hex-float fields, so resumed runs are bit-exact. *)

exception Corrupt of string
(** Raised by {!load} on malformed or truncated files. *)

val magic : string

val save : path:string -> e_trial:float -> Walker.t list -> unit
(** Serialize positions, DMC bookkeeping and the anonymous state buffer
    of every walker. *)

val load : path:string -> float * Walker.t list
(** Returns the trial energy and the walkers, with buffers rewound ready
    for [restore_walker]. *)
