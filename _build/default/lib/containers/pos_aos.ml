(* Array-of-structures particle positions: the paper's R[N][3].

   Coordinates are interleaved [x0 y0 z0 x1 y1 z1 ...] exactly like a C++
   std::vector<TinyVector<T,3>>.  Reading particle [i] therefore touches a
   3-element strided group — the access pattern whose poor vectorizability
   motivates the whole paper.  The Ref kernels iterate over this layout. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)

  type t = { data : A.t; n : int }

  let dim = 3

  let create n =
    if n < 0 then invalid_arg "Pos_aos.create: negative size";
    { data = A.create (dim * n); n }

  let length t = t.n
  let data t = t.data

  let get t i =
    let base = dim * i in
    Vec3.make (A.get t.data base)
      (A.get t.data (base + 1))
      (A.get t.data (base + 2))

  let set t i (v : Vec3.t) =
    let base = dim * i in
    A.set t.data base v.Vec3.x;
    A.set t.data (base + 1) v.Vec3.y;
    A.set t.data (base + 2) v.Vec3.z

  let unsafe_x t i = A.unsafe_get t.data (dim * i)
  let unsafe_y t i = A.unsafe_get t.data ((dim * i) + 1)
  let unsafe_z t i = A.unsafe_get t.data ((dim * i) + 2)

  let copy t = { data = A.copy t.data; n = t.n }
  let blit ~src ~dst = A.blit ~src:src.data ~dst:dst.data

  let of_vec3s vs =
    let t = create (Array.length vs) in
    Array.iteri (fun i v -> set t i v) vs;
    t

  let to_vec3s t = Array.init t.n (get t)

  let iteri f t =
    for i = 0 to t.n - 1 do
      f i (get t i)
    done

  let bytes t = A.bytes t.data
end
