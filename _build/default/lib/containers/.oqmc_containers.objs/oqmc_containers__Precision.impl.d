lib/containers/precision.ml: Bigarray Int32
