lib/containers/pos_aos.mli: Aligned Precision Vec3
