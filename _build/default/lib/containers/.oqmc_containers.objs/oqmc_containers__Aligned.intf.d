lib/containers/aligned.mli: Bigarray Precision
