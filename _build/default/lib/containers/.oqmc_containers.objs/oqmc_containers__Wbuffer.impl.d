lib/containers/wbuffer.ml: Array Vec3
