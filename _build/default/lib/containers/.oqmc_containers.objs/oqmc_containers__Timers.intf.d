lib/containers/timers.mli: Format
