lib/containers/wbuffer.mli: Vec3
