lib/containers/vsc.mli: Aligned Pos_aos Precision Vec3
