lib/containers/vec3.ml: Format Printf
