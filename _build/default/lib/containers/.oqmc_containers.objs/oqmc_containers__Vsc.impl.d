lib/containers/vsc.ml: Aligned Array Pos_aos Precision Vec3
