lib/containers/matrix.mli: Aligned Format Precision
