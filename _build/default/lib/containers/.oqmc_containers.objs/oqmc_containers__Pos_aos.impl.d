lib/containers/pos_aos.ml: Aligned Array Precision Vec3
