lib/containers/vec3.mli: Format
