lib/containers/aligned.ml: Array Bigarray Precision
