lib/containers/timers.ml: Format Hashtbl List Unix
