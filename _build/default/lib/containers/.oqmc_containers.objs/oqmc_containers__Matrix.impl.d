lib/containers/matrix.ml: Aligned Array Float Format Precision
