(* Dense row-major matrices over a fixed storage precision.

   Rows can carry SIMD padding (leading dimension [ld >= cols]) so that
   row-streaming kernels — distance-table rows, the inverse-matrix rows of
   the determinant update — enjoy the same aligned unit-stride access as
   the SoA position container. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)

  type t = { data : A.t; rows : int; cols : int; ld : int }

  let create ?(padded = false) rows cols =
    if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative size";
    let ld = if padded then A.padded_len (max cols 1) else max cols 0 in
    { data = A.create (rows * ld); rows; cols; ld }

  let rows t = t.rows
  let cols t = t.cols
  let ld t = t.ld
  let data t = t.data

  let get t i j = A.get t.data ((i * t.ld) + j)
  let set t i j v = A.set t.data ((i * t.ld) + j) v
  let unsafe_get t i j = A.unsafe_get t.data ((i * t.ld) + j)
  let unsafe_set t i j v = A.unsafe_set t.data ((i * t.ld) + j) v

  let row t i = A.sub t.data ~pos:(i * t.ld) ~len:t.ld

  let fill t v = A.fill t.data v

  let copy t = { t with data = A.copy t.data }

  let blit ~src ~dst =
    if src.rows <> dst.rows || src.cols <> dst.cols || src.ld <> dst.ld then
      invalid_arg "Matrix.blit: shape mismatch";
    A.blit ~src:src.data ~dst:dst.data

  let init ?padded rows cols f =
    let t = create ?padded rows cols in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        set t i j (f i j)
      done
    done;
    t

  let of_arrays xss =
    let rows = Array.length xss in
    let cols = if rows = 0 then 0 else Array.length xss.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg "Matrix.of_arrays: ragged rows")
      xss;
    init rows cols (fun i j -> xss.(i).(j))

  let to_arrays t =
    Array.init t.rows (fun i -> Array.init t.cols (fun j -> get t i j))

  let transpose t = init ?padded:None t.cols t.rows (fun i j -> get t j i)

  let identity n = init n n (fun i j -> if i = j then 1. else 0.)

  let map2_inplace f ~src ~dst =
    if src.rows <> dst.rows || src.cols <> dst.cols then
      invalid_arg "Matrix.map2_inplace: shape mismatch";
    for i = 0 to dst.rows - 1 do
      for j = 0 to dst.cols - 1 do
        unsafe_set dst i j (f (unsafe_get dst i j) (unsafe_get src i j))
      done
    done

  let max_abs_diff a b =
    if a.rows <> b.rows || a.cols <> b.cols then
      invalid_arg "Matrix.max_abs_diff: shape mismatch";
    let m = ref 0. in
    for i = 0 to a.rows - 1 do
      for j = 0 to a.cols - 1 do
        m := Float.max !m (abs_float (unsafe_get a i j -. unsafe_get b i j))
      done
    done;
    !m

  let bytes t = A.bytes t.data

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    for i = 0 to t.rows - 1 do
      Format.fprintf ppf "@[<h>";
      for j = 0 to t.cols - 1 do
        Format.fprintf ppf "%10.5g " (get t i j)
      done;
      Format.fprintf ppf "@]@,"
    done;
    Format.fprintf ppf "@]"
end
