(* VectorSoaContainer<T,3>: the transposed, padded companion of Pos_aos.

   One backing allocation holds three contiguous component rows of padded
   stride Nᵖ: [x0..x(Nᵖ-1) | y0.. | z0..].  Kernels stream each component
   row with unit stride, which is what makes the compiler-vectorized loops
   of the paper (and the tight float loops here) fast.  The container
   supports in-place AoS-to-SoA assignment (the extra copy performed by
   loadWalker in the optimized code) and single-particle updates (the only
   write on an accepted move: 6 scalars across R and Rsoa). *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module Aos = Pos_aos.Make (R)

  type t = { data : A.t; n : int; stride : int }

  let create n =
    if n < 0 then invalid_arg "Vsc.create: negative size";
    let stride = A.padded_len (max n 1) in
    { data = A.create (3 * stride); n; stride }

  let length t = t.n
  let stride t = t.stride
  let data t = t.data

  (* Component rows as shared-storage slices: unit-stride views used by the
     distance kernels. *)
  let xs t = A.sub t.data ~pos:0 ~len:t.stride
  let ys t = A.sub t.data ~pos:t.stride ~len:t.stride
  let zs t = A.sub t.data ~pos:(2 * t.stride) ~len:t.stride

  let get t i =
    Vec3.make (A.get t.data i)
      (A.get t.data (t.stride + i))
      (A.get t.data ((2 * t.stride) + i))

  let set t i (v : Vec3.t) =
    A.set t.data i v.Vec3.x;
    A.set t.data (t.stride + i) v.Vec3.y;
    A.set t.data ((2 * t.stride) + i) v.Vec3.z

  let unsafe_x t i = A.unsafe_get t.data i
  let unsafe_y t i = A.unsafe_get t.data (t.stride + i)
  let unsafe_z t i = A.unsafe_get t.data ((2 * t.stride) + i)

  (* AoS-to-SoA assignment: Rsoa = awalker.R in loadWalker. *)
  let assign_from_aos t (aos : Aos.t) =
    if Aos.length aos <> t.n then
      invalid_arg "Vsc.assign_from_aos: size mismatch";
    let src = Aos.data aos in
    for i = 0 to t.n - 1 do
      let base = 3 * i in
      A.unsafe_set t.data i (A.unsafe_get src base);
      A.unsafe_set t.data (t.stride + i) (A.unsafe_get src (base + 1));
      A.unsafe_set t.data ((2 * t.stride) + i) (A.unsafe_get src (base + 2))
    done

  let to_aos t =
    let aos = Aos.create t.n in
    for i = 0 to t.n - 1 do
      Aos.set aos i (get t i)
    done;
    aos

  let copy t = { data = A.copy t.data; n = t.n; stride = t.stride }

  let of_vec3s vs =
    let t = create (Array.length vs) in
    Array.iteri (fun i v -> set t i v) vs;
    t

  let iteri f t =
    for i = 0 to t.n - 1 do
      f i (get t i)
    done

  let bytes t = A.bytes t.data
end
