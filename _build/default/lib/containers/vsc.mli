(** [VectorSoaContainer<T,3>] — the paper's generic SoA container.  Holds
    particle coordinates as three contiguous padded component rows
    ([Rsoa[3][Nᵖ]]) so distance and Jastrow kernels stream memory with unit
    stride.  Lives alongside its AoS counterpart ({!Pos_aos}); the only
    extra costs are the AoS-to-SoA assignment in [loadWalker] and a 6-scalar
    update on each accepted move, exactly as in the paper. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module Aos : module type of Pos_aos.Make (R)

  type t

  val create : int -> t
  (** Container for [n] particles; rows are padded to {!stride}. *)

  val length : t -> int

  val stride : t -> int
  (** Padded row length Nᵖ (a multiple of the SIMD width). *)

  val data : t -> A.t

  val xs : t -> A.t
  val ys : t -> A.t
  val zs : t -> A.t
  (** Unit-stride component rows (shared storage, length {!stride};
      entries at indices [>= length t] are padding). *)

  val get : t -> int -> Vec3.t
  val set : t -> int -> Vec3.t -> unit

  val unsafe_x : t -> int -> float
  val unsafe_y : t -> int -> float
  val unsafe_z : t -> int -> float

  val assign_from_aos : t -> Aos.t -> unit
  (** In-place AoS-to-SoA transposition ([Rsoa = awalker.R]).
      @raise Invalid_argument on size mismatch. *)

  val to_aos : t -> Aos.t
  val copy : t -> t
  val of_vec3s : Vec3.t array -> t
  val iteri : (int -> Vec3.t -> unit) -> t -> unit

  val bytes : t -> int
end
