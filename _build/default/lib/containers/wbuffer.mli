(** Anonymous walker buffer — QMCPACK's [PooledData<T>].  A flat pool of
    scalars into which wavefunction components serialize the internal state
    needed to resume particle-by-particle updates on a stored walker.

    Two-phase protocol: a registration pass sizes the pool with {!add};
    later passes {!rewind} and then stream through it with {!get}/{!put} in
    the same component order. *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val cursor : t -> int

val bytes : t -> int
(** Pool footprint in bytes (doubles); the walker message size of the
    paper's load-balancing step. *)

val clear : t -> unit
val rewind : t -> unit

val add : t -> float -> unit
(** Append during the registration pass (grows the pool). *)

val put : t -> float -> unit
(** Overwrite at the cursor and advance.
    @raise Invalid_argument past the end of the pool. *)

val get : t -> float
(** Read at the cursor and advance.
    @raise Invalid_argument past the end of the pool. *)

val add_vec3 : t -> Vec3.t -> unit
val put_vec3 : t -> Vec3.t -> unit
val get_vec3 : t -> Vec3.t
val add_array : t -> float array -> unit
val put_array : t -> float array -> unit
val get_array : t -> int -> float array

val copy : t -> t
val contents : t -> float array
