(* Anonymous walker buffer (QMCPACK's PooledData<T>).

   The Ref design reconstructs a walker's complete wavefunction state
   without recomputation by serializing every component's scalars into one
   flat buffer.  Usage is two-phase: a registration pass [add]s values to
   size the pool; thereafter components [rewind] and [get]/[put] their slice
   at a running cursor.  The Current design shrinks what goes in here —
   that shrinkage is the 22.5 MB/walker message-size reduction the paper
   reports for NiO-64. *)

type t = { mutable data : float array; mutable size : int; mutable cursor : int }

let create ?(capacity = 64) () =
  { data = Array.make (max capacity 1) 0.; size = 0; cursor = 0 }

let size t = t.size
let cursor t = t.cursor
let bytes t = 8 * t.size

let clear t =
  t.size <- 0;
  t.cursor <- 0

let rewind t = t.cursor <- 0

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := 2 * !cap
    done;
    let data = Array.make !cap 0. in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let add t v =
  ensure t (t.size + 1);
  t.data.(t.size) <- v;
  t.size <- t.size + 1

let put t v =
  if t.cursor >= t.size then invalid_arg "Wbuffer.put: past end of pool";
  t.data.(t.cursor) <- v;
  t.cursor <- t.cursor + 1

let get t =
  if t.cursor >= t.size then invalid_arg "Wbuffer.get: past end of pool";
  let v = t.data.(t.cursor) in
  t.cursor <- t.cursor + 1;
  v

let add_vec3 t (v : Vec3.t) =
  add t v.Vec3.x;
  add t v.Vec3.y;
  add t v.Vec3.z

let put_vec3 t (v : Vec3.t) =
  put t v.Vec3.x;
  put t v.Vec3.y;
  put t v.Vec3.z

let get_vec3 t =
  let x = get t in
  let y = get t in
  let z = get t in
  Vec3.make x y z

let add_array t a = Array.iter (add t) a
let put_array t a = Array.iter (put t) a

let get_array t n = Array.init n (fun _ -> get t)

let copy t = { data = Array.copy t.data; size = t.size; cursor = t.cursor }

let contents t = Array.sub t.data 0 t.size
