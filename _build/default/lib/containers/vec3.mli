(** Fixed 3-D vector of doubles, the analogue of QMCPACK's
    [TinyVector<T,3>].  Used at the physics-abstraction level (particle
    moves, gradients, quadrature directions); hot kernels operate on the
    raw coordinates held by {!Pos_aos} and {!Vsc} containers instead. *)

type t = { x : float; y : float; z : float }

val make : float -> float -> float -> t
val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val dot : t -> t -> float
val cross : t -> t -> t

val norm2 : t -> float
(** Squared Euclidean norm. *)

val norm : t -> float
val dist2 : t -> t -> float
val dist : t -> t -> float

val normalize : t -> t
(** Unit vector in the same direction; {!zero} stays {!zero}. *)

val map : (float -> float) -> t -> t
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val get : t -> int -> float
(** Component by index 0..2.  @raise Invalid_argument otherwise. *)

val equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison within [tol] (default exact). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
