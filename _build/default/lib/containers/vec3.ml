(* Fixed 3-D vector, the OCaml analogue of the paper's TinyVector<T,3>.

   Values are immutable records of unboxed floats; the compiler keeps them
   flat.  Hot kernels never traffic in [Vec3.t] — they read raw coordinates
   out of AoS/SoA containers — but the high-level physics (moves, drift
   vectors, quadrature points) is expressed with this type, mirroring how
   QMCPACK keeps TinyVector at the abstraction level. *)

type t = { x : float; y : float; z : float }

let make x y z = { x; y; z }
let zero = { x = 0.; y = 0.; z = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }
let neg a = { x = -.a.x; y = -.a.y; z = -.a.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)
let cross a b =
  { x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x) }

let norm2 a = dot a a
let norm a = sqrt (norm2 a)
let dist2 a b = norm2 (sub a b)
let dist a b = sqrt (dist2 a b)

let normalize a =
  let n = norm a in
  if n = 0. then zero else scale (1. /. n) a

let map f a = { x = f a.x; y = f a.y; z = f a.z }

let fold f acc a = f (f (f acc a.x) a.y) a.z

let get a = function
  | 0 -> a.x
  | 1 -> a.y
  | 2 -> a.z
  | d -> invalid_arg (Printf.sprintf "Vec3.get: dimension %d" d)

let equal ?(tol = 0.) a b =
  abs_float (a.x -. b.x) <= tol
  && abs_float (a.y -. b.y) <= tol
  && abs_float (a.z -. b.z) <= tol

let pp ppf a = Format.fprintf ppf "(%g, %g, %g)" a.x a.y a.z
let to_string a = Format.asprintf "%a" pp a
