(** Array-of-structures particle positions — QMCPACK's
    [Vector<TinyVector<T,3>>], i.e. interleaved [x y z] triples.  This is
    the layout used by the reference (Ref) kernels; it is retained alongside
    {!Vsc} in the optimized code exactly as the paper keeps [R] next to
    [Rsoa]. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)

  type t

  val dim : int
  (** Spatial dimension; fixed at 3. *)

  val create : int -> t
  (** Zero-initialized positions for [n] particles. *)

  val length : t -> int

  val data : t -> A.t
  (** The raw interleaved backing array, for layout-aware kernels and
      AoS-to-SoA assignment. *)

  val get : t -> int -> Vec3.t
  val set : t -> int -> Vec3.t -> unit

  val unsafe_x : t -> int -> float
  val unsafe_y : t -> int -> float
  val unsafe_z : t -> int -> float
  (** Unchecked single-coordinate reads for inner loops over the strided
      layout. *)

  val copy : t -> t
  val blit : src:t -> dst:t -> unit
  val of_vec3s : Vec3.t array -> t
  val to_vec3s : t -> Vec3.t array
  val iteri : (int -> Vec3.t -> unit) -> t -> unit

  val bytes : t -> int
end
