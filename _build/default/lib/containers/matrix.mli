(** Dense row-major matrices at a fixed storage precision, with optional
    SIMD row padding (leading dimension).  Backs the distance tables,
    inverse Slater matrices and B-spline coefficient planes. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)

  type t

  val create : ?padded:bool -> int -> int -> t
  (** [create rows cols], zero-filled.  With [~padded:true] the leading
      dimension is rounded up to the SIMD width. *)

  val rows : t -> int
  val cols : t -> int

  val ld : t -> int
  (** Leading dimension (row stride in elements, [>= cols]). *)

  val data : t -> A.t

  val get : t -> int -> int -> float
  val set : t -> int -> int -> float -> unit
  val unsafe_get : t -> int -> int -> float
  val unsafe_set : t -> int -> int -> float -> unit

  val row : t -> int -> A.t
  (** Shared-storage view of row [i] (length {!ld}). *)

  val fill : t -> float -> unit
  val copy : t -> t

  val blit : src:t -> dst:t -> unit
  (** @raise Invalid_argument on shape mismatch. *)

  val init : ?padded:bool -> int -> int -> (int -> int -> float) -> t
  val of_arrays : float array array -> t
  val to_arrays : t -> float array array
  val transpose : t -> t
  val identity : int -> t

  val map2_inplace : (float -> float -> float) -> src:t -> dst:t -> unit
  (** [map2_inplace f ~src ~dst] sets [dst.(i,j) <- f dst.(i,j) src.(i,j)]. *)

  val max_abs_diff : t -> t -> float

  val bytes : t -> int
  val pp : Format.formatter -> t -> unit
end
