(** Contiguous, unboxed, padded arrays of reals backing every
    storage-heavy kernel.  The functor fixes the storage precision; values
    are plain C-layout bigarrays so kernels written against a concrete
    precision get monomorphic (fast) element access. *)

val round_up : int -> int -> int
(** [round_up n m] is the smallest multiple of [m] that is [>= n] ([m] for
    [n <= 0]).  @raise Invalid_argument if [m <= 0]. *)

module Make (R : Precision.REAL) : sig
  type t = (float, R.elt, Bigarray.c_layout) Bigarray.Array1.t

  val create : int -> t
  (** Zero-initialized array of [n] elements. *)

  val padded_len : int -> int
  (** Logical length rounded up to a whole number of SIMD vectors at this
      precision, matching the paper's cache-aligned row stride [Nᵖ]. *)

  val create_padded : int -> t
  val length : t -> int

  val get : t -> int -> float
  val set : t -> int -> float -> unit
  (** [set] rounds through the storage precision. *)

  val unsafe_get : t -> int -> float
  val unsafe_set : t -> int -> float -> unit
  (** Unchecked access for inner loops.  [unsafe_set] relies on the bigarray
      write itself to narrow to storage precision. *)

  val fill : t -> float -> unit
  val blit : src:t -> dst:t -> unit
  val sub : t -> pos:int -> len:int -> t
  (** Shared-storage slice. *)

  val copy : t -> t
  val of_array : float array -> t
  val to_array : t -> float array
  val iteri : (int -> float -> unit) -> t -> unit
  val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

  val bytes : t -> int
  (** Allocated storage in bytes; feeds the memory-footprint accounting. *)
end
