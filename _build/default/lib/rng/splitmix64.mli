(** SplitMix64 seed expander.  Only used to initialize {!Xoshiro} state
    words from a single integer seed. *)

type t

val create : int -> t
val of_int64 : int64 -> t

val next : t -> int64
(** Next 64-bit output word (mutates the state). *)
