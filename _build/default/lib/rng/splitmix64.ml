(* SplitMix64 (Steele, Lea & Flood 2014): a tiny 64-bit generator used only
   to expand one seed into the state words of {!Xoshiro}, as its authors
   recommend.  Passing the raw seed directly would correlate nearby
   streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let of_int64 seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)
