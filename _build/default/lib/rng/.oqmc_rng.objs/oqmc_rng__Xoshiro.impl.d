lib/rng/xoshiro.ml: Array Float Int64 Splitmix64
