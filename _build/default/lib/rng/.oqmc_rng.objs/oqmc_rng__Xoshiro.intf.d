lib/rng/xoshiro.mli:
