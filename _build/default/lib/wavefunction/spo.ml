open Oqmc_containers

(* Single-particle-orbital engine interface (QMCPACK's SPOSet).

   An SPO set evaluates all orbitals — values (the Bspline-v kernel) or
   values, Cartesian gradients and laplacians (the SPO-vgl kernel) — at one
   electron position.  Results land in caller-owned double-precision
   buffers; the storage precision of the backing table is the engine's own
   business.  Engines are runtime values (records of closures) exactly as
   QMCPACK dispatches SPOSet virtually. *)

type vgl = {
  v : float array;
  gx : float array;
  gy : float array;
  gz : float array;
  lap : float array;
}

type t = {
  n_orb : int;
  label : string;
  eval_v : Vec3.t -> float array -> unit;
  eval_vgl : Vec3.t -> vgl -> unit;
  bytes : int; (* backing-table storage, shared across walkers/threads *)
}

let make_vgl n =
  {
    v = Array.make n 0.;
    gx = Array.make n 0.;
    gy = Array.make n 0.;
    gz = Array.make n 0.;
    lap = Array.make n 0.;
  }

let grad_of vgl m = Vec3.make vgl.gx.(m) vgl.gy.(m) vgl.gz.(m)
