open Oqmc_containers
open Oqmc_particle

(** B-spline-backed SPO engine: maps Cartesian positions to fractional
    coordinates and pushes the table's fractional derivatives through the
    cell metric, so the determinant sees Cartesian gradients and
    laplacians.  The table is read-only and shared by every walker and
    thread. *)

module Make (R : Precision.REAL) : sig
  module B3 : module type of Oqmc_spline.Bspline3d.Make (R)

  val create : table:B3.t -> lattice:Lattice.t -> Spo.t
end
