open Oqmc_particle

(** Analytic SPO engines with closed-form derivatives, used as
    zero-variance anchors by the validation systems. *)

val plane_waves : lattice:Lattice.t -> n_orb:int -> Spo.t
(** Real combinations {1, cos G·r, sin G·r, ...} over reciprocal-lattice
    shells — exact orbitals of the homogeneous electron gas.
    @raise Invalid_argument if [n_orb < 1]. *)

val harmonic : omega:float -> n_orb:int -> Spo.t
(** 3-D harmonic-oscillator eigenfunctions ordered by shell. *)

val slater_1s : centers:Oqmc_containers.Vec3.t array -> zeta:float -> Spo.t
(** One e^{−ζ|r−R|} orbital per center; exact hydrogen-like ground state
    at ζ = Z. *)

val harmonic_total_energy : omega:float -> n:int -> float
(** Exact energy of [n] same-spin fermions filling the lowest orbitals. *)
