open Oqmc_containers
open Oqmc_particle

(* Wavefunction-component interface (QMCPACK's WaveFunctionComponent).

   Components are runtime records of closures over their mutable internal
   state.  All take the electron ParticleSet; single-particle moves are
   staged on it ([Particle_set.propose]) before [ratio]/[ratio_grad] are
   called.  The engine choreographs distance-table [prepare]/[move]/
   [accept] around these calls — components never move tables themselves,
   because tables are shared (Jastrows and the Hamiltonian reuse them). *)

module Make (R : Precision.REAL) = struct
  module Ps = Particle_set.Make (R)

  (* Per-electron gradient and laplacian of log Ψ, accumulated across
     components for the kinetic energy. *)
  type gl = {
    ggx : float array;
    ggy : float array;
    ggz : float array;
    glap : float array;
  }

  let make_gl n =
    {
      ggx = Array.make n 0.;
      ggy = Array.make n 0.;
      ggz = Array.make n 0.;
      glap = Array.make n 0.;
    }

  let clear_gl g =
    Array.fill g.ggx 0 (Array.length g.ggx) 0.;
    Array.fill g.ggy 0 (Array.length g.ggy) 0.;
    Array.fill g.ggz 0 (Array.length g.ggz) 0.;
    Array.fill g.glap 0 (Array.length g.glap) 0.

  type t = {
    name : string;
    evaluate_log : Ps.t -> float;
        (* Recompute all internal state from scratch (tables must be
           fresh); returns log |ψ_c|. *)
    ratio : Ps.t -> int -> float;
        (* ψ_c(R') / ψ_c(R) for the staged move of electron [k]. *)
    ratio_grad : Ps.t -> int -> float * Vec3.t;
        (* Ratio plus ∇_k log ψ_c at the proposed position. *)
    grad : Ps.t -> int -> Vec3.t; (* ∇_k log ψ_c at the current position. *)
    accept : Ps.t -> int -> unit;
        (* Commit internal state for an accepted move.  Must be called
           BEFORE the shared tables and the particle set accept. *)
    reject : Ps.t -> int -> unit;
    accumulate_gl : Ps.t -> gl -> unit;
        (* Add this component's ∇ log ψ and ∇² log ψ per electron. *)
    register : Wbuffer.t -> unit; (* size the walker buffer (adds zeros) *)
    update_buffer : Ps.t -> Wbuffer.t -> unit;
        (* Serialize internal state at the cursor. *)
    copy_from_buffer : Ps.t -> Wbuffer.t -> unit;
        (* Restore internal state from the cursor. *)
    bytes : unit -> int; (* persistent per-walker state owned here *)
  }
end
