open Oqmc_containers
open Oqmc_particle
open Oqmc_spline

(** One-body Jastrow factor, log ψ = −Σ_{k,I} u_{s(I)}(r_kI), with a
    radial functor per ion species, in the Ref (stored N × N_ion
    matrices) and Current (5N accumulators, compute-on-the-fly)
    designs. *)

module Make (R : Precision.REAL) : sig
  module W : module type of Wfc.Make (R)
  module Ps = W.Ps
  module A : module type of Aligned.Make (R)
  module Dref : module type of Dt_ab_ref.Make (R)
  module Dsoa : module type of Dt_ab_soa.Make (R)

  type functors = Cubic_spline_1d.t array
  (** Indexed by ion species. *)

  val create_opt :
    table:Dsoa.t -> functors:functors -> ions:Ps.t -> Ps.t -> W.t
  (** @raise Invalid_argument if the functor count does not match the ion
      species. *)

  val create_ref :
    table:Dref.t -> functors:functors -> ions:Ps.t -> Ps.t -> W.t
end
