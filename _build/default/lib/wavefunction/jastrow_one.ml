open Oqmc_containers
open Oqmc_particle
open Oqmc_spline

(* One-body Jastrow factor, log ψ = −Σ_k Σ_I u_{s(I)}(r_kI), with a radial
   functor per ion species.  Because the ions never move, an accepted
   electron move touches only that electron's state, in both designs:

   [create_ref] stores the N × N_ion value/gradient/laplacian matrices
   (the store-over-compute baseline) over the Ref AB distance table.

   [create_opt] keeps 5N per-electron accumulators and recomputes rows
   from the SoA AB table on the fly. *)

module Make (R : Precision.REAL) = struct
  module W = Wfc.Make (R)
  module Ps = W.Ps
  module A = Aligned.Make (R)
  module Dref = Dt_ab_ref.Make (R)
  module Dsoa = Dt_ab_soa.Make (R)

  type functors = Cubic_spline_1d.t array
  (* indexed by ion species *)

  let eval_u (fn : Cubic_spline_1d.t) r =
    if r <= 0. || r >= Cubic_spline_1d.cutoff fn then (0., 0., 0.)
    else begin
      let u, du, d2u = Cubic_spline_1d.evaluate_vgl fn r in
      (u, du /. r, d2u +. (2. *. du /. r))
    end

  let ion_species (ions : Ps.t) (functors : functors) =
    if Array.length functors <> Ps.n_species ions then
      invalid_arg "Jastrow_one: functor array does not match ion species";
    Array.init (Ps.n ions) (fun i -> Ps.species_index ions i)

  (* ------------------------------------------------------------------ *)

  let create_opt ~(table : Dsoa.t) ~(functors : functors) ~(ions : Ps.t)
      (ps : Ps.t) : W.t =
    let n = Ps.n ps in
    let ni = Ps.n ions in
    let ion_spec = ion_species ions functors in
    let vat = Array.make n 0. in
    let gx = Array.make n 0. and gy = Array.make n 0. in
    let gz = Array.make n 0. in
    let lap = Array.make n 0. in
    let un = Array.make ni 0. and fn = Array.make ni 0. in
    let ln = Array.make ni 0. in
    let fill_row (dist : A.t) =
      for i = 0 to ni - 1 do
        let u, f, l = eval_u functors.(ion_spec.(i)) (A.unsafe_get dist i) in
        un.(i) <- u;
        fn.(i) <- f;
        ln.(i) <- l
      done
    in
    let sum a =
      let acc = ref 0. in
      for i = 0 to Array.length a - 1 do
        acc := !acc +. a.(i)
      done;
      !acc
    in
    let store_k k ~dx ~dy ~dz =
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to ni - 1 do
        ax := !ax +. (fn.(i) *. A.unsafe_get dx i);
        ay := !ay +. (fn.(i) *. A.unsafe_get dy i);
        az := !az +. (fn.(i) *. A.unsafe_get dz i)
      done;
      vat.(k) <- sum un;
      gx.(k) <- !ax;
      gy.(k) <- !ay;
      gz.(k) <- !az;
      lap.(k) <- -.sum ln
    in
    let evaluate_log _ps =
      for k = 0 to n - 1 do
        fill_row (Dsoa.row_dist table k);
        store_k k ~dx:(Dsoa.row_dx table k) ~dy:(Dsoa.row_dy table k)
          ~dz:(Dsoa.row_dz table k)
      done;
      -.sum vat
    in
    let ratio _ps k =
      fill_row (Dsoa.temp_dist table);
      exp (vat.(k) -. sum un)
    in
    let ratio_grad _ps k =
      fill_row (Dsoa.temp_dist table);
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let tx = Dsoa.temp_dx table and ty = Dsoa.temp_dy table in
      let tz = Dsoa.temp_dz table in
      for i = 0 to ni - 1 do
        ax := !ax +. (fn.(i) *. A.unsafe_get tx i);
        ay := !ay +. (fn.(i) *. A.unsafe_get ty i);
        az := !az +. (fn.(i) *. A.unsafe_get tz i)
      done;
      (exp (vat.(k) -. sum un), Vec3.make !ax !ay !az)
    in
    let grad _ps k = Vec3.make gx.(k) gy.(k) gz.(k) in
    let accept _ps k =
      (* Scratch still holds the proposed row from ratio/ratio_grad. *)
      store_k k ~dx:(Dsoa.temp_dx table) ~dy:(Dsoa.temp_dy table)
        ~dz:(Dsoa.temp_dz table)
    in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        g.W.ggx.(k) <- g.W.ggx.(k) +. gx.(k);
        g.W.ggy.(k) <- g.W.ggy.(k) +. gy.(k);
        g.W.ggz.(k) <- g.W.ggz.(k) +. gz.(k);
        g.W.glap.(k) <- g.W.glap.(k) +. lap.(k)
      done
    in
    let register buf =
      for _ = 1 to 5 * n do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      Wbuffer.put_array buf vat;
      Wbuffer.put_array buf gx;
      Wbuffer.put_array buf gy;
      Wbuffer.put_array buf gz;
      Wbuffer.put_array buf lap
    in
    let copy_from_buffer _ps buf =
      let rd a =
        for i = 0 to n - 1 do
          a.(i) <- Wbuffer.get buf
        done
      in
      rd vat;
      rd gx;
      rd gy;
      rd gz;
      rd lap
    in
    let bytes () = 5 * n * 8 in
    {
      W.name = "J1-opt";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }

  (* ------------------------------------------------------------------ *)

  let create_ref ~(table : Dref.t) ~(functors : functors) ~(ions : Ps.t)
      (ps : Ps.t) : W.t =
    let n = Ps.n ps in
    let ni = Ps.n ions in
    let ion_spec = ion_species ions functors in
    let umat = A.create (n * ni) in
    let dumat = A.create (3 * n * ni) in
    let d2umat = A.create (n * ni) in
    let un = Array.make ni 0. and fn = Array.make ni 0. in
    let ln = Array.make ni 0. in
    let fill_new_row () =
      let td = Dref.temp_dist table in
      for i = 0 to ni - 1 do
        let u, f, l = eval_u functors.(ion_spec.(i)) (A.get td i) in
        un.(i) <- u;
        fn.(i) <- f;
        ln.(i) <- l
      done
    in
    let evaluate_log _ps =
      let logv = ref 0. in
      for k = 0 to n - 1 do
        for i = 0 to ni - 1 do
          let d = Dref.dist table k i in
          let u, f, l = eval_u functors.(ion_spec.(i)) d in
          let dr = Dref.displ table k i in
          let p = (k * ni) + i in
          A.set umat p u;
          A.set dumat (3 * p) (f *. dr.Vec3.x);
          A.set dumat ((3 * p) + 1) (f *. dr.Vec3.y);
          A.set dumat ((3 * p) + 2) (f *. dr.Vec3.z);
          A.set d2umat p l;
          logv := !logv -. u
        done
      done;
      !logv
    in
    let delta k =
      let acc = ref 0. in
      for i = 0 to ni - 1 do
        acc := !acc +. un.(i) -. A.get umat ((k * ni) + i)
      done;
      !acc
    in
    let ratio _ps k =
      fill_new_row ();
      exp (-.delta k)
    in
    let ratio_grad _ps k =
      fill_new_row ();
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to ni - 1 do
        let dr = Dref.temp_displ table i in
        ax := !ax +. (fn.(i) *. dr.Vec3.x);
        ay := !ay +. (fn.(i) *. dr.Vec3.y);
        az := !az +. (fn.(i) *. dr.Vec3.z)
      done;
      (exp (-.delta k), Vec3.make !ax !ay !az)
    in
    let grad _ps k =
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to ni - 1 do
        let p = 3 * ((k * ni) + i) in
        ax := !ax +. A.get dumat p;
        ay := !ay +. A.get dumat (p + 1);
        az := !az +. A.get dumat (p + 2)
      done;
      Vec3.make !ax !ay !az
    in
    let accept _ps k =
      for i = 0 to ni - 1 do
        let dr = Dref.temp_displ table i in
        let p = (k * ni) + i in
        A.set umat p un.(i);
        A.set dumat (3 * p) (fn.(i) *. dr.Vec3.x);
        A.set dumat ((3 * p) + 1) (fn.(i) *. dr.Vec3.y);
        A.set dumat ((3 * p) + 2) (fn.(i) *. dr.Vec3.z);
        A.set d2umat p ln.(i)
      done
    in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        let ax = ref 0. and ay = ref 0. and az = ref 0. in
        let al = ref 0. in
        for i = 0 to ni - 1 do
          let p = (k * ni) + i in
          ax := !ax +. A.get dumat (3 * p);
          ay := !ay +. A.get dumat ((3 * p) + 1);
          az := !az +. A.get dumat ((3 * p) + 2);
          al := !al +. A.get d2umat p
        done;
        g.W.ggx.(k) <- g.W.ggx.(k) +. !ax;
        g.W.ggy.(k) <- g.W.ggy.(k) +. !ay;
        g.W.ggz.(k) <- g.W.ggz.(k) +. !az;
        g.W.glap.(k) <- g.W.glap.(k) -. !al
      done
    in
    let register buf =
      for _ = 1 to 5 * n * ni do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      for p = 0 to (n * ni) - 1 do
        Wbuffer.put buf (A.get umat p)
      done;
      for p = 0 to (3 * n * ni) - 1 do
        Wbuffer.put buf (A.get dumat p)
      done;
      for p = 0 to (n * ni) - 1 do
        Wbuffer.put buf (A.get d2umat p)
      done
    in
    let copy_from_buffer _ps buf =
      for p = 0 to (n * ni) - 1 do
        A.set umat p (Wbuffer.get buf)
      done;
      for p = 0 to (3 * n * ni) - 1 do
        A.set dumat p (Wbuffer.get buf)
      done;
      for p = 0 to (n * ni) - 1 do
        A.set d2umat p (Wbuffer.get buf)
      done
    in
    let bytes () = A.bytes umat + A.bytes dumat + A.bytes d2umat in
    {
      W.name = "J1-ref";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }
end
