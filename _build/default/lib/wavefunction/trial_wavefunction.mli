open Oqmc_containers

(** TrialWaveFunction: the product Ψ_T = Π ψ_c.  Logs add, ratios
    multiply, gradients of the log add; Jastrow components are timed
    under the J1/J2 kernel keys. *)

module Make (R : Precision.REAL) : sig
  module W : module type of Wfc.Make (R)
  module Ps = W.Ps

  type t

  val create : ?timers:Timers.t -> W.t list -> t
  (** @raise Invalid_argument on an empty component list. *)

  val components : t -> W.t array

  val log_psi : t -> float
  (** Running log Ψ, maintained by {!evaluate_log} and {!accept}. *)

  val set_log_psi : t -> float -> unit
  (** Restore a serialized log Ψ (walker restore path). *)

  val evaluate_log : t -> Ps.t -> float
  (** Recompute every component from scratch; tables must be fresh. *)

  val ratio : t -> Ps.t -> int -> float
  val ratio_grad : t -> Ps.t -> int -> float * Vec3.t
  val grad : t -> Ps.t -> int -> Vec3.t

  val accept : t -> Ps.t -> int -> ratio:float -> unit
  (** Commit the staged move in every component (before the shared tables
      and particle set accept) and update the running log Ψ. *)

  val reject : t -> Ps.t -> int -> unit

  val evaluate_gl : t -> Ps.t -> W.gl -> unit
  (** Per-electron ∇ log Ψ and ∇² log Ψ for the kinetic energy. *)

  val kinetic_energy : W.gl -> float
  (** −½ Σ_k (∇²logΨ + |∇logΨ|²). *)

  val register : t -> Wbuffer.t -> unit
  val update_buffer : t -> Ps.t -> Wbuffer.t -> unit
  val copy_from_buffer : t -> Ps.t -> Wbuffer.t -> unit

  val bytes : t -> int
  (** Persistent per-walker state across all components. *)
end
