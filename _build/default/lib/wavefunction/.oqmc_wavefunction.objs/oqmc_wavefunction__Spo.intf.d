lib/wavefunction/spo.mli: Oqmc_containers Vec3
