lib/wavefunction/trial_wavefunction.ml: Array Oqmc_containers Precision String Timers Vec3 Wfc
