lib/wavefunction/spo.ml: Array Oqmc_containers Vec3
