lib/wavefunction/slater_det.mli: Oqmc_containers Precision Spo Timers Wfc
