lib/wavefunction/wfc.ml: Array Oqmc_containers Oqmc_particle Particle_set Precision Vec3 Wbuffer
