lib/wavefunction/jastrow_one.ml: Aligned Array Cubic_spline_1d Dt_ab_ref Dt_ab_soa Oqmc_containers Oqmc_particle Oqmc_spline Precision Vec3 Wbuffer Wfc
