lib/wavefunction/jastrow_two.ml: Aligned Array Cubic_spline_1d Dt_aa_ref Dt_aa_soa Oqmc_containers Oqmc_particle Oqmc_spline Precision Vec3 Wbuffer Wfc
