lib/wavefunction/trial_wavefunction.mli: Oqmc_containers Precision Timers Vec3 Wbuffer Wfc
