lib/wavefunction/spo_bspline.mli: Lattice Oqmc_containers Oqmc_particle Oqmc_spline Precision Spo
