lib/wavefunction/spo_bspline.ml: Array Lattice Oqmc_containers Oqmc_particle Oqmc_spline Precision Printf Spo Vec3
