lib/wavefunction/jastrow_two.mli: Aligned Cubic_spline_1d Dt_aa_ref Dt_aa_soa Oqmc_containers Oqmc_particle Oqmc_spline Precision Wfc
