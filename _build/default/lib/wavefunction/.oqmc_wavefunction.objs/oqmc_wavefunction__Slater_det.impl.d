lib/wavefunction/slater_det.ml: Aligned Array Blas Delayed_update Lu Matrix Oqmc_containers Oqmc_linalg Precision Printf Sherman_morrison Spo Timers Vec3 Wbuffer Wfc
