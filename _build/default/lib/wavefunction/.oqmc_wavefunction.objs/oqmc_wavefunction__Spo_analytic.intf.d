lib/wavefunction/spo_analytic.mli: Lattice Oqmc_containers Oqmc_particle Spo
