lib/wavefunction/jastrow_one.mli: Aligned Cubic_spline_1d Dt_ab_ref Dt_ab_soa Oqmc_containers Oqmc_particle Oqmc_spline Precision Wfc
