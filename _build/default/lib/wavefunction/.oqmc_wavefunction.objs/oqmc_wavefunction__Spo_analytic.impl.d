lib/wavefunction/spo_analytic.ml: Array Float Lattice List Oqmc_containers Oqmc_particle Spo Vec3
