open Oqmc_containers
open Oqmc_particle
open Oqmc_spline

(* Two-body Jastrow factor, log ψ = −Σ_{i<j} u_{σᵢσⱼ}(r_ij), with a radial
   B-spline functor per spin pair.

   Two complete implementations (the heart of the paper's J2 story):

   [create_ref] — the store-over-compute baseline.  Keeps full N×N matrices
   of pair values, gradients (interleaved AoS) and laplacian terms — the
   5N² scalars per walker the paper calls out — reads old values back from
   the matrices during ratios, and updates both the row and the column of
   all three matrices on every accepted move.  Works off the packed
   triangular Ref distance table and serializes the whole 5N² block into
   the walker buffer.

   [create_opt] — the compute-on-the-fly design.  Keeps only the 5N
   per-electron accumulators U_k, ∇U_k, ∇²U_k; every ratio recomputes the
   old and new pair rows from the SoA distance table with unit-stride
   loops, and acceptance updates the accumulators incrementally.  The
   walker buffer shrinks to 5N scalars. *)

module Make (R : Precision.REAL) = struct
  module W = Wfc.Make (R)
  module Ps = W.Ps
  module A = Aligned.Make (R)
  module Dref = Dt_aa_ref.Make (R)
  module Dsoa = Dt_aa_soa.Make (R)

  type functors = Cubic_spline_1d.t array array
  (* indexed by [species_i][species_j]; must be symmetric *)

  let check_functors (ps : Ps.t) (f : functors) =
    let ns = Ps.n_species ps in
    if Array.length f <> ns then
      invalid_arg "Jastrow_two: functor matrix does not match species";
    Array.iter
      (fun row ->
        if Array.length row <> ns then
          invalid_arg "Jastrow_two: functor matrix not square")
      f

  (* u, u'/r and the laplacian stencil u'' + 2u'/r at distance [r];
     all zero at/beyond the cutoff (including r = 0 padding entries,
     which consumers mask out). *)
  let eval_u (fn : Cubic_spline_1d.t) r =
    if r <= 0. || r >= Cubic_spline_1d.cutoff fn then (0., 0., 0.)
    else begin
      let u, du, d2u = Cubic_spline_1d.evaluate_vgl fn r in
      (u, du /. r, d2u +. (2. *. du /. r))
    end

  (* ------------------------------------------------------------------ *)
  (* Optimized implementation                                            *)
  (* ------------------------------------------------------------------ *)

  let create_opt ~(table : Dsoa.t) ~(functors : functors) (ps : Ps.t) : W.t =
    check_functors ps functors;
    let n = Ps.n ps in
    (* Per-electron accumulators: U_k and the gradient/laplacian of log ψ. *)
    let uat = Array.make n 0. in
    let gx = Array.make n 0. and gy = Array.make n 0. in
    let gz = Array.make n 0. in
    let lap = Array.make n 0. in
    (* Scratch rows for the old and proposed configurations. *)
    let un = Array.make n 0. and fn = Array.make n 0. in
    let ln = Array.make n 0. in
    let uo = Array.make n 0. and fo = Array.make n 0. in
    let lo = Array.make n 0. in
    let spec = Array.init n (fun i -> Ps.species_index ps i) in
    (* Fill u/f/l rows for electron k against a distance row. *)
    let fill_row_from k (dist : A.t) ~u ~f ~l =
      let fk = functors.(spec.(k)) in
      for i = 0 to n - 1 do
        if i = k then begin
          u.(i) <- 0.;
          f.(i) <- 0.;
          l.(i) <- 0.
        end
        else begin
          let ui, fi, li = eval_u fk.(spec.(i)) (A.unsafe_get dist i) in
          u.(i) <- ui;
          f.(i) <- fi;
          l.(i) <- li
        end
      done
    in
    let sum arr =
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. arr.(i)
      done;
      !acc
    in
    (* Recompute one electron's accumulators from its (fresh) table row. *)
    let compute_one k =
      Dsoa.prepare table ps k;
      fill_row_from k (Dsoa.row_dist table k) ~u:un ~f:fn ~l:ln;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let al = ref 0. in
      let dx = Dsoa.row_dx table k and dy = Dsoa.row_dy table k in
      let dz = Dsoa.row_dz table k in
      for i = 0 to n - 1 do
        ax := !ax +. (fn.(i) *. A.unsafe_get dx i);
        ay := !ay +. (fn.(i) *. A.unsafe_get dy i);
        az := !az +. (fn.(i) *. A.unsafe_get dz i);
        al := !al +. ln.(i)
      done;
      uat.(k) <- sum un;
      gx.(k) <- !ax;
      gy.(k) <- !ay;
      gz.(k) <- !az;
      lap.(k) <- -. !al
    in
    let evaluate_log _ps =
      for k = 0 to n - 1 do
        compute_one k
      done;
      -0.5 *. sum uat
    in
    let compute_rows k =
      (* Old row from the table (refreshed by the engine's prepare), new
         row from the temporary move row. *)
      fill_row_from k (Dsoa.row_dist table k) ~u:uo ~f:fo ~l:lo;
      fill_row_from k (Dsoa.temp_dist table) ~u:un ~f:fn ~l:ln
    in
    let ratio _ps k =
      compute_rows k;
      exp (sum uo -. sum un)
    in
    let ratio_grad _ps k =
      compute_rows k;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let tx = Dsoa.temp_dx table and ty = Dsoa.temp_dy table in
      let tz = Dsoa.temp_dz table in
      for i = 0 to n - 1 do
        ax := !ax +. (fn.(i) *. A.unsafe_get tx i);
        ay := !ay +. (fn.(i) *. A.unsafe_get ty i);
        az := !az +. (fn.(i) *. A.unsafe_get tz i)
      done;
      (exp (sum uo -. sum un), Vec3.make !ax !ay !az)
    in
    let grad _ps k = Vec3.make gx.(k) gy.(k) gz.(k) in
    let accept _ps k =
      (* Incremental update of every electron's accumulators using the
         cached old/new rows; must run before the table accepts. *)
      let tx = Dsoa.temp_dx table and ty = Dsoa.temp_dy table in
      let tz = Dsoa.temp_dz table in
      let ox = Dsoa.row_dx table k and oy = Dsoa.row_dy table k in
      let oz = Dsoa.row_dz table k in
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let al = ref 0. in
      for i = 0 to n - 1 do
        if i <> k then begin
          uat.(i) <- uat.(i) +. un.(i) -. uo.(i);
          (* Pair (i,k) contribution to ∇_i log ψ is −f · dr(k,i). *)
          gx.(i) <-
            gx.(i) -. (fn.(i) *. A.unsafe_get tx i)
            +. (fo.(i) *. A.unsafe_get ox i);
          gy.(i) <-
            gy.(i) -. (fn.(i) *. A.unsafe_get ty i)
            +. (fo.(i) *. A.unsafe_get oy i);
          gz.(i) <-
            gz.(i) -. (fn.(i) *. A.unsafe_get tz i)
            +. (fo.(i) *. A.unsafe_get oz i);
          lap.(i) <- lap.(i) -. ln.(i) +. lo.(i);
          ax := !ax +. (fn.(i) *. A.unsafe_get tx i);
          ay := !ay +. (fn.(i) *. A.unsafe_get ty i);
          az := !az +. (fn.(i) *. A.unsafe_get tz i);
          al := !al +. ln.(i)
        end
      done;
      uat.(k) <- sum un;
      gx.(k) <- !ax;
      gy.(k) <- !ay;
      gz.(k) <- !az;
      lap.(k) <- -. !al
    in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        g.W.ggx.(k) <- g.W.ggx.(k) +. gx.(k);
        g.W.ggy.(k) <- g.W.ggy.(k) +. gy.(k);
        g.W.ggz.(k) <- g.W.ggz.(k) +. gz.(k);
        g.W.glap.(k) <- g.W.glap.(k) +. lap.(k)
      done
    in
    let register buf =
      for _ = 1 to 5 * n do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      Wbuffer.put_array buf uat;
      Wbuffer.put_array buf gx;
      Wbuffer.put_array buf gy;
      Wbuffer.put_array buf gz;
      Wbuffer.put_array buf lap
    in
    let copy_from_buffer _ps buf =
      let rd a =
        for i = 0 to n - 1 do
          a.(i) <- Wbuffer.get buf
        done
      in
      rd uat;
      rd gx;
      rd gy;
      rd gz;
      rd lap
    in
    let bytes () = 5 * n * 8 in
    {
      W.name = "J2-opt";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }

  (* ------------------------------------------------------------------ *)
  (* Reference implementation                                            *)
  (* ------------------------------------------------------------------ *)

  let create_ref ~(table : Dref.t) ~(functors : functors) (ps : Ps.t) : W.t =
    check_functors ps functors;
    let n = Ps.n ps in
    (* The 5N² stored scalars: values, AoS gradients, laplacian terms. *)
    let umat = A.create (n * n) in
    let dumat = A.create (3 * n * n) in
    let d2umat = A.create (n * n) in
    (* Scratch for the proposed row. *)
    let un = Array.make n 0. and fn = Array.make n 0. in
    let ln = Array.make n 0. in
    let spec = Array.init n (fun i -> Ps.species_index ps i) in
    let fill_new_row k =
      let fk = functors.(spec.(k)) in
      let td = Dref.temp_dist table in
      for i = 0 to n - 1 do
        if i = k then begin
          un.(i) <- 0.;
          fn.(i) <- 0.;
          ln.(i) <- 0.
        end
        else begin
          let ui, fi, li = eval_u fk.(spec.(i)) (A.get td i) in
          un.(i) <- ui;
          fn.(i) <- fi;
          ln.(i) <- li
        end
      done
    in
    let evaluate_log _ps =
      let logv = ref 0. in
      for k = 0 to n - 1 do
        let fk = functors.(spec.(k)) in
        for i = 0 to n - 1 do
          if i <> k then begin
            let d = Dref.dist table k i in
            let u, f, l = eval_u fk.(spec.(i)) d in
            let dr = Dref.displ table k i in
            (* displ k i = r_i − r_k = dr(k,i). *)
            let p = (k * n) + i in
            A.set umat p u;
            A.set dumat (3 * p) (f *. dr.Vec3.x);
            A.set dumat ((3 * p) + 1) (f *. dr.Vec3.y);
            A.set dumat ((3 * p) + 2) (f *. dr.Vec3.z);
            A.set d2umat p l;
            if i > k then logv := !logv -. u
          end
          else begin
            let p = (k * n) + i in
            A.set umat p 0.;
            A.set dumat (3 * p) 0.;
            A.set dumat ((3 * p) + 1) 0.;
            A.set dumat ((3 * p) + 2) 0.;
            A.set d2umat p 0.
          end
        done
      done;
      !logv
    in
    let delta k =
      (* Σ_i u(new) − u(stored): new from spline evals, old retrieved. *)
      let acc = ref 0. in
      for i = 0 to n - 1 do
        if i <> k then acc := !acc +. un.(i) -. A.get umat ((k * n) + i)
      done;
      !acc
    in
    let ratio _ps k =
      fill_new_row k;
      exp (-.delta k)
    in
    let ratio_grad _ps k =
      fill_new_row k;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to n - 1 do
        if i <> k then begin
          let dr = Dref.temp_displ table i in
          ax := !ax +. (fn.(i) *. dr.Vec3.x);
          ay := !ay +. (fn.(i) *. dr.Vec3.y);
          az := !az +. (fn.(i) *. dr.Vec3.z)
        end
      done;
      (exp (-.delta k), Vec3.make !ax !ay !az)
    in
    let grad _ps k =
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to n - 1 do
        let p = 3 * ((k * n) + i) in
        ax := !ax +. A.get dumat p;
        ay := !ay +. A.get dumat (p + 1);
        az := !az +. A.get dumat (p + 2)
      done;
      Vec3.make !ax !ay !az
    in
    let accept _ps k =
      (* Row and column updates of all three matrices (the Ref memory
         traffic the paper eliminates). *)
      for i = 0 to n - 1 do
        if i <> k then begin
          let dr = Dref.temp_displ table i in
          let prow = (k * n) + i and pcol = (i * n) + k in
          A.set umat prow un.(i);
          A.set umat pcol un.(i);
          A.set dumat (3 * prow) (fn.(i) *. dr.Vec3.x);
          A.set dumat ((3 * prow) + 1) (fn.(i) *. dr.Vec3.y);
          A.set dumat ((3 * prow) + 2) (fn.(i) *. dr.Vec3.z);
          (* dr(i,k) = −dr(k,i). *)
          A.set dumat (3 * pcol) (-.fn.(i) *. dr.Vec3.x);
          A.set dumat ((3 * pcol) + 1) (-.fn.(i) *. dr.Vec3.y);
          A.set dumat ((3 * pcol) + 2) (-.fn.(i) *. dr.Vec3.z);
          A.set d2umat prow ln.(i);
          A.set d2umat pcol ln.(i)
        end
      done
    in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        let ax = ref 0. and ay = ref 0. and az = ref 0. in
        let al = ref 0. in
        for i = 0 to n - 1 do
          let p = (k * n) + i in
          ax := !ax +. A.get dumat (3 * p);
          ay := !ay +. A.get dumat ((3 * p) + 1);
          az := !az +. A.get dumat ((3 * p) + 2);
          al := !al +. A.get d2umat p
        done;
        g.W.ggx.(k) <- g.W.ggx.(k) +. !ax;
        g.W.ggy.(k) <- g.W.ggy.(k) +. !ay;
        g.W.ggz.(k) <- g.W.ggz.(k) +. !az;
        g.W.glap.(k) <- g.W.glap.(k) -. !al
      done
    in
    let register buf =
      for _ = 1 to 5 * n * n do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      for p = 0 to (n * n) - 1 do
        Wbuffer.put buf (A.get umat p)
      done;
      for p = 0 to (3 * n * n) - 1 do
        Wbuffer.put buf (A.get dumat p)
      done;
      for p = 0 to (n * n) - 1 do
        Wbuffer.put buf (A.get d2umat p)
      done
    in
    let copy_from_buffer _ps buf =
      for p = 0 to (n * n) - 1 do
        A.set umat p (Wbuffer.get buf)
      done;
      for p = 0 to (3 * n * n) - 1 do
        A.set dumat p (Wbuffer.get buf)
      done;
      for p = 0 to (n * n) - 1 do
        A.set d2umat p (Wbuffer.get buf)
      done
    in
    let bytes () = A.bytes umat + A.bytes dumat + A.bytes d2umat in
    {
      W.name = "J2-ref";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }
end
