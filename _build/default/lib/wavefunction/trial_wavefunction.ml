open Oqmc_containers

(* TrialWaveFunction: the product Ψ_T = Π_c ψ_c (Slater–Jastrow in this
   work).  Log-domain composition: log Ψ = Σ log ψ_c, ratios multiply,
   gradients of the log add.  Components whose names start with "J1"/"J2"
   are timed under those kernel keys, reproducing the paper's profile
   categories (determinant internals time themselves). *)

module Make (R : Precision.REAL) = struct
  module W = Wfc.Make (R)
  module Ps = W.Ps

  type t = {
    components : W.t array;
    timers : Timers.t;
    mutable log_psi : float;
  }

  let timer_key (c : W.t) =
    let name = c.W.name in
    if String.length name >= 2 && String.sub name 0 2 = "J1" then Some "J1"
    else if String.length name >= 2 && String.sub name 0 2 = "J2" then Some "J2"
    else None (* determinants time their own kernels *)

  let timed t c f =
    match timer_key c with
    | Some key -> Timers.time t.timers key f
    | None -> f ()

  let create ?(timers = Timers.null) components =
    if components = [] then
      invalid_arg "Trial_wavefunction.create: no components";
    { components = Array.of_list components; timers; log_psi = 0. }

  let components t = t.components
  let log_psi t = t.log_psi

  let set_log_psi t v = t.log_psi <- v
  (* Used when restoring a walker whose log Ψ was serialized. *)

  (* Recompute everything from scratch (distance tables must be fresh). *)
  let evaluate_log t ps =
    let acc = ref 0. in
    Array.iter
      (fun c -> acc := !acc +. timed t c (fun () -> c.W.evaluate_log ps))
      t.components;
    t.log_psi <- !acc;
    !acc

  let ratio t ps k =
    let r = ref 1. in
    Array.iter (fun c -> r := !r *. timed t c (fun () -> c.W.ratio ps k)) t.components;
    !r

  let ratio_grad t ps k =
    let r = ref 1. in
    let gx = ref 0. and gy = ref 0. and gz = ref 0. in
    Array.iter
      (fun c ->
        let rc, gc = timed t c (fun () -> c.W.ratio_grad ps k) in
        r := !r *. rc;
        gx := !gx +. gc.Vec3.x;
        gy := !gy +. gc.Vec3.y;
        gz := !gz +. gc.Vec3.z)
      t.components;
    (!r, Vec3.make !gx !gy !gz)

  let grad t ps k =
    let gx = ref 0. and gy = ref 0. and gz = ref 0. in
    Array.iter
      (fun c ->
        let gc = timed t c (fun () -> c.W.grad ps k) in
        gx := !gx +. gc.Vec3.x;
        gy := !gy +. gc.Vec3.y;
        gz := !gz +. gc.Vec3.z)
      t.components;
    Vec3.make !gx !gy !gz

  (* Commit an accepted move.  Components must accept before the shared
     distance tables and the particle set do; the caller passes the
     already-computed ratio so log Ψ stays current. *)
  let accept t ps k ~ratio =
    Array.iter (fun c -> timed t c (fun () -> c.W.accept ps k)) t.components;
    t.log_psi <- t.log_psi +. log (abs_float ratio)

  let reject t ps k =
    Array.iter (fun c -> timed t c (fun () -> c.W.reject ps k)) t.components

  (* Per-electron ∇ log Ψ and ∇² log Ψ; the kinetic local energy is
     −½ Σ_k (∇²logΨ + |∇logΨ|²). *)
  let evaluate_gl t ps (gl : W.gl) =
    W.clear_gl gl;
    Array.iter
      (fun c -> timed t c (fun () -> c.W.accumulate_gl ps gl))
      t.components

  let kinetic_energy (gl : W.gl) =
    let n = Array.length gl.W.glap in
    let acc = ref 0. in
    for k = 0 to n - 1 do
      let g2 =
        (gl.W.ggx.(k) *. gl.W.ggx.(k))
        +. (gl.W.ggy.(k) *. gl.W.ggy.(k))
        +. (gl.W.ggz.(k) *. gl.W.ggz.(k))
      in
      acc := !acc +. gl.W.glap.(k) +. g2
    done;
    -0.5 *. !acc

  let register t buf = Array.iter (fun c -> c.W.register buf) t.components

  let update_buffer t ps buf =
    Array.iter (fun c -> c.W.update_buffer ps buf) t.components

  let copy_from_buffer t ps buf =
    Array.iter (fun c -> c.W.copy_from_buffer ps buf) t.components

  let bytes t =
    Array.fold_left (fun acc c -> acc + c.W.bytes ()) 0 t.components
end
