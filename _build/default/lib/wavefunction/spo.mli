open Oqmc_containers

(** Single-particle-orbital engine interface (QMCPACK's SPOSet): evaluates
    all orbitals — values (Bspline-v) or values + Cartesian gradients +
    laplacians (SPO-vgl) — at one electron position, into caller-owned
    double-precision buffers.  Engines are records of closures, dispatched
    at run time as QMCPACK dispatches SPOSet virtually. *)

type vgl = {
  v : float array;
  gx : float array;
  gy : float array;
  gz : float array;
  lap : float array;
}

type t = {
  n_orb : int;
  label : string;
  eval_v : Vec3.t -> float array -> unit;
  eval_vgl : Vec3.t -> vgl -> unit;
  bytes : int;  (** backing-table storage, shared across walkers/threads *)
}

val make_vgl : int -> vgl
val grad_of : vgl -> int -> Vec3.t
