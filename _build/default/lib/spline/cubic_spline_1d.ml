(* One-dimensional cubic B-spline on a uniform grid over [0, cutoff].

   This is the radial-functor engine behind the Jastrow factors (Fig. 3 of
   the paper): short coefficient tables, evaluated with value / first /
   second derivatives, identically zero at and beyond the cutoff.  The
   coefficient table is tiny (tens of doubles) so it is kept in double
   precision in every build variant; the mixed-precision savings of the
   paper live in the O(N²) structures, not here. *)

type t = {
  coeffs : float array; (* n_intervals + 3 control points *)
  cutoff : float;
  delta : float;
  delta_inv : float;
  n_intervals : int;
}

let of_coefficients ~cutoff coeffs =
  let m = Array.length coeffs in
  if m < 4 then invalid_arg "Cubic_spline_1d: need at least 4 coefficients";
  if cutoff <= 0. then invalid_arg "Cubic_spline_1d: cutoff <= 0";
  let n_intervals = m - 3 in
  let delta = cutoff /. float_of_int n_intervals in
  { coeffs = Array.copy coeffs; cutoff; delta; delta_inv = 1. /. delta;
    n_intervals }

let cutoff t = t.cutoff
let coefficients t = Array.copy t.coeffs
let n_intervals t = t.n_intervals

let locate t r =
  let s = r *. t.delta_inv in
  let i = int_of_float s in
  let i = if i >= t.n_intervals then t.n_intervals - 1 else i in
  let i = if i < 0 then 0 else i in
  (i, s -. float_of_int i)

let evaluate t r =
  if r >= t.cutoff || r < 0. then 0.
  else begin
    let i, u = locate t r in
    let w = Bspline_basis.value u in
    (t.coeffs.(i) *. w.Bspline_basis.w0)
    +. (t.coeffs.(i + 1) *. w.Bspline_basis.w1)
    +. (t.coeffs.(i + 2) *. w.Bspline_basis.w2)
    +. (t.coeffs.(i + 3) *. w.Bspline_basis.w3)
  end

let evaluate_vgl t r =
  if r >= t.cutoff || r < 0. then (0., 0., 0.)
  else begin
    let i, u = locate t r in
    let c0 = t.coeffs.(i) and c1 = t.coeffs.(i + 1) in
    let c2 = t.coeffs.(i + 2) and c3 = t.coeffs.(i + 3) in
    let w = Bspline_basis.value u in
    let d = Bspline_basis.first u in
    let s = Bspline_basis.second u in
    let v =
      (c0 *. w.Bspline_basis.w0) +. (c1 *. w.Bspline_basis.w1)
      +. (c2 *. w.Bspline_basis.w2) +. (c3 *. w.Bspline_basis.w3)
    in
    let dv =
      ((c0 *. d.Bspline_basis.w0) +. (c1 *. d.Bspline_basis.w1)
      +. (c2 *. d.Bspline_basis.w2) +. (c3 *. d.Bspline_basis.w3))
      *. t.delta_inv
    in
    let d2v =
      ((c0 *. s.Bspline_basis.w0) +. (c1 *. s.Bspline_basis.w1)
      +. (c2 *. s.Bspline_basis.w2) +. (c3 *. s.Bspline_basis.w3))
      *. t.delta_inv *. t.delta_inv
    in
    (v, dv, d2v)
  end

(* Banded Gaussian elimination with partial pivoting for the interpolation
   system; the matrix is (n+3)×(n+3) with bandwidth <= 2, and n is small,
   so a dense solve is perfectly adequate. *)
let solve_dense a b =
  let n = Array.length b in
  let a = Array.init n (fun i -> Array.copy a.(i)) in
  let b = Array.copy b in
  for k = 0 to n - 1 do
    let pmax = ref (abs_float a.(k).(k)) and prow = ref k in
    for i = k + 1 to n - 1 do
      if abs_float a.(i).(k) > !pmax then begin
        pmax := abs_float a.(i).(k);
        prow := i
      end
    done;
    if !pmax = 0. then failwith "Cubic_spline_1d: singular fit system";
    if !prow <> k then begin
      let tmp = a.(k) in a.(k) <- a.(!prow); a.(!prow) <- tmp;
      let tb = b.(k) in b.(k) <- b.(!prow); b.(!prow) <- tb
    end;
    for i = k + 1 to n - 1 do
      let f = a.(i).(k) /. a.(k).(k) in
      if f <> 0. then begin
        for j = k to n - 1 do
          a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
        done;
        b.(i) <- b.(i) -. (f *. b.(k))
      end
    done
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. a.(i).(i)
  done;
  x

let fit ~f ?(deriv0 = None) ?(deriv_cut = Some 0.) ~cutoff ~intervals () =
  if intervals < 1 then invalid_arg "Cubic_spline_1d.fit: intervals < 1";
  if cutoff <= 0. then invalid_arg "Cubic_spline_1d.fit: cutoff <= 0";
  let n = intervals in
  let m = n + 3 in
  let delta = cutoff /. float_of_int n in
  let a = Array.make_matrix m m 0. in
  let b = Array.make m 0. in
  (* Interpolation rows: u(r_i) = (c_i + 4 c_{i+1} + c_{i+2}) / 6. *)
  for i = 0 to n do
    a.(i).(i) <- 1. /. 6.;
    a.(i).(i + 1) <- 4. /. 6.;
    a.(i).(i + 2) <- 1. /. 6.;
    b.(i) <- f (float_of_int i *. delta)
  done;
  (* Boundary row at 0: either a prescribed derivative (cusp condition) or
     a natural (zero second derivative) end. *)
  (match deriv0 with
  | Some d ->
      a.(n + 1).(0) <- -1. /. (2. *. delta);
      a.(n + 1).(2) <- 1. /. (2. *. delta);
      b.(n + 1) <- d
  | None ->
      a.(n + 1).(0) <- 1.;
      a.(n + 1).(1) <- -2.;
      a.(n + 1).(2) <- 1.;
      b.(n + 1) <- 0.);
  (* Boundary row at the cutoff. *)
  (match deriv_cut with
  | Some d ->
      a.(n + 2).(n) <- -1. /. (2. *. delta);
      a.(n + 2).(n + 2) <- 1. /. (2. *. delta);
      b.(n + 2) <- d
  | None ->
      a.(n + 2).(n) <- 1.;
      a.(n + 2).(n + 1) <- -2.;
      a.(n + 2).(n + 2) <- 1.;
      b.(n + 2) <- 0.);
  of_coefficients ~cutoff (solve_dense a b)

let bytes t = 8 * Array.length t.coeffs
