open Oqmc_containers

(** Tiled (array-of-SoA) orbital table — the paper's future-work tiling
    proposal.  Orbitals are split into fixed-size tiles, each with its own
    contiguous multi-spline block, bounding the per-stencil stride and
    exposing a thread-parallel outer loop.  Results are identical to
    {!Bspline3d}. *)

module Make (R : Precision.REAL) : sig
  module B : module type of Bspline3d.Make (R)

  type t

  val create : nx:int -> ny:int -> nz:int -> n_orb:int -> tile:int -> t
  (** @raise Invalid_argument for non-positive sizes. *)

  val n_orb : t -> int
  val n_tiles : t -> int
  val tile_size : t -> int
  val bytes : t -> int

  val set_base : t -> orb:int -> i:int -> j:int -> k:int -> float -> unit
  val get_base : t -> orb:int -> i:int -> j:int -> k:int -> float
  val fill : t -> (orb:int -> i:int -> j:int -> k:int -> float) -> unit

  val fit_periodic :
    t -> samples:(orb:int -> ix:int -> iy:int -> iz:int -> float) -> unit

  val eval_v : t -> u0:float -> u1:float -> u2:float -> float array -> unit
  val eval_vgh : t -> u0:float -> u1:float -> u2:float -> B.vgh_buf -> unit
  val make_vgh_buf : t -> B.vgh_buf
end
