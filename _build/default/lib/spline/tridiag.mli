(** Constant-stencil tridiagonal solvers used for B-spline prefiltering. *)

val solve : diag:float -> off:float -> float array -> float array
(** Solve [T x = rhs] where [T] has [diag] on the diagonal and [off] on
    both off-diagonals. *)

val solve_cyclic : diag:float -> off:float -> float array -> float array
(** Same system with periodic wrap-around corners (cyclic Thomas via a
    Sherman–Morrison correction).
    @raise Invalid_argument for fewer than 3 unknowns. *)
