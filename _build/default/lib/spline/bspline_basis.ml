(* Uniform cubic B-spline basis weights.

   For a point with fractional offset t ∈ [0,1) inside knot interval i, the
   value is Σ_{j=0..3} c_{i+j} · w_j(t).  These weights and their t-derivatives
   are shared by the 1-D Jastrow functors and the 3-D orbital tables (where
   they appear as tensor products). *)

type weights = { w0 : float; w1 : float; w2 : float; w3 : float }

let value t =
  let t2 = t *. t in
  let t3 = t2 *. t in
  let mt = 1. -. t in
  {
    w0 = mt *. mt *. mt /. 6.;
    w1 = ((3. *. t3) -. (6. *. t2) +. 4.) /. 6.;
    w2 = ((-3. *. t3) +. (3. *. t2) +. (3. *. t) +. 1.) /. 6.;
    w3 = t3 /. 6.;
  }

let first t =
  let t2 = t *. t in
  let mt = 1. -. t in
  {
    w0 = -.(mt *. mt) /. 2.;
    w1 = ((9. *. t2) -. (12. *. t)) /. 6.;
    w2 = ((-9. *. t2) +. (6. *. t) +. 3.) /. 6.;
    w3 = t2 /. 2.;
  }

let second t =
  { w0 = 1. -. t; w1 = (3. *. t) -. 2.; w2 = 1. -. (3. *. t); w3 = t }

let to_array { w0; w1; w2; w3 } = [| w0; w1; w2; w3 |]

(* Partition of unity / derivative telescoping, used by tests. *)
let sum { w0; w1; w2; w3 } = w0 +. w1 +. w2 +. w3
