open Oqmc_containers

(** Periodic tricubic B-spline tables holding all single-particle orbitals
    on one shared grid with the orbital index innermost (einspline's
    multi-spline layout) — the paper's Bspline-v / Bspline-vgh kernels.
    Coefficients live at the build's storage precision; accumulation is in
    double.  Positions are fractional supercell coordinates [s ∈ [0,1)³]
    and derivatives are with respect to [s]; the SPO layer applies the
    lattice metric. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)

  type t

  type vgh_buf = {
    v : float array;
    gx : float array;
    gy : float array;
    gz : float array;
    hxx : float array;
    hxy : float array;
    hxz : float array;
    hyy : float array;
    hyz : float array;
    hzz : float array;
  }

  val create : nx:int -> ny:int -> nz:int -> n_orb:int -> t
  (** Zero table on an [nx × ny × nz] periodic grid.
      @raise Invalid_argument if any dimension is below 4 or [n_orb < 1]. *)

  val n_orb : t -> int
  val dims : t -> int * int * int

  val bytes : t -> int
  (** Allocated coefficient storage. *)

  val make_vgh_buf : t -> vgh_buf
  (** Double-precision result buffers sized for this table. *)

  val set_base : t -> orb:int -> i:int -> j:int -> k:int -> float -> unit
  (** Write one base coefficient, maintaining the periodic wrap layers.
      @raise Invalid_argument outside the base grid. *)

  val get_base : t -> orb:int -> i:int -> j:int -> k:int -> float

  val fill : t -> (orb:int -> i:int -> j:int -> k:int -> float) -> unit
  (** Set every base coefficient directly (synthetic tables). *)

  val fit_periodic :
    t -> samples:(orb:int -> ix:int -> iy:int -> iz:int -> float) -> unit
  (** Prefilter so the spline interpolates the given grid samples
      (separable cyclic-tridiagonal solves per dimension). *)

  val eval_v : t -> u0:float -> u1:float -> u2:float -> float array -> unit
  (** Bspline-v: values of all orbitals into a caller array of length
      [>= n_orb]. *)

  val eval_vgh : t -> u0:float -> u1:float -> u2:float -> vgh_buf -> unit
  (** Bspline-vgh: values, fractional-coordinate gradients and Hessian
      components of all orbitals. *)

  val table_bytes :
    nx:int -> ny:int -> nz:int -> n_orb:int -> elt_bytes:int -> int
  (** Analytic table size used by the memory-footprint accounting for
      workloads too large to allocate. *)
end
