(** Uniform cubic B-spline basis weights w₀..w₃ and their derivatives with
    respect to the fractional knot offset t ∈ [0,1). *)

type weights = { w0 : float; w1 : float; w2 : float; w3 : float }

val value : float -> weights
(** Basis values; they satisfy Σ wⱼ = 1 for any t. *)

val first : float -> weights
(** dw/dt; Σ = 0.  Divide by the knot spacing for d/dr. *)

val second : float -> weights
(** d²w/dt²; Σ = 0.  Divide by the squared knot spacing for d²/dr². *)

val to_array : weights -> float array
val sum : weights -> float
