(* Tridiagonal and cyclic-tridiagonal solvers for B-spline prefiltering.

   Interpolating a cubic B-spline through samples on a uniform grid reduces
   to the constant-stencil system [off, diag, off] per grid line; periodic
   grids add wrap-around corners, removed with one Sherman–Morrison rank-1
   correction (the standard cyclic-Thomas algorithm). *)

let solve ~diag ~off rhs =
  let n = Array.length rhs in
  if n = 0 then [||]
  else begin
    let c' = Array.make n 0. and d' = Array.make n 0. in
    c'.(0) <- off /. diag;
    d'.(0) <- rhs.(0) /. diag;
    for i = 1 to n - 1 do
      let m = diag -. (off *. c'.(i - 1)) in
      c'.(i) <- off /. m;
      d'.(i) <- (rhs.(i) -. (off *. d'.(i - 1))) /. m
    done;
    let x = Array.make n 0. in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  end

let solve_cyclic ~diag ~off rhs =
  let n = Array.length rhs in
  if n < 3 then invalid_arg "Tridiag.solve_cyclic: n < 3";
  (* Condense the corners into a rank-1 update: A = T + gamma u vᵀ with
     u = e0 + e_{n-1} and corner coefficient handling per cyclic Thomas. *)
  let gamma = -.diag in
  let diag0 = diag -. gamma in
  let diagn = diag -. (off *. off /. gamma) in
  let solve_mod b =
    (* Thomas on the modified tridiagonal (first/last diagonal entries
       adjusted). *)
    let c' = Array.make n 0. and d' = Array.make n 0. in
    let dii i = if i = 0 then diag0 else if i = n - 1 then diagn else diag in
    c'.(0) <- off /. dii 0;
    d'.(0) <- b.(0) /. dii 0;
    for i = 1 to n - 1 do
      let m = dii i -. (off *. c'.(i - 1)) in
      c'.(i) <- off /. m;
      d'.(i) <- (b.(i) -. (off *. d'.(i - 1))) /. m
    done;
    let x = Array.make n 0. in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  in
  let y = solve_mod rhs in
  let u = Array.make n 0. in
  u.(0) <- gamma;
  u.(n - 1) <- off;
  let z = solve_mod u in
  let vy = y.(0) +. (off /. gamma *. y.(n - 1)) in
  let vz = z.(0) +. (off /. gamma *. z.(n - 1)) in
  let factor = vy /. (1. +. vz) in
  Array.init n (fun i -> y.(i) -. (factor *. z.(i)))
