(** One-dimensional cubic B-spline on a uniform grid over [\[0, cutoff\]] —
    the radial engine of the Jastrow functors.  Evaluations return 0 at and
    beyond the cutoff (the finite-range branch whose cost the paper notes in
    the Jastrow vectorization efficiency). *)

type t

val of_coefficients : cutoff:float -> float array -> t
(** Spline from [n + 3] control points over [n] intervals.
    @raise Invalid_argument for fewer than 4 coefficients or a
    non-positive cutoff. *)

val fit :
  f:(float -> float) ->
  ?deriv0:float option ->
  ?deriv_cut:float option ->
  cutoff:float ->
  intervals:int ->
  unit ->
  t
(** Interpolating spline through [f] at the grid points.  [deriv0] /
    [deriv_cut] prescribe end derivatives (e.g. the electron-electron cusp
    at 0); [None] selects a natural (zero-curvature) end.  Defaults:
    natural at 0, zero slope at the cutoff. *)

val cutoff : t -> float
val coefficients : t -> float array
val n_intervals : t -> int

val evaluate : t -> float -> float
(** u(r); 0 outside [\[0, cutoff)]. *)

val evaluate_vgl : t -> float -> float * float * float
(** (u, du/dr, d²u/dr²); zeros outside [\[0, cutoff)]. *)

val bytes : t -> int
