open Oqmc_containers

(* Tiled (AoSoA) orbital table — the paper's future-work proposal
   (Sec. 8.4, after Mathuriya et al. IPDPS'17): split the orbitals into
   tiles of [tile] orbitals, each tile holding its own contiguous
   grid-major coefficient block.  The outer structure is an array over
   tiles (AoS), the inner layout is the SoA multi-spline of {!Bspline3d}
   — an array-of-SoA.

   Why it matters: one monolithic table walks a stride of
   n_orb × elt_bytes between stencil points, so very large orbital counts
   blow past the caches; tiles bound that stride and expose an outer loop
   that parallelizes over threads.  Evaluation results are identical to
   the untiled table by construction. *)

module Make (R : Precision.REAL) = struct
  module B = Bspline3d.Make (R)

  type t = {
    tiles : B.t array;
    tile : int; (* orbitals per tile (last tile may be smaller) *)
    n_orb : int;
    scratch_v : float array array; (* per-tile value buffers *)
    scratch_vgh : B.vgh_buf array;
  }

  let create ~nx ~ny ~nz ~n_orb ~tile =
    if tile < 1 then invalid_arg "Bspline3d_tiled.create: tile < 1";
    if n_orb < 1 then invalid_arg "Bspline3d_tiled.create: n_orb < 1";
    let n_tiles = (n_orb + tile - 1) / tile in
    let tiles =
      Array.init n_tiles (fun t ->
          let this = min tile (n_orb - (t * tile)) in
          B.create ~nx ~ny ~nz ~n_orb:this)
    in
    {
      tiles;
      tile;
      n_orb;
      scratch_v = Array.map (fun b -> Array.make (B.n_orb b) 0.) tiles;
      scratch_vgh = Array.map B.make_vgh_buf tiles;
    }

  let n_orb t = t.n_orb
  let n_tiles t = Array.length t.tiles
  let tile_size t = t.tile

  let bytes t = Array.fold_left (fun acc b -> acc + B.bytes b) 0 t.tiles

  let locate t orb =
    if orb < 0 || orb >= t.n_orb then
      invalid_arg "Bspline3d_tiled: orbital out of range";
    (orb / t.tile, orb mod t.tile)

  let set_base t ~orb ~i ~j ~k v =
    let ti, o = locate t orb in
    B.set_base t.tiles.(ti) ~orb:o ~i ~j ~k v

  let get_base t ~orb ~i ~j ~k =
    let ti, o = locate t orb in
    B.get_base t.tiles.(ti) ~orb:o ~i ~j ~k

  let fill t f =
    Array.iteri
      (fun ti b ->
        B.fill b (fun ~orb ~i ~j ~k -> f ~orb:((ti * t.tile) + orb) ~i ~j ~k))
      t.tiles

  let fit_periodic t ~samples =
    Array.iteri
      (fun ti b ->
        B.fit_periodic b ~samples:(fun ~orb ~ix ~iy ~iz ->
            samples ~orb:((ti * t.tile) + orb) ~ix ~iy ~iz))
      t.tiles

  (* Values of all orbitals; the outer tile loop is the unit that a
     task-parallel evaluation distributes over threads. *)
  let eval_v t ~u0 ~u1 ~u2 (out : float array) =
    Array.iteri
      (fun ti b ->
        let s = t.scratch_v.(ti) in
        B.eval_v b ~u0 ~u1 ~u2 s;
        Array.blit s 0 out (ti * t.tile) (B.n_orb b))
      t.tiles

  let eval_vgh t ~u0 ~u1 ~u2 (buf : B.vgh_buf) =
    Array.iteri
      (fun ti b ->
        let s = t.scratch_vgh.(ti) in
        B.eval_vgh b ~u0 ~u1 ~u2 s;
        let n = B.n_orb b and off = ti * t.tile in
        Array.blit s.B.v 0 buf.B.v off n;
        Array.blit s.B.gx 0 buf.B.gx off n;
        Array.blit s.B.gy 0 buf.B.gy off n;
        Array.blit s.B.gz 0 buf.B.gz off n;
        Array.blit s.B.hxx 0 buf.B.hxx off n;
        Array.blit s.B.hxy 0 buf.B.hxy off n;
        Array.blit s.B.hxz 0 buf.B.hxz off n;
        Array.blit s.B.hyy 0 buf.B.hyy off n;
        Array.blit s.B.hyz 0 buf.B.hyz off n;
        Array.blit s.B.hzz 0 buf.B.hzz off n)
      t.tiles

  let make_vgh_buf t =
    {
      B.v = Array.make t.n_orb 0.;
      gx = Array.make t.n_orb 0.;
      gy = Array.make t.n_orb 0.;
      gz = Array.make t.n_orb 0.;
      hxx = Array.make t.n_orb 0.;
      hxy = Array.make t.n_orb 0.;
      hxz = Array.make t.n_orb 0.;
      hyy = Array.make t.n_orb 0.;
      hyz = Array.make t.n_orb 0.;
      hzz = Array.make t.n_orb 0.;
    }
end
