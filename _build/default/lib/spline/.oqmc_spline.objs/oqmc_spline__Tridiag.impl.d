lib/spline/tridiag.ml: Array
