lib/spline/bspline3d_tiled.mli: Bspline3d Oqmc_containers Precision
