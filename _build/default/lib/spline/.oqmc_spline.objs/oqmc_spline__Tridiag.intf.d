lib/spline/tridiag.mli:
