lib/spline/bspline_basis.ml:
