lib/spline/bspline3d_tiled.ml: Array Bspline3d Oqmc_containers Precision
