lib/spline/bspline3d.ml: Aligned Array Bspline_basis Float List Oqmc_containers Precision Tridiag
