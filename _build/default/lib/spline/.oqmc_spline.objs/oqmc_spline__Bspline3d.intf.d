lib/spline/bspline3d.mli: Aligned Oqmc_containers Precision
