lib/spline/cubic_spline_1d.mli:
