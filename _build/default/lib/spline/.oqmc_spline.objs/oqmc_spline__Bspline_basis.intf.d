lib/spline/bspline_basis.mli:
