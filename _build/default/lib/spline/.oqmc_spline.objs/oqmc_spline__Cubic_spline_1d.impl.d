lib/spline/cubic_spline_1d.ml: Array Bspline_basis
