lib/hamiltonian/coulomb.mli: Hamiltonian
