lib/hamiltonian/hamiltonian.ml: Array
