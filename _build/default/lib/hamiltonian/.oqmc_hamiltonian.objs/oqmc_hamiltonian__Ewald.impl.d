lib/hamiltonian/ewald.ml: Array Float Hamiltonian Lattice Oqmc_containers Oqmc_particle Vec3
