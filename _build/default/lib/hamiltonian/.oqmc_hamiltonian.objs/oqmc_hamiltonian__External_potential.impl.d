lib/hamiltonian/external_potential.ml: Hamiltonian Oqmc_containers Vec3
