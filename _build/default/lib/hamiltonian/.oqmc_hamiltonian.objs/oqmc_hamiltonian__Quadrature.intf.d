lib/hamiltonian/quadrature.mli: Oqmc_containers Vec3
