lib/hamiltonian/nlpp.ml: Array Hamiltonian List Oqmc_containers Quadrature Vec3
