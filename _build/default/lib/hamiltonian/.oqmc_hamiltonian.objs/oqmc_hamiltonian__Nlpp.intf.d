lib/hamiltonian/nlpp.mli: Hamiltonian Oqmc_containers Quadrature Vec3
