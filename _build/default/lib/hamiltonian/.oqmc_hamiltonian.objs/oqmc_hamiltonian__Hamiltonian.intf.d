lib/hamiltonian/hamiltonian.mli:
