lib/hamiltonian/ewald.mli: Hamiltonian Lattice Oqmc_containers Oqmc_particle Vec3
