lib/hamiltonian/quadrature.ml: Array Oqmc_containers Vec3
