lib/hamiltonian/external_potential.mli: Hamiltonian Oqmc_containers Vec3
