lib/hamiltonian/coulomb.ml: Hamiltonian
