open Oqmc_containers

(* External one-body potentials, used by the analytic validation systems. *)

(* Isotropic harmonic trap ½ ω² Σ_k |r_k|². *)
let harmonic ~omega ~n ~(position : int -> Vec3.t) : Hamiltonian.term =
  {
    Hamiltonian.name = "Harmonic";
    evaluate =
      (fun () ->
        let acc = ref 0. in
        for k = 0 to n - 1 do
          acc := !acc +. Vec3.norm2 (position k)
        done;
        0.5 *. omega *. omega *. !acc);
  }

(* Arbitrary local one-body potential. *)
let local_v ~name ~n ~(position : int -> Vec3.t) ~(v : Vec3.t -> float) :
    Hamiltonian.term =
  {
    Hamiltonian.name = name;
    evaluate =
      (fun () ->
        let acc = ref 0. in
        for k = 0 to n - 1 do
          acc := !acc +. v (position k)
        done;
        !acc);
  }
