open Oqmc_containers

(* Non-local pseudopotential via spherical quadrature (Eq. 7 of the paper,
   last term).  For every electron k within the cutoff of an ion I, the
   angular projector is approximated on a quadrature shell of radius
   r = |r_k − r_I|:

     V_NL Ψ/Ψ ≈ Σ_{k,I} v_l(r) (2l+1) Σ_q w_q P_l(r̂_kI·r̂_q) Ψ(r→r_q)/Ψ(R)

   The Ψ ratios are the same PbyP machinery as the drift-and-diffusion
   stage, exercised at N_q extra positions per (k, I) pair — this is what
   makes pseudopotential workloads (all of Table 1 except Be) stress the
   ratio kernels.  The engine supplies a [ratio] closure that stages the
   temporary move through the shared tables and trial wavefunction and
   rejects it afterwards. *)

type channel = { l : int; v : float -> float; cutoff : float }

type ion_species = { channels : channel list }

let create ~(quadrature : Quadrature.t) ~(species : ion_species array)
    ~n_electrons ~(ion_species_of : int -> int) ~n_ions
    ~(ion_position : int -> Vec3.t) ~(elec_position : int -> Vec3.t)
    ~(dist : int -> int -> float) ~(ratio : int -> Vec3.t -> float) :
    Hamiltonian.term =
  let nq = Quadrature.n_points quadrature in
  let evaluate () =
    let acc = ref 0. in
    for k = 0 to n_electrons - 1 do
      for i = 0 to n_ions - 1 do
        let sp = species.(ion_species_of i) in
        List.iter
          (fun { l; v; cutoff } ->
            let d = dist k i in
            if d > 1e-12 && d < cutoff then begin
              let vr = v d in
              if vr <> 0. then begin
                let ri = ion_position i in
                let rk = elec_position k in
                (* Unit vector from ion to electron. *)
                let u = Vec3.scale (1. /. d) (Vec3.sub rk ri) in
                let proj = ref 0. in
                for q = 0 to nq - 1 do
                  let dir = quadrature.Quadrature.points.(q) in
                  let newpos = Vec3.add ri (Vec3.scale d dir) in
                  let cost = Vec3.dot u dir in
                  let pl = Quadrature.legendre l cost in
                  proj :=
                    !proj
                    +. (quadrature.Quadrature.weights.(q) *. pl
                       *. ratio k newpos)
                done;
                acc :=
                  !acc +. (vr *. float_of_int ((2 * l) + 1) *. !proj)
              end
            end)
          sp.channels
      done
    done;
    !acc
  in
  { Hamiltonian.name = "NonLocalPP"; evaluate }
