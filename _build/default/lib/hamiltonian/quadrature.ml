open Oqmc_containers

(* Spherical quadrature rules for the non-local pseudopotential angular
   integral (Fahy, Wang & Louie 1990).  Each rule integrates spherical
   harmonics exactly up to some l with uniform or near-uniform weights. *)

type t = { points : Vec3.t array; weights : float array }

let n_points t = Array.length t.points

(* Octahedron vertices: exact through l = 2. *)
let octahedron =
  let p = [|
    Vec3.make 1. 0. 0.; Vec3.make (-1.) 0. 0.;
    Vec3.make 0. 1. 0.; Vec3.make 0. (-1.) 0.;
    Vec3.make 0. 0. 1.; Vec3.make 0. 0. (-1.);
  |] in
  { points = p; weights = Array.make 6 (1. /. 6.) }

(* Icosahedron vertices: 12 points, exact through l = 5 — the common
   QMCPACK default for transition-metal pseudopotentials. *)
let icosahedron =
  let phi = (1. +. sqrt 5.) /. 2. in
  let raw =
    [|
      Vec3.make 0. 1. phi; Vec3.make 0. (-1.) phi;
      Vec3.make 0. 1. (-.phi); Vec3.make 0. (-1.) (-.phi);
      Vec3.make 1. phi 0.; Vec3.make (-1.) phi 0.;
      Vec3.make 1. (-.phi) 0.; Vec3.make (-1.) (-.phi) 0.;
      Vec3.make phi 0. 1.; Vec3.make (-.phi) 0. 1.;
      Vec3.make phi 0. (-1.); Vec3.make (-.phi) 0. (-1.);
    |]
  in
  {
    points = Array.map Vec3.normalize raw;
    weights = Array.make 12 (1. /. 12.);
  }

(* Legendre polynomials for the angular projector. *)
let legendre l x =
  match l with
  | 0 -> 1.
  | 1 -> x
  | 2 -> ((3. *. x *. x) -. 1.) /. 2.
  | 3 -> (((5. *. x *. x) -. 3.) *. x) /. 2.
  | _ ->
      (* Upward recurrence for higher orders. *)
      let rec go k pkm1 pk =
        if k = l then pk
        else
          let next =
            (((2. *. float_of_int k) +. 1.) *. x *. pk
            -. (float_of_int k *. pkm1))
            /. float_of_int (k + 1)
          in
          go (k + 1) pk next
      in
      go 1 1. x
