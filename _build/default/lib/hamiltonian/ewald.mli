open Oqmc_containers
open Oqmc_particle

(** Classic Ewald summation for periodic point charges — the full
    periodic-electrostatics substrate that replaces the minimum-image
    shortcut where absolute energies matter (production QMCPACK uses an
    optimized-breakup equivalent). *)

val erfc : float -> float
(** Complementary error function (Abramowitz & Stegun 7.1.26,
    |error| < 1.5e-7). *)

type t

val create : ?tol:float -> lattice:Lattice.t -> charges:float array -> unit -> t
(** Precompute the splitting parameter, reciprocal sum and constant terms
    for a fixed charge set.  Default tolerance 1e-8.
    @raise Invalid_argument for an open-boundary cell. *)

val default_tol : float
val n_gvectors : t -> int
val alpha : t -> float

val energy : t -> position:(int -> Vec3.t) -> float
(** Total electrostatic energy of the configuration (real + reciprocal +
    self + charged-background terms). *)

val term :
  ?tol:float ->
  lattice:Lattice.t ->
  charges:float array ->
  position:(int -> Vec3.t) ->
  unit ->
  Hamiltonian.term
