(** Composite Hamiltonian: local energy = kinetic (from the trial
    wavefunction's gradient/laplacian sweep) + a sum of potential terms.
    Terms are closures over the shared distance tables, which must be
    fresh when a measurement is taken. *)

type term = { name : string; evaluate : unit -> float }

type t

val create : term list -> t
val potential_energy : t -> float
val local_energy : t -> kinetic:float -> float
val term_energies : t -> (string * float) list
