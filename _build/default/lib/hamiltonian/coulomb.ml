(* Coulomb interactions under the minimum-image convention.

   Substitution note (see DESIGN.md): production QMCPACK uses Ewald /
   optimized-breakup summation for periodic Coulomb.  The electrostatics
   here is the spherically-truncated minimum-image sum, which exercises
   the same distance-table access pattern and keeps Ref/Current physics
   identical; absolute energies of periodic systems therefore carry a
   truncation offset that cancels in every comparison this repository
   makes. *)

type dist_fn = int -> int -> float

(* Electron-electron repulsion Σ_{i<j} 1/r_ij. *)
let ee ~n ~(dist : dist_fn) : Hamiltonian.term =
  {
    Hamiltonian.name = "Coulomb-ee";
    evaluate =
      (fun () ->
        let acc = ref 0. in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let d = dist i j in
            if d > 0. then acc := !acc +. (1. /. d)
          done
        done;
        !acc);
  }

(* Electron-ion attraction Σ_{k,I} −Z_I / r_kI. *)
let ei ~n ~n_ion ~(charge : int -> float) ~(dist : dist_fn) :
    Hamiltonian.term =
  {
    Hamiltonian.name = "Coulomb-eI";
    evaluate =
      (fun () ->
        let acc = ref 0. in
        for k = 0 to n - 1 do
          for i = 0 to n_ion - 1 do
            let d = dist k i in
            if d > 0. then acc := !acc -. (charge i /. d)
          done
        done;
        !acc);
  }

(* Fixed ion-ion repulsion: a constant, computed once. *)
let ii ~n_ion ~(charge : int -> float) ~(dist : dist_fn) : Hamiltonian.term =
  let v =
    let acc = ref 0. in
    for i = 0 to n_ion - 1 do
      for j = i + 1 to n_ion - 1 do
        let d = dist i j in
        if d > 0. then acc := !acc +. (charge i *. charge j /. d)
      done
    done;
    !acc
  in
  { Hamiltonian.name = "Coulomb-II"; evaluate = (fun () -> v) }
