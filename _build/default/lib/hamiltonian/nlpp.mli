open Oqmc_containers

(** Non-local pseudopotential via spherical quadrature (Eq. 7 of the
    paper): for each electron inside an ion's cutoff, the angular
    projector is evaluated on a quadrature shell using trial-wavefunction
    ratios supplied by the engine. *)

type channel = { l : int; v : float -> float; cutoff : float }

type ion_species = { channels : channel list }

val create :
  quadrature:Quadrature.t ->
  species:ion_species array ->
  n_electrons:int ->
  ion_species_of:(int -> int) ->
  n_ions:int ->
  ion_position:(int -> Vec3.t) ->
  elec_position:(int -> Vec3.t) ->
  dist:(int -> int -> float) ->
  ratio:(int -> Vec3.t -> float) ->
  Hamiltonian.term
(** [ratio k pos] must stage the temporary move of electron [k] to [pos]
    through the shared tables and wavefunction, return Ψ(R')/Ψ(R), and
    reject it. *)
