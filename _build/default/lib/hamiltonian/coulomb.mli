(** Coulomb interactions under the minimum-image convention (the
    spherically truncated substitution documented in DESIGN.md; see
    {!Ewald} for full periodic electrostatics). *)

type dist_fn = int -> int -> float

val ee : n:int -> dist:dist_fn -> Hamiltonian.term
(** Electron-electron repulsion Σ_{i<j} 1/r_ij. *)

val ei :
  n:int -> n_ion:int -> charge:(int -> float) -> dist:dist_fn ->
  Hamiltonian.term
(** Electron-ion attraction −Σ Z_I/r_kI. *)

val ii :
  n_ion:int -> charge:(int -> float) -> dist:dist_fn -> Hamiltonian.term
(** Fixed ion-ion repulsion, evaluated once. *)
