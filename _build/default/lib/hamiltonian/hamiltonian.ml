(* Composite Hamiltonian: the local energy is the kinetic part (from the
   trial wavefunction's gradient/laplacian sweep) plus a sum of potential
   terms.  Terms are closures over whatever state they need (usually the
   shared distance tables, which must be fresh when a measurement is
   taken), mirroring how QMCPACK Hamiltonian objects consume the tables. *)

type term = { name : string; evaluate : unit -> float }

type t = { terms : term array }

let create terms = { terms = Array.of_list terms }

let potential_energy t =
  Array.fold_left (fun acc term -> acc +. term.evaluate ()) 0. t.terms

let local_energy t ~kinetic = kinetic +. potential_energy t

let term_energies t =
  Array.to_list (Array.map (fun term -> (term.name, term.evaluate ())) t.terms)
