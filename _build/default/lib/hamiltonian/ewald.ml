open Oqmc_containers
open Oqmc_particle

(* Ewald summation for periodic point charges.

   Production QMCPACK evaluates periodic Coulomb interactions with an
   optimized-breakup / Ewald method; this module provides the classic
   Ewald split so the minimum-image substitution documented in DESIGN.md
   can be lifted where full periodic electrostatics matter:

     E = ½ Σ_{i≠j} q_i q_j erfc(α r_ij)/r_ij         (real space, min image)
       + (2π/V) Σ_{G≠0} e^{−G²/4α²}/G² |S(G)|²      (reciprocal space)
       − α/√π Σ_i q_i²                                (self)
       − π/(2α²V) (Σ_i q_i)²                          (charged background)

   with the structure factor S(G) = Σ_i q_i e^{iG·r_i}.  α is chosen so
   the real-space term is converged within the Wigner–Seitz radius (one
   minimum image suffices), and the G sum is truncated at matching
   accuracy. *)

(* Complementary error function, Abramowitz & Stegun 7.1.26
   (|error| < 1.5e-7 — far below the Ewald truncation error). *)
let erfc x =
  let ax = abs_float x in
  let t = 1. /. (1. +. (0.3275911 *. ax)) in
  let poly =
    t
    *. (0.254829592
       +. (t
          *. (-0.284496736
             +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let e = poly *. exp (-.ax *. ax) in
  if x >= 0. then e else 2. -. e

type t = {
  lattice : Lattice.t;
  charges : float array;
  alpha : float;
  r_cut : float;
  (* (G vector, 4π-free coefficient 2π/V · e^{−G²/4α²}/G²) *)
  gterms : (Vec3.t * float) array;
  self_energy : float;
  background : float;
}

let default_tol = 1e-8

let make_gvectors lattice alpha volume tol =
  let g = Lattice.frac_rows lattice in
  let gvec i j k =
    Vec3.scale (2. *. Float.pi)
      (Vec3.add
         (Vec3.scale (float_of_int i) g.(0))
         (Vec3.add
            (Vec3.scale (float_of_int j) g.(1))
            (Vec3.scale (float_of_int k) g.(2))))
  in
  (* G cutoff: e^{−G²/4α²}/G² < tol. *)
  let gmax =
    let rec grow x =
      if exp (-.x *. x /. (4. *. alpha *. alpha)) /. (x *. x) < tol then x
      else grow (x *. 1.2)
    in
    grow (2. *. alpha)
  in
  let b = Array.map Vec3.norm g in
  let lim d = int_of_float (Float.ceil (gmax /. (2. *. Float.pi *. d))) in
  let li = lim b.(0) and lj = lim b.(1) and lk = lim b.(2) in
  let terms = ref [] in
  for i = -li to li do
    for j = -lj to lj do
      for k = -lk to lk do
        if i <> 0 || j <> 0 || k <> 0 then begin
          let gv = gvec i j k in
          let g2 = Vec3.norm2 gv in
          if g2 <= gmax *. gmax then begin
            let coeff =
              2. *. Float.pi /. volume
              *. exp (-.g2 /. (4. *. alpha *. alpha))
              /. g2
            in
            if coeff > tol /. 100. then terms := (gv, coeff) :: !terms
          end
        end
      done
    done
  done;
  Array.of_list !terms

let create ?(tol = default_tol) ~lattice ~charges () =
  if not (Lattice.is_periodic lattice) then
    invalid_arg "Ewald.create: open-boundary cell";
  let volume = Lattice.volume lattice in
  let r_cut = Lattice.wigner_seitz_radius lattice in
  (* α so that erfc(α r_cut)/r_cut < tol: erfc(x) ≈ e^{−x²}. *)
  let alpha =
    let rec grow a =
      if erfc (a *. r_cut) /. r_cut < tol then a else grow (a *. 1.1)
    in
    grow (2. /. r_cut)
  in
  let qsum = Array.fold_left ( +. ) 0. charges in
  let q2sum = Array.fold_left (fun acc q -> acc +. (q *. q)) 0. charges in
  {
    lattice;
    charges = Array.copy charges;
    alpha;
    r_cut;
    gterms = make_gvectors lattice alpha volume tol;
    self_energy = -.alpha /. sqrt Float.pi *. q2sum;
    background = -.Float.pi /. (2. *. alpha *. alpha *. volume) *. qsum *. qsum;
  }

let n_gvectors t = Array.length t.gterms
let alpha t = t.alpha

(* Total electrostatic energy of the configuration. *)
let energy t ~(position : int -> Vec3.t) =
  let n = Array.length t.charges in
  let pos = Array.init n position in
  (* real space: minimum image within the converged cutoff *)
  let e_real = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dr =
        Lattice.min_image_disp t.lattice (Vec3.sub pos.(j) pos.(i))
      in
      let r = Vec3.norm dr in
      if r > 1e-12 && r < t.r_cut then
        e_real :=
          !e_real +. (t.charges.(i) *. t.charges.(j) *. erfc (t.alpha *. r) /. r)
    done
  done;
  (* reciprocal space *)
  let e_recip = ref 0. in
  Array.iter
    (fun (gv, coeff) ->
      let re = ref 0. and im = ref 0. in
      for i = 0 to n - 1 do
        let phase = Vec3.dot gv pos.(i) in
        re := !re +. (t.charges.(i) *. cos phase);
        im := !im +. (t.charges.(i) *. sin phase)
      done;
      e_recip := !e_recip +. (coeff *. ((!re *. !re) +. (!im *. !im))))
    t.gterms;
  !e_real +. !e_recip +. t.self_energy +. t.background

(* Hamiltonian term over a fixed charge set with dynamic positions. *)
let term ?tol ~lattice ~charges ~(position : int -> Vec3.t) () :
    Hamiltonian.term =
  let t = create ?tol ~lattice ~charges () in
  { Hamiltonian.name = "Coulomb-Ewald"; evaluate = (fun () -> energy t ~position) }
