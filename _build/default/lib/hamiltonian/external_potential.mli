open Oqmc_containers

(** External one-body potentials for the analytic validation systems. *)

val harmonic :
  omega:float -> n:int -> position:(int -> Vec3.t) -> Hamiltonian.term
(** ½ ω² Σ_k |r_k|². *)

val local_v :
  name:string ->
  n:int ->
  position:(int -> Vec3.t) ->
  v:(Vec3.t -> float) ->
  Hamiltonian.term
