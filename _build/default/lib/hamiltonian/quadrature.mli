open Oqmc_containers

(** Spherical quadrature rules for the non-local pseudopotential angular
    integral, plus Legendre polynomials for the projectors. *)

type t = { points : Vec3.t array; weights : float array }

val n_points : t -> int

val octahedron : t
(** 6 points, exact through l = 2. *)

val icosahedron : t
(** 12 points, exact through l = 5 — the usual default. *)

val legendre : int -> float -> float
(** P_l(x) by recurrence. *)
