(** Energy model for Fig. 10: package+DRAM power is flat during the DMC
    phase (the paper's turbostat observation), so energy tracks run time
    and the energy reduction equals the speedup. *)

type sample = { t_s : float; watts : float }

type profile = {
  label : string;
  samples : sample list;
  total_joules : float;
  dmc_seconds : float;
}

val dmc_power : Machine.t -> float
val init_power : Machine.t -> float

val profile :
  ?interval:float ->
  label:string ->
  machine:Machine.t ->
  init_time:float ->
  dmc_time:float ->
  unit ->
  profile
(** turbostat-like sampled power trace (default 5 s interval). *)

val energy_ratio : ref_profile:profile -> cur_profile:profile -> float
