(** Cache-aware roofline model (Williams 2009; Ilic 2014): achieved rate
    is min(compute rate, stream × AI × BW) with the memory level chosen by
    the kernel's working-set hint.  Regenerates Fig. 7 and the Table 2
    projections. *)

type point = {
  kernel : string;
  ai : float;
  gflops : float;
  attainable : float;  (** roof at this AI *)
  time_s : float;
}

val compute_rate : Machine.t -> Opcount.kernel_cost -> float

val level_index : Machine.t -> Opcount.level_hint -> int
(** [Cache] → the first level; [Dram] → the first level that is not an
    on-die cache. *)

val project : ?level:int -> Machine.t -> Opcount.kernel_cost -> point
(** [level] overrides the kernel's working-set hint (the DDR-only
    experiment). *)

val project_all : ?level:int -> Machine.t -> Opcount.kernel_cost list -> point list
val total_time : point list -> float

val speedup :
  ?level:int ->
  Machine.t ->
  ref_costs:Opcount.kernel_cost list ->
  cur_costs:Opcount.kernel_cost list ->
  float

val profile : point list -> (string * float) list
(** Normalized per-kernel time fractions (the Fig. 2 shape). *)
