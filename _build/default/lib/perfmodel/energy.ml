(* Energy model for the Fig. 10 reproduction.

   turbostat on the paper's KNL shows package+DRAM power flat at
   210–215 W through the DMC phase for BOTH Ref and Current, so energy is
   simply power × run time and the energy reduction equals the speedup.
   The model emits a power-vs-time series with the same phases the paper
   plots: initialization/warmup at lower power, then the DMC plateau. *)

type sample = { t_s : float; watts : float }

type profile = {
  label : string;
  samples : sample list;
  total_joules : float;
  dmc_seconds : float;
}

let dmc_power (m : Machine.t) = m.Machine.package_watts +. m.Machine.dram_watts

let init_power (m : Machine.t) =
  (0.55 *. m.Machine.package_watts) +. m.Machine.dram_watts

(* [interval] mimics turbostat's 5-second sampling. *)
let profile ?(interval = 5.) ~label ~(machine : Machine.t) ~init_time
    ~dmc_time () =
  let total = init_time +. dmc_time in
  let n = int_of_float (Float.ceil (total /. interval)) in
  let samples =
    List.init (n + 1) (fun i ->
        let t = float_of_int i *. interval in
        let base =
          if t < init_time then init_power machine else dmc_power machine
        in
        (* small measured-like fluctuation, deterministic *)
        let wiggle = 2.5 *. sin (0.7 *. t) in
        { t_s = t; watts = base +. wiggle })
  in
  {
    label;
    samples;
    total_joules =
      (init_power machine *. init_time) +. (dmc_power machine *. dmc_time);
    dmc_seconds = dmc_time;
  }

let energy_ratio ~ref_profile ~cur_profile =
  ref_profile.total_joules /. cur_profile.total_joules
