lib/perfmodel/opcount.mli:
