lib/perfmodel/machine.ml: List Printf String
