lib/perfmodel/scaling.mli:
