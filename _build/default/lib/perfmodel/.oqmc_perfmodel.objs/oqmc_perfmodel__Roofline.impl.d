lib/perfmodel/roofline.ml: Float List Machine Opcount
