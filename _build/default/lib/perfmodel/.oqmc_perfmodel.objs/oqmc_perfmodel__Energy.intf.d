lib/perfmodel/energy.mli: Machine
