lib/perfmodel/scaling.ml: Float List
