lib/perfmodel/memory_model.ml:
