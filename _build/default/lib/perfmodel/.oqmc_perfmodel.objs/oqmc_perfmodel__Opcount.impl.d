lib/perfmodel/opcount.ml: List
