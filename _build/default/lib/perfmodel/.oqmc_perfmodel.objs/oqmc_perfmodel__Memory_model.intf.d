lib/perfmodel/memory_model.mli:
