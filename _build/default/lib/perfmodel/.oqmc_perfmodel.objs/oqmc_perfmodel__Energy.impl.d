lib/perfmodel/energy.ml: Float List Machine
