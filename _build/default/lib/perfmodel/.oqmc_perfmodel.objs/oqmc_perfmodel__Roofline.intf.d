lib/perfmodel/roofline.mli: Machine Opcount
