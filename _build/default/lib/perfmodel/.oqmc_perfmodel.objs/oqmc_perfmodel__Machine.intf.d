lib/perfmodel/machine.mli:
