(** Machine descriptors for the paper's three platforms (published SKU
    constants), used by the analytic models to regenerate the
    machine-dependent figures — the substitution for hardware this
    repository cannot run on. *)

type memory_level = { level : string; bandwidth : float; capacity_gb : float }

type t = {
  mname : string;
  cores : int;
  threads_per_core : int;
  freq_ghz : float;
  simd_bits : int;
  fma_units : int;
  levels : memory_level list;  (** fastest first *)
  package_watts : float;
  dram_watts : float;
  smt_uplift : float;  (** 2-threads/core throughput gain (Sec. 8.2) *)
  scalar_factor : float;
      (** issue-rate factor for non-vectorized kernels; > 1 on BG/Q
          because the baseline used QPX intrinsics there *)
  stream_factor : float;
      (** fraction of quoted STREAM bandwidth irregular kernels sustain *)
  sp_vector : bool;  (** single precision doubles the vector width *)
}

val flops_per_cycle_sp : t -> float
val flops_per_cycle_dp : t -> float
val peak_gflops : t -> single:bool -> float
val sp_lanes : t -> int
val dp_lanes : t -> int
val bandwidth : ?level:int -> t -> float

val find_level : t -> string -> memory_level
(** @raise Invalid_argument on an unknown level name. *)

val knl : t
(** Intel Xeon Phi 7250P, 64 cores used, MCDRAM + DDR. *)

val bdw : t
(** Single-socket Xeon E5-2698 v4, 20 cores, L3 + DDR. *)

val bgq : t
(** IBM Blue Gene/Q node, 16 cores, QPX (4-wide double only). *)

val all : t list

val find : string -> t
(** Case-insensitive lookup.  @raise Invalid_argument otherwise. *)
