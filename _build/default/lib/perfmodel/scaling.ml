(* Multi-node strong-scaling model for the Fig. 1 reproduction.

   The paper's own analysis (Sec. 8) attributes the multi-node speedup
   entirely to the single-node factor: communications are an allreduce of
   scalar averages plus occasional serialized-walker exchanges, identical
   in Ref and Current.  The model reproduces that structure: per-step
   time = compute/node + allreduce(log₂ nodes) + walker-exchange, with a
   fixed target population shrinking the per-node walker count as nodes
   grow (the strong-scaling pressure). *)

type network = {
  net_name : string;
  latency_us : float; (* per hop / software latency of a small message *)
  bandwidth_gbs : float; (* per-NIC bandwidth *)
}

(* Cray Aries dragonfly (Trinity) and Intel Omni-Path (Serrano). *)
let aries = { net_name = "Aries"; latency_us = 1.3; bandwidth_gbs = 10. }
let omnipath = { net_name = "Omni-Path"; latency_us = 1.1; bandwidth_gbs = 12. }

type point = {
  nodes : int;
  throughput : float; (* normalized samples / second *)
  efficiency : float; (* vs ideal scaling from the smallest node count *)
}

(* [step_time_1walker] — measured single-node per-walker step time;
   walkers per node follow from the fixed target population.
   [threads_per_node] sets the granularity of the load-imbalance term:
   with W walkers spread over T threads, Poisson population fluctuations
   leave threads idle at a relative cost ~ c·T/W — the dominant loss at
   1024 nodes, where KNL runs one walker per thread. *)
let imbalance_coeff = 0.11

let strong_scaling ?(threads_per_node = 1) ~net ~target_population
    ~step_time_1walker ~walker_message_bytes ~node_counts () =
  let comm_time nodes =
    (* allreduce: log₂(nodes) latency hops plus a small payload; walker
       exchange: ~2% of the local population moves each step. *)
    let allreduce =
      Float.log2 (float_of_int (max 2 nodes)) *. net.latency_us *. 1e-6
    in
    let walkers_per_node =
      float_of_int target_population /. float_of_int nodes
    in
    let exchanged = 0.02 *. walkers_per_node in
    let exchange =
      exchanged *. float_of_int walker_message_bytes
      /. (net.bandwidth_gbs *. 1e9)
    in
    allreduce +. exchange
  in
  List.map
    (fun nodes ->
      let walkers_per_node =
        float_of_int target_population /. float_of_int nodes
      in
      let compute = walkers_per_node *. step_time_1walker in
      let imbalance =
        imbalance_coeff *. float_of_int threads_per_node /. walkers_per_node
      in
      let step = (compute *. (1. +. imbalance)) +. comm_time nodes in
      let throughput = float_of_int target_population /. step in
      (nodes, throughput))
    node_counts
  |> fun raw ->
  match raw with
  | [] -> []
  | (n0, t0) :: _ ->
      List.map
        (fun (nodes, throughput) ->
          let ideal = t0 *. float_of_int nodes /. float_of_int n0 in
          { nodes; throughput; efficiency = throughput /. ideal })
        raw
