(** Multi-node strong-scaling model for Fig. 1: per-step time is
    compute (walkers/node × measured step time) inflated by a
    walker-count load-imbalance term, plus allreduce latency and
    serialized-walker exchange. *)

type network = {
  net_name : string;
  latency_us : float;
  bandwidth_gbs : float;
}

val aries : network  (** Cray Aries dragonfly (Trinity). *)

val omnipath : network  (** Intel Omni-Path (Serrano). *)

type point = { nodes : int; throughput : float; efficiency : float }

val imbalance_coeff : float

val strong_scaling :
  ?threads_per_node:int ->
  net:network ->
  target_population:int ->
  step_time_1walker:float ->
  walker_message_bytes:int ->
  node_counts:int list ->
  unit ->
  point list
(** Throughputs in samples/second; efficiencies relative to ideal scaling
    from the first node count. *)
