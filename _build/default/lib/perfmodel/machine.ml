(* Machine descriptors for the paper's three platforms.

   These are published constants (core counts, frequencies, SIMD widths,
   STREAM-class bandwidths, TDP) for the exact SKUs of Sec. 5.  They are
   the "hardware we do not have": the analytic models project kernel
   op/byte counts onto them to regenerate the machine-dependent figures.
   Bandwidths in GB/s, frequencies in GHz, power in watts. *)

type memory_level = { level : string; bandwidth : float; capacity_gb : float }

type t = {
  mname : string;
  cores : int;
  threads_per_core : int; (* threads the benchmarks actually run *)
  freq_ghz : float;
  simd_bits : int;
  fma_units : int; (* per-core FMA pipes *)
  levels : memory_level list; (* fastest first *)
  package_watts : float; (* CPU + on-package memory during DMC *)
  dram_watts : float;
  (* Latency-hiding benefit of the second hardware thread for the
     memory-latency-bound B-spline gathers (the paper's SMT study). *)
  smt_uplift : float;
  (* Issue-rate factor applied to non-vectorized kernels, relative to one
     lane of a vector pipe.  < 1 on KNL (narrow cores suffer on scalar
     code); > 1 on BG/Q, where the baseline QMCPACK already used QPX
     intrinsics for its key kernels (Sec. 1), so "scalar" kernels were
     not actually scalar there. *)
  scalar_factor : float;
  (* Fraction of the quoted STREAM bandwidth irregular QMC kernels
     sustain; < 1 on KNL, whose MCDRAM needs more concurrency than these
     kernels expose. *)
  stream_factor : float;
  (* Whether single precision doubles the vector width (true on x86;
     false on BG/Q, whose QPX is 4-wide double only). *)
  sp_vector : bool;
}

let flops_per_cycle_sp m =
  if m.sp_vector then float_of_int (m.simd_bits / 32 * 2 * m.fma_units)
  else float_of_int (m.simd_bits / 64 * 2 * m.fma_units)
let flops_per_cycle_dp m = float_of_int (m.simd_bits / 64 * 2 * m.fma_units)

let peak_gflops m ~single =
  (if single then flops_per_cycle_sp m else flops_per_cycle_dp m)
  *. m.freq_ghz *. float_of_int m.cores

let sp_lanes m = if m.sp_vector then m.simd_bits / 32 else m.simd_bits / 64
let dp_lanes m = m.simd_bits / 64

let bandwidth ?(level = 0) m = (List.nth m.levels level).bandwidth

let find_level m name =
  match List.find_opt (fun l -> l.level = name) m.levels with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Machine: no memory level %S" name)

(* Intel Xeon Phi 7250P (KNL), quad/flat: 68 cores, 64 used (Sec. 5). *)
let knl =
  {
    mname = "KNL";
    cores = 64;
    threads_per_core = 2;
    freq_ghz = 1.4;
    simd_bits = 512;
    fma_units = 2;
    levels =
      [
        { level = "MCDRAM"; bandwidth = 450.; capacity_gb = 16. };
        { level = "DDR"; bandwidth = 85.; capacity_gb = 96. };
      ];
    package_watts = 195.;
    dram_watts = 18.;
    smt_uplift = 1.085;
    scalar_factor = 0.9;
    stream_factor = 0.40;
    sp_vector = true;
  }

(* Single-socket Xeon E5-2698 v4 (BDW), 20 cores, AVX2. *)
let bdw =
  {
    mname = "BDW";
    cores = 20;
    threads_per_core = 2;
    freq_ghz = 2.2;
    simd_bits = 256;
    fma_units = 2;
    levels =
      [
        { level = "L3"; bandwidth = 300.; capacity_gb = 0.05 };
        { level = "DDR"; bandwidth = 68.; capacity_gb = 128. };
      ];
    package_watts = 120.;
    dram_watts = 15.;
    smt_uplift = 1.10;
    scalar_factor = 1.0;
    stream_factor = 1.0;
    sp_vector = true;
  }

(* IBM Blue Gene/Q node: 16 user cores, QPX 4-wide double. *)
let bgq =
  {
    mname = "BG/Q";
    cores = 16;
    threads_per_core = 4;
    freq_ghz = 1.6;
    simd_bits = 256;
    fma_units = 1;
    levels = [ { level = "DDR"; bandwidth = 28.; capacity_gb = 16. } ];
    package_watts = 55.;
    dram_watts = 10.;
    smt_uplift = 1.15;
    scalar_factor = 4.0;
    stream_factor = 1.0;
    sp_vector = false;
  }

let all = [ knl; bdw; bgq ]

let find name =
  match
    List.find_opt
      (fun m -> String.lowercase_ascii m.mname = String.lowercase_ascii name)
      all
  with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Machine.find: %S" name)
