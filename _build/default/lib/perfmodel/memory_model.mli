(** Analytic memory-footprint model (Figs. 8 and 9), summing the exact
    allocation formulas of this repository's data structures per build
    variant — the γ(N_th + N_w)N² structure of the paper, derived rather
    than quoted. *)

type breakdown = {
  label : string;
  bspline_gb : float;
  per_thread_gb : float;
  per_walker_gb : float;
  total_gb : float;
}

type variant_kind = [ `Ref | `Ref_mp | `Current ]

val elt_bytes : variant_kind -> int

val engine_bytes : variant_kind -> n:int -> n_ion:int -> n_spo:int -> int
(** One compute engine (per thread): tables, Jastrow state, inverses. *)

val walker_bytes : variant_kind -> n:int -> n_ion:int -> n_spo:int -> int
(** One serialized walker (positions + anonymous buffer); also the
    load-balancing message size. *)

val footprint :
  label:string ->
  variant_kind ->
  n:int ->
  n_ion:int ->
  n_spo_total:int ->
  bspline_bytes:int ->
  threads:int ->
  walkers:int ->
  breakdown
