(* Cache-aware roofline model (Williams et al. 2009; Ilic et al. 2014).

   A kernel of arithmetic intensity AI achieves
   min(compute_rate, stream × AI × BW(level)), where compute_rate is a
   fraction of the vector peak for vectorized kernels and of the
   scalar-issue peak otherwise, and the bounding memory level follows the
   kernel\'s working set: compact Current state lives in cache, the Ref
   stored state and the shared B-spline table stream from main memory.
   Ref kernels therefore sit far below the roofs while Current kernels
   climb toward the bandwidth lines — the structure of Fig. 7. *)

type point = {
  kernel : string;
  ai : float; (* flops / byte *)
  gflops : float; (* achieved *)
  attainable : float; (* roof at this AI *)
  time_s : float; (* projected kernel time for the counted work *)
}

let compute_rate (m : Machine.t) (c : Opcount.kernel_cost) =
  let peak = Machine.peak_gflops m ~single:c.Opcount.single in
  if c.Opcount.vectorized then peak *. c.Opcount.eff
  else
    (* Scalar issue: [eff] is the sustained scalar flops/cycle/core of
       the abstraction-heavy AoS loops (dependency chains, sqrt, strided
       loads), further scaled by the machine's scalar factor. *)
    float_of_int m.Machine.cores *. m.Machine.freq_ghz
    *. m.Machine.scalar_factor *. c.Opcount.eff


(* Memory level index for a hint: Cache = the first level; Dram = the
   first level that is not an on-die cache (capacity >= 1 GB). *)
let level_index (m : Machine.t) = function
  | Opcount.Cache -> 0
  | Opcount.Dram ->
      let rec go i = function
        | [] -> 0
        | l :: rest ->
            if l.Machine.capacity_gb >= 1. then i else go (i + 1) rest
      in
      go 0 m.Machine.levels

let project ?level (m : Machine.t) (c : Opcount.kernel_cost) =
  let lvl =
    match level with Some l -> l | None -> level_index m c.Opcount.level
  in
  let ai = Opcount.arithmetic_intensity c in
  let bw = Machine.bandwidth ~level:lvl m *. m.Machine.stream_factor in
  let peak = Machine.peak_gflops m ~single:c.Opcount.single in
  let attainable = Float.min peak (ai *. bw) in
  let compute = compute_rate m c in
  let memory = ai *. bw *. c.Opcount.stream in
  let achieved = Float.min compute memory in
  let time_s =
    if c.Opcount.flops <= 0. then 0. else c.Opcount.flops /. (achieved *. 1e9)
  in
  { kernel = c.Opcount.kernel; ai; gflops = achieved; attainable; time_s }

let project_all ?level m costs = List.map (project ?level m) costs

let total_time points = List.fold_left (fun a p -> a +. p.time_s) 0. points

(* Projected speedup of one cost set over another on a machine (the
   Table 2 model). *)
let speedup ?level m ~ref_costs ~cur_costs =
  let tr = total_time (project_all ?level m ref_costs) in
  let tc = total_time (project_all ?level m cur_costs) in
  tr /. tc

(* Normalized per-kernel profile (the Fig. 2 shape). *)
let profile points =
  let tot = total_time points in
  List.map
    (fun p -> (p.kernel, if tot > 0. then p.time_s /. tot else 0.))
    points
