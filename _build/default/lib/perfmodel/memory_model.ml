(* Analytic memory-footprint model (Figs. 8 and 9).

   The paper's footprint formula is γ(N_th + N_w)N² plus the shared
   read-only B-spline table.  Rather than quoting γ, this model sums the
   exact allocation formulas of the data structures in this repository —
   distance tables, Jastrow state, determinant inverses, walker buffers —
   per variant, so footprint reductions follow from the same design
   choices that produce them in the code. *)

type breakdown = {
  label : string;
  bspline_gb : float; (* shared, read-only *)
  per_thread_gb : float; (* compute engines: tables + wavefunction state *)
  per_walker_gb : float; (* walker buffers (serialized state) *)
  total_gb : float;
}

type variant_kind = [ `Ref | `Ref_mp | `Current ]

let elt_bytes = function `Ref -> 8 | `Ref_mp | `Current -> 4

(* Bytes of one compute engine for an N-electron, I-ion, M-orbital
   problem. *)
let engine_bytes kind ~n ~n_ion ~n_spo =
  let s = elt_bytes kind in
  let nf = n and io = n_ion and m = n_spo in
  let positions = (3 * nf * 8) + (3 * nf * s) in
  match kind with
  | `Ref | `Ref_mp ->
      (* packed AA triangle (dist + 3 displacement), dense AB block,
         5N² Jastrow matrices, 5N·I J1 matrices, two (N/2)² inverses *)
      let aa = 4 * (nf * (nf - 1) / 2) * s in
      let ab = 4 * nf * io * s in
      let j2 = 5 * nf * nf * s in
      let j1 = 5 * nf * io * s in
      let dets = 2 * 2 * (m * m) * s in
      positions + aa + ab + j2 + j1 + dets
  | `Current ->
      (* full padded AA rows (4 matrices), padded AB rows, 5N Jastrow
         accumulators, two (N/2)² inverses *)
      let aa = 4 * nf * nf * s in
      let ab = 4 * nf * io * s in
      let j2 = 5 * nf * 8 in
      let j1 = 5 * nf * 8 in
      let dets = 2 * 2 * (m * m) * s in
      positions + aa + ab + j2 + j1 + dets

(* Bytes of one walker: positions + serialized component state.  QMCPACK's
   mixed-precision builds serialize the anonymous buffer in single
   precision, halving walker memory and message sizes (Sec. 7.2). *)
let walker_bytes kind ~n ~n_ion ~n_spo =
  let s = elt_bytes kind in
  let positions = 3 * n * 8 in
  let dets = 2 * ((n_spo * n_spo) + 1) * s in
  match kind with
  | `Ref | `Ref_mp ->
      positions + (5 * n * n * s) + (5 * n * n_ion * s) + dets
  | `Current -> positions + (5 * n * s) + (5 * n * s) + dets

let footprint ~label kind ~n ~n_ion ~n_spo_total ~bspline_bytes ~threads
    ~walkers =
  (* per-spin determinant size *)
  let m = n / 2 in
  ignore n_spo_total;
  let per_thread = engine_bytes kind ~n ~n_ion ~n_spo:m in
  let per_walker = walker_bytes kind ~n ~n_ion ~n_spo:m in
  let bspline =
    match kind with
    | `Ref -> float_of_int bspline_bytes
    | `Ref_mp | `Current -> float_of_int bspline_bytes /. 2.
  in
  let gb x = x /. 1e9 in
  let total =
    bspline
    +. (float_of_int threads *. float_of_int per_thread)
    +. (float_of_int walkers *. float_of_int per_walker)
  in
  {
    label;
    bspline_gb = gb bspline;
    per_thread_gb = gb (float_of_int per_thread);
    per_walker_gb = gb (float_of_int per_walker);
    total_gb = gb total;
  }
