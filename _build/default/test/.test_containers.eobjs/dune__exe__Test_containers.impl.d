test/test_containers.ml: Alcotest Aligned Array List Matrix Oqmc_containers Pos_aos Precision QCheck QCheck_alcotest Timers Vec3 Vsc Wbuffer
