test/test_stats.ml: Alcotest Array Float List Nelder_mead Optimizer Oqmc_core Oqmc_particle Oqmc_rng Oqmc_wavefunction Population Stats Variant Vmc Walker Xoshiro
