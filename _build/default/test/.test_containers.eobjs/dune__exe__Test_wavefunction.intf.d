test/test_wavefunction.mli:
