test/test_spline.mli:
