test/test_spline.ml: Alcotest Array Bspline3d Bspline3d_tiled Bspline_basis Cubic_spline_1d Float List Oqmc_containers Oqmc_rng Oqmc_spline Precision QCheck QCheck_alcotest Tridiag
