test/test_perfmodel.ml: Alcotest Energy List Machine Memory_model Opcount Oqmc_perfmodel Roofline Scaling
