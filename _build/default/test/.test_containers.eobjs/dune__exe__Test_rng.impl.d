test/test_rng.ml: Alcotest Array Oqmc_rng QCheck QCheck_alcotest Xoshiro
