test/test_hamiltonian.ml: Alcotest Array Coulomb Ewald External_potential Float Hamiltonian List Nlpp Oqmc_containers Oqmc_hamiltonian Oqmc_particle Quadrature Vec3
