test/test_qmc.mli:
