test/test_linalg.ml: Alcotest Aligned Array Blas Delayed_update List Lu Matrix Oqmc_containers Oqmc_linalg Oqmc_rng Precision Printf QCheck QCheck_alcotest Sherman_morrison Xoshiro
