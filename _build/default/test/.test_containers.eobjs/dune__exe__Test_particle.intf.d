test/test_particle.mli:
