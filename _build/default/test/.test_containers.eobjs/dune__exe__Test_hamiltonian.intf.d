test/test_hamiltonian.mli:
