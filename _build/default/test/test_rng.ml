open Oqmc_rng

let check_float = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)

let test_deterministic () =
  let a = Xoshiro.create 42 and b = Xoshiro.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Xoshiro.next_int64 a = Xoshiro.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Xoshiro.create 1 and b = Xoshiro.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.next_int64 a = Xoshiro.next_int64 b then incr same
  done;
  check_bool "different seeds differ" true (!same = 0)

let test_uniform_range () =
  let r = Xoshiro.create 7 in
  for _ = 1 to 10_000 do
    let u = Xoshiro.uniform r in
    check_bool "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_uniform_moments () =
  let r = Xoshiro.create 11 in
  let n = 200_000 in
  let sum = ref 0. and sum2 = ref 0. in
  for _ = 1 to n do
    let u = Xoshiro.uniform r in
    sum := !sum +. u;
    sum2 := !sum2 +. (u *. u)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check_bool "mean near 1/2" true (abs_float (mean -. 0.5) < 5e-3);
  check_bool "variance near 1/12" true (abs_float (var -. (1. /. 12.)) < 5e-3)

let test_gaussian_moments () =
  let r = Xoshiro.create 13 in
  let n = 200_000 in
  let sum = ref 0. and sum2 = ref 0. and sum3 = ref 0. and sum4 = ref 0. in
  for _ = 1 to n do
    let g = Xoshiro.gaussian r in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g);
    sum3 := !sum3 +. (g *. g *. g);
    sum4 := !sum4 +. (g *. g *. g *. g)
  done;
  let fn = float_of_int n in
  check_bool "mean ~0" true (abs_float (!sum /. fn) < 0.01);
  check_bool "variance ~1" true (abs_float ((!sum2 /. fn) -. 1.) < 0.02);
  check_bool "skew ~0" true (abs_float (!sum3 /. fn) < 0.05);
  check_bool "kurtosis ~3" true (abs_float ((!sum4 /. fn) -. 3.) < 0.1)

let test_int_bounds () =
  let r = Xoshiro.create 17 in
  let counts = Array.make 7 0 in
  for _ = 1 to 7_000 do
    let k = Xoshiro.int r 7 in
    check_bool "in bounds" true (k >= 0 && k < 7);
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 700 && c < 1300))
    counts;
  Alcotest.check_raises "bad bound" (Invalid_argument "Xoshiro.int: bound <= 0")
    (fun () -> ignore (Xoshiro.int r 0))

let test_jump_disjoint () =
  (* After a jump the streams must not collide over a short window. *)
  let a = Xoshiro.create 23 in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  let matches = ref 0 in
  for _ = 1 to 1024 do
    if Xoshiro.next_int64 a = Xoshiro.next_int64 b then incr matches
  done;
  check_bool "disjoint streams" true (!matches = 0)

let test_split_streams () =
  let streams = Xoshiro.streams ~seed:5 4 in
  Alcotest.(check int) "count" 4 (Array.length streams);
  let outs = Array.map Xoshiro.next_int64 streams in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      check_bool "distinct first draws" true (outs.(i) <> outs.(j))
    done
  done

let test_copy_independent () =
  let a = Xoshiro.create 3 in
  let b = Xoshiro.copy a in
  let va = Xoshiro.uniform a in
  let vb = Xoshiro.uniform b in
  check_float "copies replay" va vb

let test_gaussian_vec3 () =
  (* The cached spare must not leak between vector draws. *)
  let a = Xoshiro.create 29 and b = Xoshiro.create 29 in
  let x1, y1, z1 = Xoshiro.gaussian_vec3 a in
  let x2 = Xoshiro.gaussian b in
  let y2 = Xoshiro.gaussian b in
  let z2 = Xoshiro.gaussian b in
  check_float "x" x2 x1;
  check_float "y" y2 y1;
  check_float "z" z2 z1

let prop_uniform_range =
  QCheck.Test.make ~name:"uniform_range stays in range" ~count:200
    QCheck.(pair (float_range (-50.) 50.) (float_range 0.1 50.))
    (fun (lo, w) ->
      let r = Xoshiro.create 31 in
      let hi = lo +. w in
      let v = Xoshiro.uniform_range r ~lo ~hi in
      v >= lo && v < hi)

let () =
  Alcotest.run "rng"
    [
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "jump disjoint" `Quick test_jump_disjoint;
          Alcotest.test_case "split streams" `Quick test_split_streams;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "gaussian_vec3" `Quick test_gaussian_vec3;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_uniform_range ]);
    ]
