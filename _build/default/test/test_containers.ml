open Oqmc_containers

let check_float = Alcotest.(check (float 1e-12))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module A64 = Aligned.Make (Precision.F64)
module A32 = Aligned.Make (Precision.F32)
module Aos64 = Pos_aos.Make (Precision.F64)
module Vsc64 = Vsc.Make (Precision.F64)
module Vsc32 = Vsc.Make (Precision.F32)
module M64 = Matrix.Make (Precision.F64)
module M32 = Matrix.Make (Precision.F32)

(* ---------- Vec3 ---------- *)

let test_vec3_ops () =
  let a = Vec3.make 1. 2. 3. and b = Vec3.make 4. (-5.) 6. in
  check_float "dot" 12. (Vec3.dot a b);
  check_float "norm2" 14. (Vec3.norm2 a);
  check_float "dist" (Vec3.norm (Vec3.sub a b)) (Vec3.dist a b);
  let c = Vec3.cross a b in
  check_float "cross orthogonal to a" 0. (Vec3.dot c a);
  check_float "cross orthogonal to b" 0. (Vec3.dot c b);
  check_float "scale" 6. (Vec3.scale 2. a).Vec3.z;
  check_float "get 1" 2. (Vec3.get a 1);
  check_bool "equal with tol" true
    (Vec3.equal ~tol:1e-9 a (Vec3.make 1.0000000001 2. 3.))

let test_vec3_get_invalid () =
  Alcotest.check_raises "bad dimension"
    (Invalid_argument "Vec3.get: dimension 3") (fun () ->
      ignore (Vec3.get Vec3.zero 3))

let test_vec3_normalize () =
  let v = Vec3.normalize (Vec3.make 3. 4. 0.) in
  check_float "unit norm" 1. (Vec3.norm v);
  check_bool "zero stays zero" true (Vec3.equal (Vec3.normalize Vec3.zero) Vec3.zero)

(* ---------- Aligned ---------- *)

let test_round_up () =
  check_int "exact" 16 (Aligned.round_up 16 8);
  check_int "round" 24 (Aligned.round_up 17 8);
  check_int "zero" 8 (Aligned.round_up 0 8);
  Alcotest.check_raises "bad multiple"
    (Invalid_argument "Aligned.round_up: multiple <= 0") (fun () ->
      ignore (Aligned.round_up 4 0))

let test_aligned_padding () =
  check_int "f64 lanes" 8 (A64.padded_len 5);
  check_int "f64 exact" 16 (A64.padded_len 16);
  check_int "f32 lanes" 16 (A32.padded_len 5);
  check_int "f32 17" 32 (A32.padded_len 17)

let test_aligned_roundtrip () =
  let xs = Array.init 13 (fun i -> float_of_int i *. 0.5) in
  let a = A64.of_array xs in
  Alcotest.(check (array (float 0.))) "roundtrip" xs (A64.to_array a);
  check_int "bytes" (13 * 8) (A64.bytes a)

let test_aligned_f32_rounds () =
  let a = A32.create 4 in
  A32.set a 0 0.1;
  check_bool "storage narrowed" true (A32.get a 0 <> 0.1);
  check_bool "close to 0.1" true (abs_float (A32.get a 0 -. 0.1) < 1e-7)

let test_aligned_sub_shares () =
  let a = A64.create 10 in
  let s = A64.sub a ~pos:2 ~len:4 in
  A64.set s 0 42.;
  check_float "shared storage" 42. (A64.get a 2)

let test_aligned_fold () =
  let a = A64.of_array [| 1.; 2.; 3.; 4. |] in
  check_float "fold sum" 10. (A64.fold ( +. ) 0. a)

(* ---------- Pos_aos ---------- *)

let test_aos_interleaving () =
  let p = Aos64.create 3 in
  Aos64.set p 1 (Vec3.make 1. 2. 3.);
  let d = Aos64.data p in
  check_float "x at 3" 1. (Aos64.A.get d 3);
  check_float "y at 4" 2. (Aos64.A.get d 4);
  check_float "z at 5" 3. (Aos64.A.get d 5);
  check_float "unsafe_y" 2. (Aos64.unsafe_y p 1)

let test_aos_roundtrip () =
  let vs = Array.init 7 (fun i ->
      Vec3.make (float_of_int i) (float_of_int (i * i)) (-.float_of_int i))
  in
  let p = Aos64.of_vec3s vs in
  Array.iteri
    (fun i v -> check_bool "vec roundtrip" true (Vec3.equal v (Aos64.get p i)))
    (Aos64.to_vec3s p);
  ignore vs

(* ---------- Vsc ---------- *)

let test_vsc_layout () =
  let s = Vsc64.create 5 in
  check_int "padded stride" 8 (Vsc64.stride s);
  Vsc64.set s 2 (Vec3.make 7. 8. 9.);
  check_float "xs row" 7. (Vsc64.A.get (Vsc64.xs s) 2);
  check_float "ys row" 8. (Vsc64.A.get (Vsc64.ys s) 2);
  check_float "zs row" 9. (Vsc64.A.get (Vsc64.zs s) 2)

let test_vsc_aos_assign () =
  let n = 11 in
  let aos = Aos64.create n in
  for i = 0 to n - 1 do
    Aos64.set aos i (Vec3.make (float_of_int i) (2. *. float_of_int i) 1.)
  done;
  let s = Vsc64.create n in
  Vsc64.assign_from_aos s aos;
  for i = 0 to n - 1 do
    check_bool "match" true (Vec3.equal (Aos64.get aos i) (Vsc64.get s i))
  done;
  let back = Vsc64.to_aos s in
  for i = 0 to n - 1 do
    check_bool "roundtrip" true (Vec3.equal (Aos64.get aos i) (Aos64.get back i))
  done

let test_vsc_size_mismatch () =
  let s = Vsc64.create 4 and aos = Aos64.create 5 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Vsc.assign_from_aos: size mismatch") (fun () ->
      Vsc64.assign_from_aos s aos)

(* ---------- Wbuffer ---------- *)

let test_wbuffer_protocol () =
  let b = Wbuffer.create ~capacity:2 () in
  Wbuffer.add b 1.5;
  Wbuffer.add_vec3 b (Vec3.make 2. 3. 4.);
  Wbuffer.add_array b [| 5.; 6. |];
  check_int "size" 6 (Wbuffer.size b);
  Wbuffer.rewind b;
  check_float "get" 1.5 (Wbuffer.get b);
  let v = Wbuffer.get_vec3 b in
  check_bool "vec3" true (Vec3.equal v (Vec3.make 2. 3. 4.));
  Wbuffer.rewind b;
  Wbuffer.put b 10.;
  Wbuffer.rewind b;
  check_float "after put" 10. (Wbuffer.get b);
  check_int "bytes" 48 (Wbuffer.bytes b)

let test_wbuffer_overrun () =
  let b = Wbuffer.create () in
  Wbuffer.add b 1.;
  Wbuffer.rewind b;
  ignore (Wbuffer.get b);
  Alcotest.check_raises "overrun"
    (Invalid_argument "Wbuffer.get: past end of pool") (fun () ->
      ignore (Wbuffer.get b))

let test_wbuffer_copy_independent () =
  let b = Wbuffer.create () in
  Wbuffer.add b 1.;
  let c = Wbuffer.copy b in
  Wbuffer.rewind b;
  Wbuffer.put b 2.;
  Wbuffer.rewind c;
  check_float "copy unchanged" 1. (Wbuffer.get c)

(* ---------- Matrix ---------- *)

let test_matrix_basic () =
  let m = M64.init 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  check_float "get" 12. (M64.get m 1 2);
  let tr = M64.transpose m in
  check_float "transpose" 12. (M64.get tr 2 1);
  check_int "ld unpadded" 4 (M64.ld m);
  let p = M64.create ~padded:true 3 4 in
  check_int "ld padded f64" 8 (M64.ld p)

let test_matrix_row_shares () =
  let m = M64.create 3 3 in
  let r = M64.row m 1 in
  M64.A.set r 2 5.;
  check_float "row view shares" 5. (M64.get m 1 2)

let test_matrix_identity_diff () =
  let i3 = M64.identity 3 in
  let j3 = M64.init 3 3 (fun i j -> if i = j then 1. else 0.) in
  check_float "identity" 0. (M64.max_abs_diff i3 j3)

let test_matrix_of_arrays_ragged () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Matrix.of_arrays: ragged rows") (fun () ->
      ignore (M64.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

(* ---------- timers ---------- *)

let test_timers () =
  let t = Timers.create () in
  let r = Timers.time t "work" (fun () -> 41 + 1) in
  Alcotest.(check int) "returns value" 42 r;
  Timers.add t "work" 0.5;
  Alcotest.(check int) "count" 2 (Timers.count t "work");
  check_bool "sum includes manual add" true (Timers.total t "work" >= 0.5);
  let t2 = Timers.create () in
  Timers.add t2 "other" 0.25;
  Timers.merge ~into:t t2;
  check_bool "merged key" true (Timers.total t "other" = 0.25);
  let prof = Timers.profile t in
  let total = List.fold_left (fun a (_, f) -> a +. f) 0. prof in
  check_bool "profile normalized" true (abs_float (total -. 1.) < 1e-9);
  Timers.reset t;
  check_bool "reset" true (Timers.grand_total t = 0.);
  (* the disabled set must run thunks without recording *)
  let x = Timers.time Timers.null "skip" (fun () -> 7) in
  Alcotest.(check int) "null passthrough" 7 x

(* ---------- qcheck properties ---------- *)

let vec3_gen =
  QCheck.Gen.(
    map3 (fun x y z -> Vec3.make x y z) (float_range (-100.) 100.)
      (float_range (-100.) 100.) (float_range (-100.) 100.))

let arb_vec3 = QCheck.make ~print:Vec3.to_string vec3_gen

let prop_cross_antisym =
  QCheck.Test.make ~name:"vec3 cross antisymmetric" ~count:200
    (QCheck.pair arb_vec3 arb_vec3) (fun (a, b) ->
      Vec3.equal ~tol:1e-9 (Vec3.cross a b) (Vec3.neg (Vec3.cross b a)))

let prop_triangle_inequality =
  QCheck.Test.make ~name:"vec3 triangle inequality" ~count:200
    (QCheck.pair arb_vec3 arb_vec3) (fun (a, b) ->
      Vec3.norm (Vec3.add a b) <= Vec3.norm a +. Vec3.norm b +. 1e-9)

let prop_vsc_roundtrip =
  QCheck.Test.make ~name:"vsc aos roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) arb_vec3)
    (fun vs ->
      let vs = Array.of_list vs in
      let aos = Aos64.of_vec3s vs in
      let s = Vsc64.create (Array.length vs) in
      Vsc64.assign_from_aos s aos;
      Array.for_all2 (fun a b -> Vec3.equal a b)
        (Aos64.to_vec3s (Vsc64.to_aos s))
        vs)

let prop_f32_roundtrip_error =
  QCheck.Test.make ~name:"f32 storage error bounded" ~count:500
    QCheck.(float_range (-1e6) 1e6)
    (fun x ->
      let a = A32.create 1 in
      A32.set a 0 x;
      abs_float (A32.get a 0 -. x) <= abs_float x *. 1.2e-7 +. 1e-30)

let prop_round_up =
  QCheck.Test.make ~name:"round_up properties" ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 1 64))
    (fun (n, m) ->
      let r = Aligned.round_up n m in
      r mod m = 0 && r >= n && (n <= 0 || r - n < m))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "containers"
    [
      ( "vec3",
        [
          Alcotest.test_case "ops" `Quick test_vec3_ops;
          Alcotest.test_case "get invalid" `Quick test_vec3_get_invalid;
          Alcotest.test_case "normalize" `Quick test_vec3_normalize;
        ] );
      ( "aligned",
        [
          Alcotest.test_case "round_up" `Quick test_round_up;
          Alcotest.test_case "padding" `Quick test_aligned_padding;
          Alcotest.test_case "roundtrip" `Quick test_aligned_roundtrip;
          Alcotest.test_case "f32 rounds" `Quick test_aligned_f32_rounds;
          Alcotest.test_case "sub shares" `Quick test_aligned_sub_shares;
          Alcotest.test_case "fold" `Quick test_aligned_fold;
        ] );
      ( "pos_aos",
        [
          Alcotest.test_case "interleaving" `Quick test_aos_interleaving;
          Alcotest.test_case "roundtrip" `Quick test_aos_roundtrip;
        ] );
      ( "vsc",
        [
          Alcotest.test_case "layout" `Quick test_vsc_layout;
          Alcotest.test_case "aos assign" `Quick test_vsc_aos_assign;
          Alcotest.test_case "size mismatch" `Quick test_vsc_size_mismatch;
        ] );
      ( "wbuffer",
        [
          Alcotest.test_case "protocol" `Quick test_wbuffer_protocol;
          Alcotest.test_case "overrun" `Quick test_wbuffer_overrun;
          Alcotest.test_case "copy" `Quick test_wbuffer_copy_independent;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "basic" `Quick test_matrix_basic;
          Alcotest.test_case "row shares" `Quick test_matrix_row_shares;
          Alcotest.test_case "identity" `Quick test_matrix_identity_diff;
          Alcotest.test_case "ragged" `Quick test_matrix_of_arrays_ragged;
        ] );
      ("timers", [ Alcotest.test_case "accumulate/merge" `Quick test_timers ]);
      ( "properties",
        qt
          [
            prop_cross_antisym;
            prop_triangle_inequality;
            prop_vsc_roundtrip;
            prop_f32_roundtrip_error;
            prop_round_up;
          ] );
    ]
