open Oqmc_containers
open Oqmc_hamiltonian

let checkf tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)

(* ---------- quadrature ---------- *)

let test_quadrature_weights () =
  List.iter
    (fun (q : Quadrature.t) ->
      let s = Array.fold_left ( +. ) 0. q.Quadrature.weights in
      checkf 1e-12 "weights sum to 1" 1. s;
      Array.iter
        (fun p -> checkf 1e-9 "unit points" 1. (Vec3.norm p))
        q.Quadrature.points)
    [ Quadrature.octahedron; Quadrature.icosahedron ]

(* A quadrature exact through order L integrates P_l(û·q̂) to zero for
   1 <= l <= L and any axis û. *)
let projector_residual q l axis =
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc :=
        !acc
        +. (q.Quadrature.weights.(i)
           *. Quadrature.legendre l (Vec3.dot axis p)))
    q.Quadrature.points;
  !acc

let test_quadrature_exactness () =
  let axes =
    [
      Vec3.make 1. 0. 0.;
      Vec3.normalize (Vec3.make 1. 1. 1.);
      Vec3.normalize (Vec3.make 0.3 (-0.7) 0.2);
    ]
  in
  List.iter
    (fun axis ->
      for l = 1 to 2 do
        checkf 1e-10 "octahedron exactness" 0.
          (projector_residual Quadrature.octahedron l axis)
      done;
      for l = 1 to 5 do
        checkf 1e-10 "icosahedron exactness" 0.
          (projector_residual Quadrature.icosahedron l axis)
      done)
    axes

let test_legendre () =
  checkf 1e-12 "P0" 1. (Quadrature.legendre 0 0.3);
  checkf 1e-12 "P1" 0.3 (Quadrature.legendre 1 0.3);
  checkf 1e-12 "P2" (((3. *. 0.09) -. 1.) /. 2.) (Quadrature.legendre 2 0.3);
  (* recurrence branch against the closed forms *)
  checkf 1e-12 "P3 recurrence" (Quadrature.legendre 3 0.7)
    ((((5. *. 0.7 *. 0.7) -. 3.) *. 0.7) /. 2.);
  (* P_l(1) = 1 for all l *)
  for l = 0 to 8 do
    checkf 1e-12 "P_l(1)=1" 1. (Quadrature.legendre l 1.)
  done

(* ---------- Coulomb terms ---------- *)

let test_coulomb_ee () =
  (* two electrons at distance 2 -> 1/2 *)
  let dist i j = if i <> j then 2. else 0. in
  let term = Coulomb.ee ~n:2 ~dist in
  checkf 1e-12 "pair energy" 0.5 (term.Hamiltonian.evaluate ());
  let term3 = Coulomb.ee ~n:3 ~dist in
  checkf 1e-12 "three pairs" 1.5 (term3.Hamiltonian.evaluate ())

let test_coulomb_ei () =
  let dist _ _ = 4. in
  let charge _ = 6. in
  let term = Coulomb.ei ~n:2 ~n_ion:3 ~charge ~dist in
  checkf 1e-12 "attraction" (-.(2. *. 3. *. 6. /. 4.))
    (term.Hamiltonian.evaluate ())

let test_coulomb_ii_constant () =
  let calls = ref 0 in
  let dist i j =
    incr calls;
    float_of_int (i + j + 1)
  in
  let term = Coulomb.ii ~n_ion:3 ~charge:(fun _ -> 2.) ~dist in
  let first = term.Hamiltonian.evaluate () in
  let again = term.Hamiltonian.evaluate () in
  checkf 1e-12 "same value" first again;
  Alcotest.(check int) "computed once" 3 !calls;
  (* pairs (0,1) d=2, (0,2) d=3, (1,2) d=4, q=2: 4/2+4/3+4/4 *)
  checkf 1e-12 "value" ((4. /. 2.) +. (4. /. 3.) +. 1.) first

let test_harmonic_term () =
  let pos = [| Vec3.make 1. 0. 0.; Vec3.make 0. 2. 0. |] in
  let term =
    External_potential.harmonic ~omega:3. ~n:2 ~position:(fun i -> pos.(i))
  in
  checkf 1e-12 "1/2 w^2 sum r^2" (0.5 *. 9. *. 5.)
    (term.Hamiltonian.evaluate ())

let test_hamiltonian_sum () =
  let t v : Hamiltonian.term =
    { Hamiltonian.name = "c"; evaluate = (fun () -> v) }
  in
  let h = Hamiltonian.create [ t 1.; t 2.; t 3.5 ] in
  checkf 1e-12 "potential" 6.5 (Hamiltonian.potential_energy h);
  checkf 1e-12 "local energy" 8.5 (Hamiltonian.local_energy h ~kinetic:2.);
  Alcotest.(check int) "terms" 3 (List.length (Hamiltonian.term_energies h))

(* ---------- NLPP ---------- *)

let nlpp_term ~l ~ratio ~v =
  let ion_pos = Vec3.make 0. 0. 0. in
  let elec_pos = Vec3.make 1.5 0. 0. in
  Nlpp.create ~quadrature:Quadrature.icosahedron
    ~species:[| { Nlpp.channels = [ { Nlpp.l; v; cutoff = 2.0 } ] } |]
    ~n_electrons:1
    ~ion_species_of:(fun _ -> 0)
    ~n_ions:1
    ~ion_position:(fun _ -> ion_pos)
    ~elec_position:(fun _ -> elec_pos)
    ~dist:(fun _ _ -> 1.5)
    ~ratio

let test_nlpp_unit_ratio_l0 () =
  (* With Ψ ratios = 1, the l=0 projector integrates to 1, so
     V_NL = v(r)·(2l+1)·1 = v(r). *)
  let term = nlpp_term ~l:0 ~ratio:(fun _ _ -> 1.) ~v:(fun r -> 2. /. r) in
  checkf 1e-10 "l=0 unit ratio" (2. /. 1.5) (term.Hamiltonian.evaluate ())

let test_nlpp_unit_ratio_l2 () =
  (* For l >= 1 the projector of a constant is zero (orthogonality). *)
  let term = nlpp_term ~l:2 ~ratio:(fun _ _ -> 1.) ~v:(fun _ -> 3.) in
  checkf 1e-10 "l=2 unit ratio" 0. (term.Hamiltonian.evaluate ())

let test_nlpp_outside_cutoff () =
  let called = ref false in
  let term =
    Nlpp.create ~quadrature:Quadrature.octahedron
      ~species:[| { Nlpp.channels = [ { Nlpp.l = 1; v = (fun _ -> 1.); cutoff = 1.0 } ] } |]
      ~n_electrons:1
      ~ion_species_of:(fun _ -> 0)
      ~n_ions:1
      ~ion_position:(fun _ -> Vec3.zero)
      ~elec_position:(fun _ -> Vec3.make 5. 0. 0.)
      ~dist:(fun _ _ -> 5.)
      ~ratio:(fun _ _ ->
        called := true;
        1.)
  in
  checkf 1e-12 "no contribution" 0. (term.Hamiltonian.evaluate ());
  check_bool "no ratio calls" false !called

let test_nlpp_quadrature_positions () =
  (* Quadrature points must sit on the shell of radius r around the ion. *)
  let seen = ref [] in
  let term =
    nlpp_term ~l:1
      ~ratio:(fun _ pos ->
        seen := pos :: !seen;
        1.)
      ~v:(fun _ -> 1.)
  in
  ignore (term.Hamiltonian.evaluate ());
  Alcotest.(check int) "12 points" 12 (List.length !seen);
  List.iter
    (fun p -> checkf 1e-9 "on shell" 1.5 (Vec3.norm p))
    !seen

(* ---------- Ewald ---------- *)

let test_erfc () =
  (* reference values *)
  checkf 2e-7 "erfc(0)" 1. (Ewald.erfc 0.);
  checkf 2e-7 "erfc(1)" 0.15729921 (Ewald.erfc 1.);
  checkf 2e-7 "erfc(2)" 0.00467773 (Ewald.erfc 2.);
  checkf 2e-7 "erfc(-1)" (2. -. 0.15729921) (Ewald.erfc (-1.));
  check_bool "erfc(5) tiny" true (Ewald.erfc 5. < 2e-7)

let rock_salt_madelung a =
  (* 2x2x2 conventional rock-salt cells of unit charges: the energy per
     ion pair is −M/d with d = a/2 and M = 1.747565 (NaCl Madelung). *)
  let lattice = Oqmc_particle.Lattice.cubic (2. *. a) in
  let positions = ref [] and charges = ref [] in
  for cx = 0 to 1 do
    for cy = 0 to 1 do
      for cz = 0 to 1 do
        let base = Vec3.make (a *. float_of_int cx) (a *. float_of_int cy) (a *. float_of_int cz) in
        List.iter
          (fun (f, q) ->
            positions := Vec3.add base (Vec3.scale a f) :: !positions;
            charges := q :: !charges)
          [
            (Vec3.make 0. 0. 0., 1.); (Vec3.make 0.5 0.5 0., 1.);
            (Vec3.make 0.5 0. 0.5, 1.); (Vec3.make 0. 0.5 0.5, 1.);
            (Vec3.make 0.5 0. 0., -1.); (Vec3.make 0. 0.5 0., -1.);
            (Vec3.make 0. 0. 0.5, -1.); (Vec3.make 0.5 0.5 0.5, -1.);
          ]
      done
    done
  done;
  let pos = Array.of_list !positions in
  let charges = Array.of_list !charges in
  let t = Ewald.create ~lattice ~charges () in
  let e = Ewald.energy t ~position:(fun i -> pos.(i)) in
  (* 32 ion pairs in the supercell; Madelung constant referenced to the
     nearest-neighbour distance d = a/2. *)
  let pairs = float_of_int (Array.length pos / 2) in
  -.e /. pairs *. (a /. 2.)

let test_madelung_nacl () =
  checkf 2e-4 "NaCl Madelung constant" 1.747565 (rock_salt_madelung 2.0);
  (* scale invariance: same constant at a different lattice parameter *)
  checkf 2e-4 "scale invariance" 1.747565 (rock_salt_madelung 3.7)

let test_ewald_alpha_independence () =
  (* The total must not depend on the (tolerance-driven) splitting: vary
     the tolerance and compare. *)
  let lattice = Oqmc_particle.Lattice.cubic 5. in
  let charges = [| 1.; -1.; 1.; -1. |] in
  let pos =
    [| Vec3.make 0.3 0.3 0.3; Vec3.make 2.6 0.4 0.4; Vec3.make 0.5 2.4 0.6;
       Vec3.make 2.2 2.3 2.9 |]
  in
  let e tol =
    let t = Ewald.create ~tol ~lattice ~charges () in
    Ewald.energy t ~position:(fun i -> pos.(i))
  in
  checkf 1e-5 "tolerance independence" (e 1e-8) (e 1e-10)

let test_ewald_neutral_background () =
  (* A charged cell gets a compensating background; the term must make
     the energy finite and α-stable. *)
  let lattice = Oqmc_particle.Lattice.cubic 4. in
  let charges = [| 1.; 1. |] in
  let pos = [| Vec3.make 0.1 0.1 0.1; Vec3.make 2.1 2.1 2.1 |] in
  let e tol =
    let t = Ewald.create ~tol ~lattice ~charges () in
    Ewald.energy t ~position:(fun i -> pos.(i))
  in
  check_bool "finite" true (Float.is_finite (e 1e-8));
  checkf 1e-5 "alpha stable" (e 1e-8) (e 1e-10)

let test_ewald_translation_invariance () =
  (* Rigidly translating every charge leaves the periodic energy fixed. *)
  let lattice = Oqmc_particle.Lattice.cubic 6. in
  let charges = [| 1.; -1.; 2.; -2. |] in
  let pos =
    [| Vec3.make 0.5 1.1 2.2; Vec3.make 3.3 0.2 4.4; Vec3.make 1.7 5.1 0.9;
       Vec3.make 4.8 2.6 3.1 |]
  in
  let t = Ewald.create ~lattice ~charges () in
  let e0 = Ewald.energy t ~position:(fun i -> pos.(i)) in
  List.iter
    (fun shift ->
      let e =
        Ewald.energy t ~position:(fun i -> Vec3.add pos.(i) shift)
      in
      checkf 1e-6 "translated" e0 e)
    [ Vec3.make 1.2 0. 0.; Vec3.make (-3.) 2.5 17.2; Vec3.make 0.01 0.01 0.01 ]

let test_ewald_open_cell_rejected () =
  Alcotest.check_raises "open cell"
    (Invalid_argument "Ewald.create: open-boundary cell") (fun () ->
      ignore
        (Ewald.create ~lattice:Oqmc_particle.Lattice.open_cell
           ~charges:[| 1. |] ()))

let () =
  Alcotest.run "hamiltonian"
    [
      ( "quadrature",
        [
          Alcotest.test_case "weights" `Quick test_quadrature_weights;
          Alcotest.test_case "exactness" `Quick test_quadrature_exactness;
          Alcotest.test_case "legendre" `Quick test_legendre;
        ] );
      ( "coulomb",
        [
          Alcotest.test_case "ee" `Quick test_coulomb_ee;
          Alcotest.test_case "ei" `Quick test_coulomb_ei;
          Alcotest.test_case "ii constant" `Quick test_coulomb_ii_constant;
          Alcotest.test_case "harmonic" `Quick test_harmonic_term;
          Alcotest.test_case "sum" `Quick test_hamiltonian_sum;
        ] );
      ( "nlpp",
        [
          Alcotest.test_case "l=0 unit ratio" `Quick test_nlpp_unit_ratio_l0;
          Alcotest.test_case "l=2 unit ratio" `Quick test_nlpp_unit_ratio_l2;
          Alcotest.test_case "outside cutoff" `Quick test_nlpp_outside_cutoff;
          Alcotest.test_case "quadrature shell" `Quick
            test_nlpp_quadrature_positions;
        ] );
      ( "ewald",
        [
          Alcotest.test_case "erfc" `Quick test_erfc;
          Alcotest.test_case "NaCl Madelung" `Quick test_madelung_nacl;
          Alcotest.test_case "alpha independence" `Quick
            test_ewald_alpha_independence;
          Alcotest.test_case "charged background" `Quick
            test_ewald_neutral_background;
          Alcotest.test_case "translation invariance" `Quick
            test_ewald_translation_invariance;
          Alcotest.test_case "open cell" `Quick test_ewald_open_cell_rejected;
        ] );
    ]
