(* Observability: tracing, metrics and telemetry around a DMC run.

   The observability layer (lib/obs) gives three views of the same run,
   none of which perturbs the physics — trajectories are bit-identical
   with it on or off:

   1. structured tracing: every generation, sweep, branch, checkpoint
      and SPO kernel call becomes a span in a per-domain ring buffer,
      exported as Chrome trace_event JSON (open it in Perfetto or
      chrome://tracing);
   2. the metrics registry: named counters, gauges and histograms
      updated by the drivers as they run;
   3. JSONL telemetry: one machine-readable record per measured
      generation, streamed to a file.

   The production driver exposes the same machinery as flags:
     oqmc_run -m dmc --trace run.json --telemetry run.jsonl --progress

   Run with:  dune exec examples/observability.exe *)

open Oqmc_core
open Oqmc_workloads
module Trace = Oqmc_obs.Trace
module Metrics = Oqmc_obs.Metrics
module Telemetry = Oqmc_obs.Telemetry

let () =
  let system = Validation.harmonic ~n:6 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current ~seed:42 system in
  let params =
    {
      Dmc.target_walkers = 16;
      warmup = 10;
      generations = 40;
      tau = 0.01;
      seed = 7;
      n_domains = 1;
      ranks = 1;
    }
  in

  (* Turn tracing on (one atomic store; the default ring keeps the last
     64k events per domain) and attach a telemetry sink. *)
  Trace.enable ();
  let trace_path = Filename.temp_file "oqmc_obs" ".trace.json" in
  let telemetry_path = Filename.temp_file "oqmc_obs" ".jsonl" in
  let res =
    Telemetry.with_sink telemetry_path (fun sink ->
        Dmc.run ~telemetry:sink ~telemetry_every:5 ~factory params)
  in
  Trace.export ~path:trace_path;

  Printf.printf "DMC energy   : %.6f +/- %.6f Ha\n" res.Dmc.energy
    res.Dmc.energy_error;
  Printf.printf "trace        : %s (load in Perfetto)\n" trace_path;
  Printf.printf "telemetry    : %s\n" telemetry_path;

  (* The metrics registry accumulated estimator state as the run went:
     counters count, gauges hold the latest value, histograms bucket
     observations (log-spaced).  [snapshot] is a sorted point-in-time
     copy; [diff] subtracts two snapshots. *)
  let snap = Metrics.snapshot () in
  Printf.printf "\nmetrics registry (%d entries):\n" (List.length snap);
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> Printf.printf "  %-28s counter %d\n" name n
      | Metrics.Gauge g -> Printf.printf "  %-28s gauge   %g\n" name g
      | Metrics.Histogram h ->
          Printf.printf "  %-28s histo   n=%d mean=%.3g\n" name h.Metrics.count
            (if h.Metrics.count = 0 then 0.
             else h.Metrics.sum /. float_of_int h.Metrics.count))
    snap;

  (* The span ring is also inspectable in-process. *)
  let events = Trace.events () in
  Printf.printf "\ntrace ring   : %d events (%d dropped)\n"
    (List.length events) (Trace.dropped ());
  Trace.disable ()
