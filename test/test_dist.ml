open Oqmc_particle
open Oqmc_core
open Oqmc_workloads
open Oqmc_rng
open Oqmc_dist

(* Supervised multi-rank execution: the wire protocol, the walker codec,
   sharded checkpoints with a manifest, real walker exchange, and the
   headline robustness guarantees — fault-free forked runs bit-identical
   to the in-process reference, and crash/stall/garbage recovery with
   finite estimators throughout. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))

let tmpdir () =
  let f = Filename.temp_file "oqmc_dist" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

(* A small interacting system whose engine exercises real buffers. *)
let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 ()
let factory = Build.factory ~variant:Variant.Current_f64 ~seed:500 sys

let mk_walkers ?(seed = 41) n_walkers =
  let e = Build.engine ~variant:Variant.Current_f64 ~seed:40 sys in
  let rng = Xoshiro.create seed in
  List.init n_walkers (fun i ->
      let w = Walker.create 8 in
      e.Engine_api.randomize rng;
      e.Engine_api.register_walker w;
      w.Walker.weight <- 0.5 +. Xoshiro.uniform rng;
      w.Walker.age <- i;
      w.Walker.e_local <- e.Engine_api.measure ();
      w)

(* ---------- walker wire codec ---------- *)

let encode_one w =
  let buf = Buffer.create 256 in
  Walker.encode buf w;
  Buffer.contents buf

let test_codec_bit_exact () =
  List.iter
    (fun w ->
      let s = encode_one w in
      let pos = ref 0 in
      let w' = Walker.decode s pos in
      check_int "consumed everything" (String.length s) !pos;
      check_bool "weight bits" true
        (Int64.bits_of_float w.Walker.weight
        = Int64.bits_of_float w'.Walker.weight);
      check_bool "log_psi bits" true
        (Int64.bits_of_float w.Walker.log_psi
        = Int64.bits_of_float w'.Walker.log_psi);
      check_bool "e_local bits" true
        (Int64.bits_of_float w.Walker.e_local
        = Int64.bits_of_float w'.Walker.e_local);
      check_int "multiplicity" w.Walker.multiplicity w'.Walker.multiplicity;
      check_int "age" w.Walker.age w'.Walker.age;
      check_bool "fresh id" true (w.Walker.id <> w'.Walker.id);
      (* The full state (positions + buffer) roundtrips bit-exactly iff
         re-encoding yields the same bytes. *)
      check_bool "re-encode identical" true (encode_one w' = s))
    (mk_walkers 4)

let test_codec_rejects_malformed () =
  let w = List.hd (mk_walkers 1) in
  let s = encode_one w in
  check_bool "truncated input rejected" true
    (match Walker.decode (String.sub s 0 (String.length s / 2)) (ref 0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- wire protocol framing ---------- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let roundtrip msg =
  with_pipe (fun r w ->
      Wire.send w msg;
      Wire.recv ~timeout:5. r)

let test_wire_roundtrip () =
  let walkers = mk_walkers 3 in
  let msgs =
    [
      Wire.Hello { rank = 3; pid = 4242 };
      Wire.Init { count = 17 };
      Wire.Heartbeat { gen = 9 };
      Wire.Begin_gen { gen = 12; e_trial = -1.234567890123 };
      Wire.Reduce
        {
          gen = 12;
          wsum = 3.5;
          esum = -4.25;
          acc = 100;
          prop = 160;
          n = 7;
          telemetry = [];
        };
      Wire.Reduce
        {
          gen = 13;
          wsum = 1.;
          esum = 0.;
          acc = 1;
          prop = 2;
          n = 1;
          telemetry =
            [ ('c', "dmc.accepted", 42.); ('g', "dmc.e_trial", -0.5) ];
        };
      Wire.Branch { gen = 12 };
      Wire.Count { gen = 12; n = 5 };
      Wire.Give { gen = 12; count = 2 };
      Wire.Checkpoint_cmd { gen = 24; e_trial = 0.5 };
      Wire.Ack { gen = 24; ok = true };
      Wire.Ack { gen = 24; ok = false };
      Wire.Finish;
      Wire.Join { gen = 30; e_trial = -0.987654321012345 };
      Wire.Drain { gen = 31 };
      Wire.Leave { gen = 31; count = 9 };
    ]
  in
  List.iter
    (fun m -> check_bool "scalar roundtrip" true (roundtrip m = m))
    msgs;
  (match roundtrip (Wire.Walkers { gen = 3; walkers }) with
  | Wire.Walkers { gen = 3; walkers = ws } ->
      check_int "walker batch size" 3 (List.length ws);
      List.iter2
        (fun a b -> check_bool "batch bit-exact" true (encode_one a = encode_one b))
        walkers ws
  | _ -> Alcotest.fail "wrong message");
  match
    roundtrip (Wire.Final { acc = 7; prop = 11; walkers; trace = "blob" })
  with
  | Wire.Final { acc = 7; prop = 11; walkers = ws; trace = "blob" } ->
      check_int "final batch size" 3 (List.length ws)
  | _ -> Alcotest.fail "wrong message"

let test_wire_crc_garbage () =
  with_pipe (fun r w ->
      Wire.send_corrupt w;
      match Wire.recv ~timeout:5. r with
      | _ -> Alcotest.fail "corrupt frame was accepted"
      | exception Wire.Garbage _ -> ())

let test_wire_unknown_tag_and_trailing () =
  (* Hand-craft a frame with a valid CRC but an unknown tag, and one
     with trailing bytes after a valid payload. *)
  let frame body =
    let buf = Buffer.create 32 in
    Buffer.add_int32_be buf (Int32.of_int (String.length body));
    Buffer.add_string buf body;
    Buffer.add_int32_be buf (Int32.of_int (Checkpoint.crc32 body));
    Buffer.to_bytes buf
  in
  let send_raw body =
    with_pipe (fun r w ->
        let fb = frame body in
        ignore (Unix.write w fb 0 (Bytes.length fb));
        Wire.recv ~timeout:5. r)
  in
  (match send_raw "\xFF" with
  | _ -> Alcotest.fail "unknown tag accepted"
  | exception Wire.Garbage _ -> ());
  (* Heartbeat (tag 2) + gen + one stray byte. *)
  match send_raw "\x02\x00\x00\x00\x07Z" with
  | _ -> Alcotest.fail "trailing bytes accepted"
  | exception Wire.Garbage _ -> ()

let test_wire_timeout_and_closed () =
  with_pipe (fun r _w ->
      let t0 = Unix.gettimeofday () in
      (match Wire.recv ~timeout:0.1 r with
      | _ -> Alcotest.fail "read from silent pipe succeeded"
      | exception Wire.Timeout -> ());
      check_bool "deadline honored" true (Unix.gettimeofday () -. t0 < 2.));
  let r, w = Unix.pipe () in
  Unix.close w;
  Fun.protect
    ~finally:(fun () -> try Unix.close r with Unix.Unix_error _ -> ())
    (fun () ->
      match Wire.recv ~timeout:1. r with
      | _ -> Alcotest.fail "read from closed pipe succeeded"
      | exception Wire.Closed -> ())

(* The serve layer speaks Wire over SOCKETS, where a frame larger than
   the kernel buffer makes write(2) return short counts and a peer that
   hung up raises SIGPIPE at the writer.  A forked child ships a walker
   batch far bigger than the socket buffer while the parent reads
   concurrently: only a write_all that loops on partial writes (and
   retries EINTR) can get the frame across intact. *)
let test_wire_socketpair_partial_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let walkers = mk_walkers 600 in
  match Unix.fork () with
  | 0 ->
      Unix.close a;
      (* Child: one jumbo frame out, then echo back what the parent
         says so the duplex path is exercised too. *)
      Wire.send b (Wire.Walkers { gen = 77; walkers });
      let code =
        match Wire.recv ~timeout:10. b with
        | Wire.Ack { gen = 77; ok = true } -> 0
        | _ -> 1
      in
      Stdlib.exit code
  | pid ->
      Unix.close b;
      Fun.protect
        ~finally:(fun () -> try Unix.close a with Unix.Unix_error _ -> ())
        (fun () ->
          (match Wire.recv ~timeout:10. a with
          | Wire.Walkers { gen = 77; walkers = ws } ->
              check_int "jumbo batch size" 600 (List.length ws);
              List.iter2
                (fun x y ->
                  check_bool "jumbo batch bit-exact" true
                    (encode_one x = encode_one y))
                walkers ws
          | _ -> Alcotest.fail "wrong message");
          Wire.send a (Wire.Ack { gen = 77; ok = true });
          let _, status = Unix.waitpid [] pid in
          check_bool "child clean" true (status = Unix.WEXITED 0))

(* Writing into a socket whose peer vanished must surface as
   Wire.Closed — not kill the process with SIGPIPE, the classic daemon
   assassin.  The first frame may land in the kernel buffer; EPIPE is
   guaranteed by the second at the latest. *)
let test_wire_socketpair_closed_peer () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  Fun.protect
    ~finally:(fun () -> try Unix.close a with Unix.Unix_error _ -> ())
    (fun () ->
      let saw_closed = ref false in
      (try
         for _ = 1 to 4 do
           Wire.send a (Wire.Heartbeat { gen = 1 })
         done
       with Wire.Closed -> saw_closed := true);
      check_bool "EPIPE surfaced as Closed" true !saw_closed)

(* Raw string frames (the serve protocol's carrier): length + payload +
   CRC, same corruption guarantees as the typed frames. *)
let test_wire_raw_frames () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      (* Small enough to fit the socket buffer, so a sequential
         send-then-recv cannot deadlock; the jumbo partial-write path
         is covered by the forked test above. *)
      let payloads = [ ""; "x"; String.make 60000 'q'; "{\"k\":1}" ] in
      List.iter
        (fun s ->
          Wire.send_str a s;
          let got = Wire.recv_str ~timeout:10. b in
          check_bool "raw frame intact" true (got = s))
        payloads;
      (* A corrupted raw frame must be Garbage, never data. *)
      let buf = Buffer.create 32 in
      Buffer.add_int32_be buf 5l;
      Buffer.add_string buf "hello";
      Buffer.add_int32_be buf 0xdeadbeefl;
      let frame = Buffer.to_bytes buf in
      let n = Unix.write a frame 0 (Bytes.length frame) in
      check_int "corrupt frame written" (Bytes.length frame) n;
      match Wire.recv_str ~timeout:5. b with
      | _ -> Alcotest.fail "corrupt raw frame was accepted"
      | exception Wire.Garbage _ -> ())

(* ---------- sharded checkpoints + manifest ---------- *)

let test_shard_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let walkers = mk_walkers 3 in
  Checkpoint.save_shard ~path ~rank:2 ~gen:40 ~e_trial:(-0.75) walkers;
  let e_trial, restored = Checkpoint.load_shard ~path ~rank:2 ~gen:40 in
  checkf 0. "e_trial" (-0.75) e_trial;
  check_int "count" 3 (List.length restored);
  let gen, (e_trial', _) = Checkpoint.load_latest_shard ~path ~rank:2 in
  check_int "latest gen" 40 gen;
  checkf 0. "latest e_trial" (-0.75) e_trial'

let test_manifest_roundtrip_and_corruption () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  Checkpoint.save_manifest ~path ~gen:30 ~ranks:[ 0; 1; 3 ] ();
  let gen, ranks = Checkpoint.load_manifest ~path in
  check_int "gen" 30 gen;
  Alcotest.(check (list int)) "ranks" [ 0; 1; 3 ] ranks;
  Fault.garble_file ~path:(Checkpoint.manifest_path ~path) ~seed:9;
  check_bool "corrupt manifest rejected" true
    (match Checkpoint.load_manifest ~path with
    | _ -> false
    | exception Checkpoint.Corrupt _ -> true)

let test_latest_complete_falls_back () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let walkers = mk_walkers 2 in
  List.iter
    (fun gen ->
      Checkpoint.save_shard ~path ~rank:0 ~gen ~e_trial:(-1.) walkers;
      Checkpoint.save_shard ~path ~rank:1 ~gen ~e_trial:(-1.) walkers)
    [ 10; 20 ];
  check_bool "newest complete" true
    (Checkpoint.latest_complete ~path ~ranks:2 = Some 20);
  (* Corrupt rank 1's newest shard: the complete set falls back to 10. *)
  Fault.garble_file
    ~path:(Checkpoint.shard_path ~path ~rank:1 ^ Printf.sprintf ".gen-%d" 20)
    ~seed:7;
  check_bool "falls back past corrupt shard" true
    (Checkpoint.latest_complete ~path ~ranks:2 = Some 10);
  check_bool "no complete set for 3 ranks" true
    (Checkpoint.latest_complete ~path ~ranks:3 = None)

(* The manifest is advisory: the restart point is decided by the shards
   that actually load, so a manifest pointing past the complete set (a
   crash between shard acks and the manifest write, or vice versa) must
   fall back, never crash. *)
let test_manifest_partial_shard_set () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let walkers = mk_walkers 2 in
  Checkpoint.save_shard ~path ~rank:0 ~gen:10 ~e_trial:(-1.) walkers;
  Checkpoint.save_shard ~path ~rank:1 ~gen:10 ~e_trial:(-1.) walkers;
  Checkpoint.save_shard ~path ~rank:0 ~gen:20 ~e_trial:(-1.) walkers;
  Checkpoint.save_manifest ~path ~gen:20 ~ranks:[ 0; 1 ] ();
  let mgen, _ = Checkpoint.load_manifest ~path in
  check_int "manifest optimistically claims 20" 20 mgen;
  check_bool "restart falls back to the complete set" true
    (Checkpoint.latest_complete ~path ~ranks:2 = Some 10)

let test_manifest_missing_shards_never_crash () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  Checkpoint.save_manifest ~path ~gen:50 ~ranks:[ 0; 1; 2 ] ();
  check_bool "no shards on disk: no restart point" true
    (Checkpoint.latest_complete ~path ~ranks:3 = None);
  check_bool "missing shard raises Corrupt, not a crash" true
    (match Checkpoint.load_latest_shard ~path ~rank:1 with
    | _ -> false
    | exception Checkpoint.Corrupt _ -> true)

let test_keep1_rotation_race () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let walkers = mk_walkers 2 in
  List.iter
    (fun gen ->
      Checkpoint.save_shard ~keep:1 ~path ~rank:0 ~gen ~e_trial:(-2.) walkers)
    [ 1; 2; 3; 4; 5 ];
  let gen, (e, ws) = Checkpoint.load_latest_shard ~path ~rank:0 in
  check_int "keep=1 leaves only the newest" 5 gen;
  checkf 0. "e_trial survives rotation" (-2.) e;
  check_int "count survives rotation" 2 (List.length ws);
  (* With keep=1 there is no older generation to fall back to, so a torn
     newest file must surface as a clean Corrupt. *)
  Fault.garble_file
    ~path:(Checkpoint.shard_path ~path ~rank:0 ^ ".gen-5")
    ~seed:3;
  check_bool "corrupt newest + keep=1: clean Corrupt" true
    (match Checkpoint.load_latest_shard ~path ~rank:0 with
    | _ -> false
    | exception Checkpoint.Corrupt _ -> true);
  check_bool "latest_complete degrades to None" true
    (Checkpoint.latest_complete ~path ~ranks:1 = None)

(* Async saves spawn a background domain, and a process that has ever
   created a domain can no longer Unix.fork — exactly why only worker
   ranks use them.  Mirror that here: exercise the writer in a forked
   child so this test process stays fork-clean for the supervisor
   suite, then validate the artifacts it left on disk. *)
let test_async_checkpoint_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let walkers = mk_walkers 3 in
  (match Unix.fork () with
  | 0 ->
      let status =
        try
          let t = Checkpoint.Async.create () in
          let ok1 =
            Checkpoint.Async.save_generation t ~path ~gen:1 ~e_trial:(-0.5)
              walkers
          in
          let ok2 =
            Checkpoint.Async.save_generation t ~path ~gen:2 ~e_trial:(-0.25)
              walkers
          in
          let drained = Checkpoint.Async.drain t in
          if ok1 && ok2 && drained && Checkpoint.Async.failures t = 0 then 0
          else 1
        with _ -> 2
      in
      Stdlib.exit status
  | pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED 1 -> Alcotest.fail "an async ack or drain reported failure"
      | _, _ -> Alcotest.fail "async writer child crashed"));
  let gen, (e, ws) = Checkpoint.load_latest ~path in
  check_int "newest generation on disk" 2 gen;
  checkf 0. "e_trial" (-0.25) e;
  check_int "ensemble size" 3 (List.length ws)

(* ---------- population: branching + exchange (satellite coverage) ---- *)

let unit_walkers n = List.init n (fun _ -> Walker.create 2)

let test_branch_extinction_resets_state () =
  let w = Walker.create 2 in
  w.Walker.weight <- 1e-12;
  w.Walker.multiplicity <- 3;
  w.Walker.age <- 57;
  let pop = Population.create ~target:4 ~e_trial:0. [ w ] in
  let rng = Xoshiro.create 123 in
  Population.branch pop rng;
  check_int "never extinct" 1 (Population.size pop);
  let s = List.hd (Population.walkers pop) in
  checkf 0. "unit weight" 1. s.Walker.weight;
  check_int "unit multiplicity" 1 s.Walker.multiplicity;
  check_int "age reset" 0 s.Walker.age;
  check_bool "fresh clone, not the dead walker" true (s.Walker.id <> w.Walker.id)

let test_branch_copy_cap () =
  let w = Walker.create 2 in
  w.Walker.weight <- 100.;
  let pop = Population.create ~target:4 ~e_trial:0. [ w ] in
  Population.branch pop (Xoshiro.create 5);
  check_int "copies capped at 4" 4 (Population.size pop);
  List.iter
    (fun s -> checkf 0. "copies are unit weight" 1. s.Walker.weight)
    (Population.walkers pop)

let test_dmc_weight_clamp () =
  let w = Walker.create 2 in
  w.Walker.weight <- 1.;
  (* A pathological configuration: the raw branching exponent is ±1000,
     but the factor must stay within exp(±2). *)
  Population.dmc_weight ~tau:1. ~e_trial:1000. ~e_old:0. ~e_new:0. w;
  checkf 1e-12 "clamped up" (exp 2.) w.Walker.weight;
  w.Walker.weight <- 1.;
  Population.dmc_weight ~tau:1. ~e_trial:(-1000.) ~e_old:0. ~e_new:0. w;
  checkf 1e-12 "clamped down" (exp (-2.)) w.Walker.weight

let test_load_balance_uneven () =
  let pop = Population.create ~target:8 ~e_trial:0. (unit_walkers 10) in
  let r1 = Population.load_balance pop ~ranks:1 in
  check_int "1 rank moves nothing" 0 r1.Population.messages;
  checkf 0. "1 rank is balanced" 0. r1.Population.imbalance;
  let r3 = Population.load_balance pop ~ranks:3 in
  (* Round-robin over 3 ranks puts 4,3,3 — ideal is 4,3,3: no moves. *)
  check_int "already ideal" 0 r3.Population.messages;
  let pop7 = Population.create ~target:8 ~e_trial:0. (unit_walkers 7) in
  let r4 = Population.load_balance pop7 ~ranks:4 in
  check_bool "uneven split reports imbalance" true
    (r4.Population.imbalance >= 0.);
  check_bool "ranks < 1 rejected" true
    (match Population.load_balance pop ~ranks:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_give_absorb_order () =
  let ws = unit_walkers 5 in
  let pop = Population.create ~target:4 ~e_trial:0. ws in
  let given = Population.give pop 2 in
  check_int "gave 2" 2 (List.length given);
  check_int "kept 3" 3 (Population.size pop);
  (* give takes the LAST walkers, preserving order on both sides. *)
  Alcotest.(check (list int))
    "given are the tail, in order"
    (List.map (fun w -> w.Walker.id) (List.filteri (fun i _ -> i >= 3) ws))
    (List.map (fun w -> w.Walker.id) given);
  Alcotest.(check (list int))
    "kept are the head, in order"
    (List.map (fun w -> w.Walker.id) (List.filteri (fun i _ -> i < 3) ws))
    (List.map (fun w -> w.Walker.id) (Population.walkers pop));
  check_int "give clamps to size" 3 (List.length (Population.give pop 99));
  check_int "empty after over-give" 0 (Population.size pop);
  Population.absorb pop given;
  check_int "absorb appends" 2 (Population.size pop);
  check_bool "negative give rejected" true
    (match Population.give pop (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_plan_properties () =
  check_int "balanced needs no moves" 0
    (List.length (Population.plan [| 3; 3; 3 |]));
  let check_plan counts =
    let counts = Array.of_list counts in
    let k = Array.length counts in
    let total = Array.fold_left ( + ) 0 counts in
    let after = Array.copy counts in
    List.iter
      (fun { Population.src; dst; count } ->
        check_bool "positive move" true (count > 0);
        check_bool "src has the walkers" true (after.(src) >= count);
        after.(src) <- after.(src) - count;
        after.(dst) <- after.(dst) + count)
      (Population.plan counts);
    check_int "walkers conserved" total (Array.fold_left ( + ) 0 after);
    let per = total / k and extra = total mod k in
    Array.iteri
      (fun i c -> check_int "ideal split reached" (per + if i < extra then 1 else 0) c)
      after
  in
  List.iter check_plan
    [ [ 7; 1; 4 ]; [ 0; 0; 9 ]; [ 1; 2; 3; 4; 5 ]; [ 10 ]; [ 2; 2; 3 ] ]

let test_exchange_moves_walkers () =
  let shards =
    [| unit_walkers 8; unit_walkers 1; unit_walkers 3 |]
    |> Array.map (fun ws -> Population.create ~target:4 ~e_trial:0. ws)
  in
  let all_ids =
    Array.to_list shards
    |> List.concat_map (fun s ->
           List.map (fun w -> w.Walker.id) (Population.walkers s))
    |> List.sort compare
  in
  let report = Population.exchange shards in
  check_int "sizes leveled: shard 0" 4 (Population.size shards.(0));
  check_int "sizes leveled: shard 1" 4 (Population.size shards.(1));
  check_int "sizes leveled: shard 2" 4 (Population.size shards.(2));
  check_int "messages = walkers moved" 4 report.Population.messages;
  check_bool "bytes accounted" true (report.Population.bytes > 0);
  let all_ids' =
    Array.to_list shards
    |> List.concat_map (fun s ->
           List.map (fun w -> w.Walker.id) (Population.walkers s))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "same physical walkers" all_ids all_ids'

(* ---------- supervised execution ---------- *)

let base_params =
  {
    Supervisor.default_params with
    ranks = 3;
    target_walkers = 9;
    warmup = 3;
    generations = 10;
    tau = 0.02;
    seed = 77;
    n_domains = 1;
    heartbeat_s = 30.;
    respawn_backoff = 0.01;
  }

let finite x = Float.is_finite x

let assert_healthy name (res : Supervisor.result) =
  check_bool (name ^ ": finite energy") true (finite res.Supervisor.energy);
  check_bool (name ^ ": finite error") true
    (finite res.Supervisor.energy_error);
  check_bool (name ^ ": finite e_trial") true
    (finite res.Supervisor.final_e_trial);
  Array.iter
    (fun e -> check_bool (name ^ ": finite series") true (finite e))
    res.Supervisor.energy_series;
  let target = float_of_int base_params.Supervisor.target_walkers in
  check_bool (name ^ ": population within control bounds") true
    (res.Supervisor.mean_population > target /. 3.
    && res.Supervisor.mean_population < target *. 3.);
  check_bool (name ^ ": final ensemble alive") true
    (List.length res.Supervisor.final_walkers > 0)

let same_series a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let test_run_local_deterministic () =
  let r1 = Supervisor.run_local ~factory base_params in
  let r2 = Supervisor.run_local ~factory base_params in
  check_bool "energy series bit-identical" true
    (same_series r1.Supervisor.energy_series r2.Supervisor.energy_series);
  check_bool "e_trial bit-identical" true
    (Int64.bits_of_float r1.Supervisor.final_e_trial
    = Int64.bits_of_float r2.Supervisor.final_e_trial);
  check_int "comm identical" r1.Supervisor.comm_messages
    r2.Supervisor.comm_messages;
  assert_healthy "local" r1

let test_forked_matches_local_bit_for_bit () =
  let local = Supervisor.run_local ~factory base_params in
  let forked = Supervisor.run ~factory base_params in
  check_bool "energy series bit-identical" true
    (same_series local.Supervisor.energy_series
       forked.Supervisor.energy_series);
  check_bool "final e_trial bit-identical" true
    (Int64.bits_of_float local.Supervisor.final_e_trial
    = Int64.bits_of_float forked.Supervisor.final_e_trial);
  Alcotest.(check (array int))
    "population series identical" local.Supervisor.population_series
    forked.Supervisor.population_series;
  check_int "exchange messages identical" local.Supervisor.comm_messages
    forked.Supervisor.comm_messages;
  check_int "exchange bytes identical" local.Supervisor.comm_bytes
    forked.Supervisor.comm_bytes;
  checkf 0. "acceptance identical" local.Supervisor.acceptance
    forked.Supervisor.acceptance;
  check_int "final ensemble same size"
    (List.length local.Supervisor.final_walkers)
    (List.length forked.Supervisor.final_walkers);
  check_int "no faults: clean counters" 0
    (forked.Supervisor.respawns + forked.Supervisor.crashes
   + forked.Supervisor.heartbeat_timeouts + forked.Supervisor.garbage_frames);
  check_int "no degraded generations" 0 forked.Supervisor.degraded_generations

(* The acceptance scenario: 4 ranks, one SIGKILLed mid-run, recovered
   from its checkpoint shard; the run completes with finite estimators
   and the population under control. *)
let test_kill_recovery_from_shard () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let p =
    {
      base_params with
      Supervisor.ranks = 4;
      target_walkers = 12;
      generations = 12;
      checkpoint = Some path;
      checkpoint_every = 3;
      faults = [ (2, 8, Fault.Rank_kill) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "one crash detected" 1 res.Supervisor.crashes;
  check_int "one respawn" 1 res.Supervisor.respawns;
  check_int "no rank permanently lost" 4 res.Supervisor.live_ranks;
  Alcotest.(check (list int)) "no ranks failed" [] res.Supervisor.ranks_failed;
  check_bool "the killed generation ran degraded" true
    (res.Supervisor.degraded_generations >= 1);
  assert_healthy "kill-recovery" res;
  check_bool "shards + manifest on disk" true
    (Checkpoint.latest_complete ~path ~ranks:4 <> None)

let test_stall_trips_heartbeat () =
  let p =
    {
      base_params with
      Supervisor.heartbeat_s = 0.25;
      generations = 8;
      faults = [ (1, 4, Fault.Rank_stall 3.0) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "stall detected by deadline" 1 res.Supervisor.heartbeat_timeouts;
  check_int "stalled rank respawned" 1 res.Supervisor.respawns;
  check_int "all ranks live at the end" 3 res.Supervisor.live_ranks;
  assert_healthy "stall-recovery" res

let test_garbage_frame_detected () =
  let p =
    {
      base_params with
      Supervisor.generations = 8;
      faults = [ (0, 3, Fault.Rank_garbage) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "garbage frame detected" 1 res.Supervisor.garbage_frames;
  check_int "corrupted rank respawned" 1 res.Supervisor.respawns;
  assert_healthy "garbage-recovery" res

let test_unrecoverable_degrades () =
  let p =
    {
      base_params with
      Supervisor.ranks = 3;
      max_respawn = 0;
      generations = 10;
      faults = [ (1, 5, Fault.Rank_kill) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "rank abandoned" 2 res.Supervisor.live_ranks;
  Alcotest.(check (list int)) "rank 1 lost" [ 1 ] res.Supervisor.ranks_failed;
  check_int "no respawns granted" 0 res.Supervisor.respawns;
  check_bool "remaining generations degraded" true
    (res.Supervisor.degraded_generations >= 5);
  assert_healthy "degraded" res

let test_restore_resumes_all_ranks () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let p1 =
    {
      base_params with
      Supervisor.generations = 6;
      checkpoint = Some path;
      checkpoint_every = 2;
    }
  in
  let r1 = Supervisor.run ~factory p1 in
  let gen = Checkpoint.latest_complete ~path ~ranks:3 in
  check_bool "complete shard set written" true (gen <> None);
  let p2 = { p1 with Supervisor.restore = true; warmup = 0; generations = 4 } in
  let r2 = Supervisor.run ~factory p2 in
  assert_healthy "restored" r2;
  check_bool "restored run continues from the shards" true
    (List.length r2.Supervisor.final_walkers > 0);
  ignore r1

(* ---------- elastic membership ---------- *)

let conservation_ok (res : Supervisor.result) =
  List.for_all
    (fun m -> m.Supervisor.m_walkers_before = m.Supervisor.m_walkers_after)
    res.Supervisor.membership_log

let test_membership_grow_shrink_local () =
  let p =
    {
      base_params with
      Supervisor.elastic = true;
      generations = 12;
      membership =
        [ (3, Supervisor.Join); (6, Supervisor.Leave 1); (9, Supervisor.Join) ];
    }
  in
  let r = Supervisor.run_local ~factory p in
  check_int "two joins" 2 r.Supervisor.joins;
  check_int "one leave" 1 r.Supervisor.leaves;
  check_int "nothing skipped" 0 r.Supervisor.membership_skipped;
  check_bool "walkers conserved across every transition" true
    (conservation_ok r);
  (* 3 ranks + join(new slot 3) − leave(1) + join(refills slot 1). *)
  check_int "ends at four live ranks" 4 r.Supervisor.live_ranks;
  Alcotest.(check (list int))
    "join takes a fresh id, refill takes the vacated slot" [ 3; 1; 1 ]
    (List.map (fun m -> m.Supervisor.m_rank) r.Supervisor.membership_log);
  let r2 = Supervisor.run_local ~factory p in
  check_bool "membership path is deterministic" true
    (same_series r.Supervisor.energy_series r2.Supervisor.energy_series);
  assert_healthy "membership-local" r

(* The acceptance invariant: switching the elastic machinery ON without
   scheduling any membership events must not perturb a single bit. *)
let test_elastic_forked_matches_local_no_events () =
  let p = { base_params with Supervisor.elastic = true } in
  let local = Supervisor.run_local ~factory p in
  let forked = Supervisor.run ~factory p in
  check_bool "energy series bit-identical" true
    (same_series local.Supervisor.energy_series
       forked.Supervisor.energy_series);
  check_bool "final e_trial bit-identical" true
    (Int64.bits_of_float local.Supervisor.final_e_trial
    = Int64.bits_of_float forked.Supervisor.final_e_trial);
  check_int "comm identical" local.Supervisor.comm_messages
    forked.Supervisor.comm_messages;
  check_int "no membership activity" 0
    (forked.Supervisor.joins + forked.Supervisor.leaves
   + forked.Supervisor.membership_skipped)

let test_membership_forked_matches_local () =
  let p =
    {
      base_params with
      Supervisor.elastic = true;
      generations = 12;
      membership = [ (3, Supervisor.Join); (6, Supervisor.Leave 1) ];
    }
  in
  let local = Supervisor.run_local ~factory p in
  let forked = Supervisor.run ~factory p in
  check_bool "energy series bit-identical through join + leave" true
    (same_series local.Supervisor.energy_series
       forked.Supervisor.energy_series);
  check_bool "final e_trial bit-identical" true
    (Int64.bits_of_float local.Supervisor.final_e_trial
    = Int64.bits_of_float forked.Supervisor.final_e_trial);
  Alcotest.(check (array int))
    "population series identical" local.Supervisor.population_series
    forked.Supervisor.population_series;
  check_int "exchange messages identical" local.Supervisor.comm_messages
    forked.Supervisor.comm_messages;
  check_int "exchange bytes identical" local.Supervisor.comm_bytes
    forked.Supervisor.comm_bytes;
  check_int "both saw the join" local.Supervisor.joins forked.Supervisor.joins;
  check_int "both saw the leave" local.Supervisor.leaves
    forked.Supervisor.leaves;
  check_bool "forked transitions conserve walkers" true (conservation_ok forked);
  check_bool "local transitions conserve walkers" true (conservation_ok local);
  assert_healthy "membership-forked" forked

(* Degraded mode is reversible: a rank abandoned after its respawn
   budget runs out leaves a vacant slot a later Join refills. *)
let test_drain_refill_degraded_reversible () =
  let p =
    {
      base_params with
      Supervisor.elastic = true;
      generations = 12;
      max_respawn = 0;
      faults = [ (1, 4, Fault.Rank_kill) ];
      membership = [ (8, Supervisor.Join) ];
    }
  in
  let r = Supervisor.run ~factory p in
  check_int "one crash" 1 r.Supervisor.crashes;
  check_int "no respawns granted" 0 r.Supervisor.respawns;
  Alcotest.(check (list int))
    "rank 1 abandoned" [ 1 ] r.Supervisor.ranks_failed;
  check_int "the join landed" 1 r.Supervisor.joins;
  (match r.Supervisor.membership_log with
  | [ m ] -> check_int "join refilled the abandoned slot" 1 m.Supervisor.m_rank
  | _ -> Alcotest.fail "expected exactly one membership record");
  check_bool "generations ran degraded while short-handed" true
    (r.Supervisor.degraded_generations >= 1);
  check_int "back to full strength at the end" 3 r.Supervisor.live_ranks;
  assert_healthy "degraded-reversible" r

(* ---------- soft deadlines + straggler policies ---------- *)

let test_straggler_warn_counts () =
  let p =
    {
      base_params with
      Supervisor.elastic = true;
      generations = 8;
      gen_deadline_ms = 1;
      faults = [ (1, 4, Fault.Rank_stall 0.05) ];
    }
  in
  let r = Supervisor.run ~factory p in
  check_bool "sub-heartbeat stall trips the soft deadline" true
    (r.Supervisor.stragglers >= 1);
  check_int "warn never kills" 0
    (r.Supervisor.respawns + r.Supervisor.heartbeat_timeouts
   + r.Supervisor.crashes);
  check_int "warn never steals" 0 r.Supervisor.steals;
  assert_healthy "straggler-warn" r

let test_straggler_steal_sheds_walkers () =
  let p =
    {
      base_params with
      Supervisor.elastic = true;
      target_walkers = 24;
      generations = 8;
      gen_deadline_ms = 1;
      straggler_policy = Supervisor.Steal;
      faults = [ (1, 4, Fault.Rank_stall 0.05) ];
    }
  in
  let r = Supervisor.run ~factory p in
  check_bool "straggler observed" true (r.Supervisor.stragglers >= 1);
  check_bool "a quarter-shard steal happened" true (r.Supervisor.steals >= 1);
  check_int "stealing never kills" 0
    (r.Supervisor.respawns + r.Supervisor.crashes);
  assert_healthy "straggler-steal" r

(* ---------- chaos schedules ---------- *)

let test_chaos_plan_deterministic () =
  let mk seed =
    Chaos.plan ~seed ~gens:60 ~ranks:4 ~trajectory:[ 6; 3; 5 ] ~events:10 ()
  in
  let s1 = mk 11 in
  check_bool "same seed, same schedule" true (s1 = mk 11);
  let c = Chaos.count s1 in
  (* 4→6 is two joins, 6→3 three leaves, 3→5 two joins. *)
  check_int "trajectory joins" 4 c.Chaos.joins;
  check_int "trajectory leaves" 3 c.Chaos.leaves;
  check_int "fault events as requested" 10
    (c.Chaos.kills + c.Chaos.stalls + c.Chaos.garbage + c.Chaos.disk_full);
  check_int "total" 17 (Chaos.total s1);
  let faults, membership = Supervisor.of_chaos s1 in
  check_int "fault split" 10 (List.length faults);
  check_int "membership split" 7 (List.length membership);
  let gens = List.map fst s1 in
  check_bool "ascending by generation" true (List.sort compare gens = gens);
  check_bool "membership waypoints precede nothing invalid" true
    (List.for_all (fun (g, _) -> g >= 1 && g < 60) s1)

let () =
  Alcotest.run "dist"
    [
      ( "codec",
        [
          Alcotest.test_case "walker roundtrip is bit-exact" `Quick
            test_codec_bit_exact;
          Alcotest.test_case "malformed input rejected" `Quick
            test_codec_rejects_malformed;
        ] );
      ( "wire",
        [
          Alcotest.test_case "all frames roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "crc mismatch raises Garbage" `Quick
            test_wire_crc_garbage;
          Alcotest.test_case "unknown tag / trailing bytes" `Quick
            test_wire_unknown_tag_and_trailing;
          Alcotest.test_case "timeout and closed pipes" `Quick
            test_wire_timeout_and_closed;
          Alcotest.test_case "socketpair jumbo frame (partial writes)" `Quick
            test_wire_socketpair_partial_writes;
          Alcotest.test_case "closed peer raises Closed, not SIGPIPE" `Quick
            test_wire_socketpair_closed_peer;
          Alcotest.test_case "raw frames roundtrip + corruption" `Quick
            test_wire_raw_frames;
        ] );
      ( "shards",
        [
          Alcotest.test_case "shard save/load roundtrip" `Quick
            test_shard_roundtrip;
          Alcotest.test_case "manifest roundtrip + corruption" `Quick
            test_manifest_roundtrip_and_corruption;
          Alcotest.test_case "latest_complete falls back" `Quick
            test_latest_complete_falls_back;
          Alcotest.test_case "manifest past the complete set" `Quick
            test_manifest_partial_shard_set;
          Alcotest.test_case "manifest with no shards never crashes" `Quick
            test_manifest_missing_shards_never_crash;
          Alcotest.test_case "keep=1 rotation + corrupt newest" `Quick
            test_keep1_rotation_race;
          Alcotest.test_case "async double-buffered saves land" `Quick
            test_async_checkpoint_roundtrip;
        ] );
      ( "population",
        [
          Alcotest.test_case "extinction guard resets walker state" `Quick
            test_branch_extinction_resets_state;
          Alcotest.test_case "branch copies capped at 4" `Quick
            test_branch_copy_cap;
          Alcotest.test_case "branching factor clamped to exp(±2)" `Quick
            test_dmc_weight_clamp;
          Alcotest.test_case "load_balance uneven splits" `Quick
            test_load_balance_uneven;
          Alcotest.test_case "give/absorb preserve order" `Quick
            test_give_absorb_order;
          Alcotest.test_case "plan conserves and levels" `Quick
            test_plan_properties;
          Alcotest.test_case "exchange really moves walkers" `Quick
            test_exchange_moves_walkers;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "run_local is deterministic" `Quick
            test_run_local_deterministic;
          Alcotest.test_case "forked == local, bit for bit" `Quick
            test_forked_matches_local_bit_for_bit;
          Alcotest.test_case "SIGKILL mid-run: shard recovery" `Quick
            test_kill_recovery_from_shard;
          Alcotest.test_case "stall trips the heartbeat" `Quick
            test_stall_trips_heartbeat;
          Alcotest.test_case "garbage frame detected + respawn" `Quick
            test_garbage_frame_detected;
          Alcotest.test_case "respawn budget exhausted: degrade" `Quick
            test_unrecoverable_degrades;
          Alcotest.test_case "restore resumes every rank" `Quick
            test_restore_resumes_all_ranks;
        ] );
      ( "elastic",
        [
          Alcotest.test_case "local grow + shrink conserves walkers" `Quick
            test_membership_grow_shrink_local;
          Alcotest.test_case "elastic on, no events: still bit-identical"
            `Quick test_elastic_forked_matches_local_no_events;
          Alcotest.test_case "join + leave: forked == local, bit for bit"
            `Quick test_membership_forked_matches_local;
          Alcotest.test_case "abandoned slot refilled by a later join" `Quick
            test_drain_refill_degraded_reversible;
          Alcotest.test_case "straggler policy: warn" `Quick
            test_straggler_warn_counts;
          Alcotest.test_case "straggler policy: steal" `Quick
            test_straggler_steal_sheds_walkers;
          Alcotest.test_case "chaos plans are deterministic" `Quick
            test_chaos_plan_deterministic;
        ] );
    ]
