open Oqmc_particle
open Oqmc_core
open Oqmc_workloads
open Oqmc_rng
open Oqmc_dist

(* Supervised multi-rank execution: the wire protocol, the walker codec,
   sharded checkpoints with a manifest, real walker exchange, and the
   headline robustness guarantees — fault-free forked runs bit-identical
   to the in-process reference, and crash/stall/garbage recovery with
   finite estimators throughout. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))

let tmpdir () =
  let f = Filename.temp_file "oqmc_dist" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

(* A small interacting system whose engine exercises real buffers. *)
let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 ()
let factory = Build.factory ~variant:Variant.Current_f64 ~seed:500 sys

let mk_walkers ?(seed = 41) n_walkers =
  let e = Build.engine ~variant:Variant.Current_f64 ~seed:40 sys in
  let rng = Xoshiro.create seed in
  List.init n_walkers (fun i ->
      let w = Walker.create 8 in
      e.Engine_api.randomize rng;
      e.Engine_api.register_walker w;
      w.Walker.weight <- 0.5 +. Xoshiro.uniform rng;
      w.Walker.age <- i;
      w.Walker.e_local <- e.Engine_api.measure ();
      w)

(* ---------- walker wire codec ---------- *)

let encode_one w =
  let buf = Buffer.create 256 in
  Walker.encode buf w;
  Buffer.contents buf

let test_codec_bit_exact () =
  List.iter
    (fun w ->
      let s = encode_one w in
      let pos = ref 0 in
      let w' = Walker.decode s pos in
      check_int "consumed everything" (String.length s) !pos;
      check_bool "weight bits" true
        (Int64.bits_of_float w.Walker.weight
        = Int64.bits_of_float w'.Walker.weight);
      check_bool "log_psi bits" true
        (Int64.bits_of_float w.Walker.log_psi
        = Int64.bits_of_float w'.Walker.log_psi);
      check_bool "e_local bits" true
        (Int64.bits_of_float w.Walker.e_local
        = Int64.bits_of_float w'.Walker.e_local);
      check_int "multiplicity" w.Walker.multiplicity w'.Walker.multiplicity;
      check_int "age" w.Walker.age w'.Walker.age;
      check_bool "fresh id" true (w.Walker.id <> w'.Walker.id);
      (* The full state (positions + buffer) roundtrips bit-exactly iff
         re-encoding yields the same bytes. *)
      check_bool "re-encode identical" true (encode_one w' = s))
    (mk_walkers 4)

let test_codec_rejects_malformed () =
  let w = List.hd (mk_walkers 1) in
  let s = encode_one w in
  check_bool "truncated input rejected" true
    (match Walker.decode (String.sub s 0 (String.length s / 2)) (ref 0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- wire protocol framing ---------- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let roundtrip msg =
  with_pipe (fun r w ->
      Wire.send w msg;
      Wire.recv ~timeout:5. r)

let test_wire_roundtrip () =
  let walkers = mk_walkers 3 in
  let msgs =
    [
      Wire.Hello { rank = 3; pid = 4242 };
      Wire.Init { count = 17 };
      Wire.Heartbeat { gen = 9 };
      Wire.Begin_gen { gen = 12; e_trial = -1.234567890123 };
      Wire.Reduce
        {
          gen = 12;
          wsum = 3.5;
          esum = -4.25;
          acc = 100;
          prop = 160;
          n = 7;
          telemetry = [];
        };
      Wire.Reduce
        {
          gen = 13;
          wsum = 1.;
          esum = 0.;
          acc = 1;
          prop = 2;
          n = 1;
          telemetry =
            [ ('c', "dmc.accepted", 42.); ('g', "dmc.e_trial", -0.5) ];
        };
      Wire.Branch { gen = 12 };
      Wire.Count { gen = 12; n = 5 };
      Wire.Give { gen = 12; count = 2 };
      Wire.Checkpoint_cmd { gen = 24; e_trial = 0.5 };
      Wire.Ack { gen = 24; ok = true };
      Wire.Ack { gen = 24; ok = false };
      Wire.Finish;
    ]
  in
  List.iter
    (fun m -> check_bool "scalar roundtrip" true (roundtrip m = m))
    msgs;
  (match roundtrip (Wire.Walkers { gen = 3; walkers }) with
  | Wire.Walkers { gen = 3; walkers = ws } ->
      check_int "walker batch size" 3 (List.length ws);
      List.iter2
        (fun a b -> check_bool "batch bit-exact" true (encode_one a = encode_one b))
        walkers ws
  | _ -> Alcotest.fail "wrong message");
  match
    roundtrip (Wire.Final { acc = 7; prop = 11; walkers; trace = "blob" })
  with
  | Wire.Final { acc = 7; prop = 11; walkers = ws; trace = "blob" } ->
      check_int "final batch size" 3 (List.length ws)
  | _ -> Alcotest.fail "wrong message"

let test_wire_crc_garbage () =
  with_pipe (fun r w ->
      Wire.send_corrupt w;
      match Wire.recv ~timeout:5. r with
      | _ -> Alcotest.fail "corrupt frame was accepted"
      | exception Wire.Garbage _ -> ())

let test_wire_unknown_tag_and_trailing () =
  (* Hand-craft a frame with a valid CRC but an unknown tag, and one
     with trailing bytes after a valid payload. *)
  let frame body =
    let buf = Buffer.create 32 in
    Buffer.add_int32_be buf (Int32.of_int (String.length body));
    Buffer.add_string buf body;
    Buffer.add_int32_be buf (Int32.of_int (Checkpoint.crc32 body));
    Buffer.to_bytes buf
  in
  let send_raw body =
    with_pipe (fun r w ->
        let fb = frame body in
        ignore (Unix.write w fb 0 (Bytes.length fb));
        Wire.recv ~timeout:5. r)
  in
  (match send_raw "\xFF" with
  | _ -> Alcotest.fail "unknown tag accepted"
  | exception Wire.Garbage _ -> ());
  (* Heartbeat (tag 2) + gen + one stray byte. *)
  match send_raw "\x02\x00\x00\x00\x07Z" with
  | _ -> Alcotest.fail "trailing bytes accepted"
  | exception Wire.Garbage _ -> ()

let test_wire_timeout_and_closed () =
  with_pipe (fun r _w ->
      let t0 = Unix.gettimeofday () in
      (match Wire.recv ~timeout:0.1 r with
      | _ -> Alcotest.fail "read from silent pipe succeeded"
      | exception Wire.Timeout -> ());
      check_bool "deadline honored" true (Unix.gettimeofday () -. t0 < 2.));
  let r, w = Unix.pipe () in
  Unix.close w;
  Fun.protect
    ~finally:(fun () -> try Unix.close r with Unix.Unix_error _ -> ())
    (fun () ->
      match Wire.recv ~timeout:1. r with
      | _ -> Alcotest.fail "read from closed pipe succeeded"
      | exception Wire.Closed -> ())

(* ---------- sharded checkpoints + manifest ---------- *)

let test_shard_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let walkers = mk_walkers 3 in
  Checkpoint.save_shard ~path ~rank:2 ~gen:40 ~e_trial:(-0.75) walkers;
  let e_trial, restored = Checkpoint.load_shard ~path ~rank:2 ~gen:40 in
  checkf 0. "e_trial" (-0.75) e_trial;
  check_int "count" 3 (List.length restored);
  let gen, (e_trial', _) = Checkpoint.load_latest_shard ~path ~rank:2 in
  check_int "latest gen" 40 gen;
  checkf 0. "latest e_trial" (-0.75) e_trial'

let test_manifest_roundtrip_and_corruption () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  Checkpoint.save_manifest ~path ~gen:30 ~ranks:[ 0; 1; 3 ] ();
  let gen, ranks = Checkpoint.load_manifest ~path in
  check_int "gen" 30 gen;
  Alcotest.(check (list int)) "ranks" [ 0; 1; 3 ] ranks;
  Fault.garble_file ~path:(Checkpoint.manifest_path ~path) ~seed:9;
  check_bool "corrupt manifest rejected" true
    (match Checkpoint.load_manifest ~path with
    | _ -> false
    | exception Checkpoint.Corrupt _ -> true)

let test_latest_complete_falls_back () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let walkers = mk_walkers 2 in
  List.iter
    (fun gen ->
      Checkpoint.save_shard ~path ~rank:0 ~gen ~e_trial:(-1.) walkers;
      Checkpoint.save_shard ~path ~rank:1 ~gen ~e_trial:(-1.) walkers)
    [ 10; 20 ];
  check_bool "newest complete" true
    (Checkpoint.latest_complete ~path ~ranks:2 = Some 20);
  (* Corrupt rank 1's newest shard: the complete set falls back to 10. *)
  Fault.garble_file
    ~path:(Checkpoint.shard_path ~path ~rank:1 ^ Printf.sprintf ".gen-%d" 20)
    ~seed:7;
  check_bool "falls back past corrupt shard" true
    (Checkpoint.latest_complete ~path ~ranks:2 = Some 10);
  check_bool "no complete set for 3 ranks" true
    (Checkpoint.latest_complete ~path ~ranks:3 = None)

(* ---------- population: branching + exchange (satellite coverage) ---- *)

let unit_walkers n = List.init n (fun _ -> Walker.create 2)

let test_branch_extinction_resets_state () =
  let w = Walker.create 2 in
  w.Walker.weight <- 1e-12;
  w.Walker.multiplicity <- 3;
  w.Walker.age <- 57;
  let pop = Population.create ~target:4 ~e_trial:0. [ w ] in
  let rng = Xoshiro.create 123 in
  Population.branch pop rng;
  check_int "never extinct" 1 (Population.size pop);
  let s = List.hd (Population.walkers pop) in
  checkf 0. "unit weight" 1. s.Walker.weight;
  check_int "unit multiplicity" 1 s.Walker.multiplicity;
  check_int "age reset" 0 s.Walker.age;
  check_bool "fresh clone, not the dead walker" true (s.Walker.id <> w.Walker.id)

let test_branch_copy_cap () =
  let w = Walker.create 2 in
  w.Walker.weight <- 100.;
  let pop = Population.create ~target:4 ~e_trial:0. [ w ] in
  Population.branch pop (Xoshiro.create 5);
  check_int "copies capped at 4" 4 (Population.size pop);
  List.iter
    (fun s -> checkf 0. "copies are unit weight" 1. s.Walker.weight)
    (Population.walkers pop)

let test_dmc_weight_clamp () =
  let w = Walker.create 2 in
  w.Walker.weight <- 1.;
  (* A pathological configuration: the raw branching exponent is ±1000,
     but the factor must stay within exp(±2). *)
  Population.dmc_weight ~tau:1. ~e_trial:1000. ~e_old:0. ~e_new:0. w;
  checkf 1e-12 "clamped up" (exp 2.) w.Walker.weight;
  w.Walker.weight <- 1.;
  Population.dmc_weight ~tau:1. ~e_trial:(-1000.) ~e_old:0. ~e_new:0. w;
  checkf 1e-12 "clamped down" (exp (-2.)) w.Walker.weight

let test_load_balance_uneven () =
  let pop = Population.create ~target:8 ~e_trial:0. (unit_walkers 10) in
  let r1 = Population.load_balance pop ~ranks:1 in
  check_int "1 rank moves nothing" 0 r1.Population.messages;
  checkf 0. "1 rank is balanced" 0. r1.Population.imbalance;
  let r3 = Population.load_balance pop ~ranks:3 in
  (* Round-robin over 3 ranks puts 4,3,3 — ideal is 4,3,3: no moves. *)
  check_int "already ideal" 0 r3.Population.messages;
  let pop7 = Population.create ~target:8 ~e_trial:0. (unit_walkers 7) in
  let r4 = Population.load_balance pop7 ~ranks:4 in
  check_bool "uneven split reports imbalance" true
    (r4.Population.imbalance >= 0.);
  check_bool "ranks < 1 rejected" true
    (match Population.load_balance pop ~ranks:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_give_absorb_order () =
  let ws = unit_walkers 5 in
  let pop = Population.create ~target:4 ~e_trial:0. ws in
  let given = Population.give pop 2 in
  check_int "gave 2" 2 (List.length given);
  check_int "kept 3" 3 (Population.size pop);
  (* give takes the LAST walkers, preserving order on both sides. *)
  Alcotest.(check (list int))
    "given are the tail, in order"
    (List.map (fun w -> w.Walker.id) (List.filteri (fun i _ -> i >= 3) ws))
    (List.map (fun w -> w.Walker.id) given);
  Alcotest.(check (list int))
    "kept are the head, in order"
    (List.map (fun w -> w.Walker.id) (List.filteri (fun i _ -> i < 3) ws))
    (List.map (fun w -> w.Walker.id) (Population.walkers pop));
  check_int "give clamps to size" 3 (List.length (Population.give pop 99));
  check_int "empty after over-give" 0 (Population.size pop);
  Population.absorb pop given;
  check_int "absorb appends" 2 (Population.size pop);
  check_bool "negative give rejected" true
    (match Population.give pop (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_plan_properties () =
  check_int "balanced needs no moves" 0
    (List.length (Population.plan [| 3; 3; 3 |]));
  let check_plan counts =
    let counts = Array.of_list counts in
    let k = Array.length counts in
    let total = Array.fold_left ( + ) 0 counts in
    let after = Array.copy counts in
    List.iter
      (fun { Population.src; dst; count } ->
        check_bool "positive move" true (count > 0);
        check_bool "src has the walkers" true (after.(src) >= count);
        after.(src) <- after.(src) - count;
        after.(dst) <- after.(dst) + count)
      (Population.plan counts);
    check_int "walkers conserved" total (Array.fold_left ( + ) 0 after);
    let per = total / k and extra = total mod k in
    Array.iteri
      (fun i c -> check_int "ideal split reached" (per + if i < extra then 1 else 0) c)
      after
  in
  List.iter check_plan
    [ [ 7; 1; 4 ]; [ 0; 0; 9 ]; [ 1; 2; 3; 4; 5 ]; [ 10 ]; [ 2; 2; 3 ] ]

let test_exchange_moves_walkers () =
  let shards =
    [| unit_walkers 8; unit_walkers 1; unit_walkers 3 |]
    |> Array.map (fun ws -> Population.create ~target:4 ~e_trial:0. ws)
  in
  let all_ids =
    Array.to_list shards
    |> List.concat_map (fun s ->
           List.map (fun w -> w.Walker.id) (Population.walkers s))
    |> List.sort compare
  in
  let report = Population.exchange shards in
  check_int "sizes leveled: shard 0" 4 (Population.size shards.(0));
  check_int "sizes leveled: shard 1" 4 (Population.size shards.(1));
  check_int "sizes leveled: shard 2" 4 (Population.size shards.(2));
  check_int "messages = walkers moved" 4 report.Population.messages;
  check_bool "bytes accounted" true (report.Population.bytes > 0);
  let all_ids' =
    Array.to_list shards
    |> List.concat_map (fun s ->
           List.map (fun w -> w.Walker.id) (Population.walkers s))
    |> List.sort compare
  in
  Alcotest.(check (list int)) "same physical walkers" all_ids all_ids'

(* ---------- supervised execution ---------- *)

let base_params =
  {
    Supervisor.default_params with
    ranks = 3;
    target_walkers = 9;
    warmup = 3;
    generations = 10;
    tau = 0.02;
    seed = 77;
    n_domains = 1;
    heartbeat_s = 30.;
    respawn_backoff = 0.01;
  }

let finite x = Float.is_finite x

let assert_healthy name (res : Supervisor.result) =
  check_bool (name ^ ": finite energy") true (finite res.Supervisor.energy);
  check_bool (name ^ ": finite error") true
    (finite res.Supervisor.energy_error);
  check_bool (name ^ ": finite e_trial") true
    (finite res.Supervisor.final_e_trial);
  Array.iter
    (fun e -> check_bool (name ^ ": finite series") true (finite e))
    res.Supervisor.energy_series;
  let target = float_of_int base_params.Supervisor.target_walkers in
  check_bool (name ^ ": population within control bounds") true
    (res.Supervisor.mean_population > target /. 3.
    && res.Supervisor.mean_population < target *. 3.);
  check_bool (name ^ ": final ensemble alive") true
    (List.length res.Supervisor.final_walkers > 0)

let same_series a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let test_run_local_deterministic () =
  let r1 = Supervisor.run_local ~factory base_params in
  let r2 = Supervisor.run_local ~factory base_params in
  check_bool "energy series bit-identical" true
    (same_series r1.Supervisor.energy_series r2.Supervisor.energy_series);
  check_bool "e_trial bit-identical" true
    (Int64.bits_of_float r1.Supervisor.final_e_trial
    = Int64.bits_of_float r2.Supervisor.final_e_trial);
  check_int "comm identical" r1.Supervisor.comm_messages
    r2.Supervisor.comm_messages;
  assert_healthy "local" r1

let test_forked_matches_local_bit_for_bit () =
  let local = Supervisor.run_local ~factory base_params in
  let forked = Supervisor.run ~factory base_params in
  check_bool "energy series bit-identical" true
    (same_series local.Supervisor.energy_series
       forked.Supervisor.energy_series);
  check_bool "final e_trial bit-identical" true
    (Int64.bits_of_float local.Supervisor.final_e_trial
    = Int64.bits_of_float forked.Supervisor.final_e_trial);
  Alcotest.(check (array int))
    "population series identical" local.Supervisor.population_series
    forked.Supervisor.population_series;
  check_int "exchange messages identical" local.Supervisor.comm_messages
    forked.Supervisor.comm_messages;
  check_int "exchange bytes identical" local.Supervisor.comm_bytes
    forked.Supervisor.comm_bytes;
  checkf 0. "acceptance identical" local.Supervisor.acceptance
    forked.Supervisor.acceptance;
  check_int "final ensemble same size"
    (List.length local.Supervisor.final_walkers)
    (List.length forked.Supervisor.final_walkers);
  check_int "no faults: clean counters" 0
    (forked.Supervisor.respawns + forked.Supervisor.crashes
   + forked.Supervisor.heartbeat_timeouts + forked.Supervisor.garbage_frames);
  check_int "no degraded generations" 0 forked.Supervisor.degraded_generations

(* The acceptance scenario: 4 ranks, one SIGKILLed mid-run, recovered
   from its checkpoint shard; the run completes with finite estimators
   and the population under control. *)
let test_kill_recovery_from_shard () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let p =
    {
      base_params with
      Supervisor.ranks = 4;
      target_walkers = 12;
      generations = 12;
      checkpoint = Some path;
      checkpoint_every = 3;
      faults = [ (2, 8, Fault.Rank_kill) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "one crash detected" 1 res.Supervisor.crashes;
  check_int "one respawn" 1 res.Supervisor.respawns;
  check_int "no rank permanently lost" 4 res.Supervisor.live_ranks;
  Alcotest.(check (list int)) "no ranks failed" [] res.Supervisor.ranks_failed;
  check_bool "the killed generation ran degraded" true
    (res.Supervisor.degraded_generations >= 1);
  assert_healthy "kill-recovery" res;
  check_bool "shards + manifest on disk" true
    (Checkpoint.latest_complete ~path ~ranks:4 <> None)

let test_stall_trips_heartbeat () =
  let p =
    {
      base_params with
      Supervisor.heartbeat_s = 0.25;
      generations = 8;
      faults = [ (1, 4, Fault.Rank_stall 3.0) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "stall detected by deadline" 1 res.Supervisor.heartbeat_timeouts;
  check_int "stalled rank respawned" 1 res.Supervisor.respawns;
  check_int "all ranks live at the end" 3 res.Supervisor.live_ranks;
  assert_healthy "stall-recovery" res

let test_garbage_frame_detected () =
  let p =
    {
      base_params with
      Supervisor.generations = 8;
      faults = [ (0, 3, Fault.Rank_garbage) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "garbage frame detected" 1 res.Supervisor.garbage_frames;
  check_int "corrupted rank respawned" 1 res.Supervisor.respawns;
  assert_healthy "garbage-recovery" res

let test_unrecoverable_degrades () =
  let p =
    {
      base_params with
      Supervisor.ranks = 3;
      max_respawn = 0;
      generations = 10;
      faults = [ (1, 5, Fault.Rank_kill) ];
    }
  in
  let res = Supervisor.run ~factory p in
  check_int "rank abandoned" 2 res.Supervisor.live_ranks;
  Alcotest.(check (list int)) "rank 1 lost" [ 1 ] res.Supervisor.ranks_failed;
  check_int "no respawns granted" 0 res.Supervisor.respawns;
  check_bool "remaining generations degraded" true
    (res.Supervisor.degraded_generations >= 5);
  assert_healthy "degraded" res

let test_restore_resumes_all_ranks () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let p1 =
    {
      base_params with
      Supervisor.generations = 6;
      checkpoint = Some path;
      checkpoint_every = 2;
    }
  in
  let r1 = Supervisor.run ~factory p1 in
  let gen = Checkpoint.latest_complete ~path ~ranks:3 in
  check_bool "complete shard set written" true (gen <> None);
  let p2 = { p1 with Supervisor.restore = true; warmup = 0; generations = 4 } in
  let r2 = Supervisor.run ~factory p2 in
  assert_healthy "restored" r2;
  check_bool "restored run continues from the shards" true
    (List.length r2.Supervisor.final_walkers > 0);
  ignore r1

let () =
  Alcotest.run "dist"
    [
      ( "codec",
        [
          Alcotest.test_case "walker roundtrip is bit-exact" `Quick
            test_codec_bit_exact;
          Alcotest.test_case "malformed input rejected" `Quick
            test_codec_rejects_malformed;
        ] );
      ( "wire",
        [
          Alcotest.test_case "all frames roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "crc mismatch raises Garbage" `Quick
            test_wire_crc_garbage;
          Alcotest.test_case "unknown tag / trailing bytes" `Quick
            test_wire_unknown_tag_and_trailing;
          Alcotest.test_case "timeout and closed pipes" `Quick
            test_wire_timeout_and_closed;
        ] );
      ( "shards",
        [
          Alcotest.test_case "shard save/load roundtrip" `Quick
            test_shard_roundtrip;
          Alcotest.test_case "manifest roundtrip + corruption" `Quick
            test_manifest_roundtrip_and_corruption;
          Alcotest.test_case "latest_complete falls back" `Quick
            test_latest_complete_falls_back;
        ] );
      ( "population",
        [
          Alcotest.test_case "extinction guard resets walker state" `Quick
            test_branch_extinction_resets_state;
          Alcotest.test_case "branch copies capped at 4" `Quick
            test_branch_copy_cap;
          Alcotest.test_case "branching factor clamped to exp(±2)" `Quick
            test_dmc_weight_clamp;
          Alcotest.test_case "load_balance uneven splits" `Quick
            test_load_balance_uneven;
          Alcotest.test_case "give/absorb preserve order" `Quick
            test_give_absorb_order;
          Alcotest.test_case "plan conserves and levels" `Quick
            test_plan_properties;
          Alcotest.test_case "exchange really moves walkers" `Quick
            test_exchange_moves_walkers;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "run_local is deterministic" `Quick
            test_run_local_deterministic;
          Alcotest.test_case "forked == local, bit for bit" `Quick
            test_forked_matches_local_bit_for_bit;
          Alcotest.test_case "SIGKILL mid-run: shard recovery" `Quick
            test_kill_recovery_from_shard;
          Alcotest.test_case "stall trips the heartbeat" `Quick
            test_stall_trips_heartbeat;
          Alcotest.test_case "garbage frame detected + respawn" `Quick
            test_garbage_frame_detected;
          Alcotest.test_case "respawn budget exhausted: degrade" `Quick
            test_unrecoverable_degrades;
          Alcotest.test_case "restore resumes every rank" `Quick
            test_restore_resumes_all_ranks;
        ] );
    ]
