open Oqmc_containers
open Oqmc_particle
open Oqmc_rng

module Ps = Particle_set.Make (Precision.F64)
module AAref = Dt_aa_ref.Make (Precision.F64)
module AAfwd = Dt_aa_forward.Make (Precision.F64)
module AAsoa = Dt_aa_soa.Make (Precision.F64) (Precision.F64)
module ABref = Dt_ab_ref.Make (Precision.F64)
module ABsoa = Dt_ab_soa.Make (Precision.F64) (Precision.F64)

let check_bool = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

let electrons ~lattice n = Ps.create ~lattice [ { Particle_set.name = "e"; charge = -1.; count = n } ]

let random_ps ~lattice ~seed n =
  let ps = electrons ~lattice n in
  let rng = Xoshiro.create seed in
  Ps.randomize ps (fun () -> Xoshiro.uniform rng);
  (ps, rng)

(* ---------- lattice ---------- *)

let test_lattice_frac_roundtrip () =
  let l = Lattice.orthorhombic 3. 4. 5. in
  let r = Vec3.make 1.2 (-0.7) 9.9 in
  let s = Lattice.to_frac l r in
  check_bool "roundtrip" true (Vec3.equal ~tol:1e-12 r (Lattice.to_cart l s))

let test_lattice_general_roundtrip () =
  (* Hexagonal (graphite-like) cell. *)
  let a = 2.46 and c = 6.7 in
  let l =
    Lattice.general
      [|
        Vec3.make a 0. 0.;
        Vec3.make (-.a /. 2.) (a *. sqrt 3. /. 2.) 0.;
        Vec3.make 0. 0. c;
      |]
  in
  let r = Vec3.make 0.3 1.1 2.2 in
  let s = Lattice.to_frac l r in
  check_bool "roundtrip" true (Vec3.equal ~tol:1e-12 r (Lattice.to_cart l s));
  checkf 1e-10 "volume" (a *. (a *. sqrt 3. /. 2.) *. c) (Lattice.volume l)

let test_min_image_ortho () =
  let l = Lattice.cubic 10. in
  let d = Lattice.min_image_disp l (Vec3.make 9. 0. 0.) in
  checkf 1e-12 "wraps" (-1.) d.Vec3.x;
  let d2 = Lattice.min_image_disp l (Vec3.make 4.9 (-5.1) 20.) in
  checkf 1e-12 "x stays" 4.9 d2.Vec3.x;
  checkf 1e-12 "y wraps" 4.9 d2.Vec3.y;
  checkf 1e-12 "z multi-cell" 0. d2.Vec3.z

let test_min_image_general_matches_ortho () =
  (* A cube expressed as a general cell must agree with the fast path. *)
  let lo = Lattice.cubic 7. in
  let lg =
    Lattice.general
      [| Vec3.make 7. 0. 0.; Vec3.make 0. 7. 0.; Vec3.make 0. 0. 7. |]
  in
  let rng = Xoshiro.create 1 in
  for _ = 1 to 200 do
    let dr =
      Vec3.make
        (Xoshiro.uniform_range rng ~lo:(-20.) ~hi:20.)
        (Xoshiro.uniform_range rng ~lo:(-20.) ~hi:20.)
        (Xoshiro.uniform_range rng ~lo:(-20.) ~hi:20.)
    in
    let a = Lattice.min_image_disp lo dr and b = Lattice.min_image_disp lg dr in
    checkf 1e-9 "same norm" (Vec3.norm a) (Vec3.norm b)
  done

let test_min_image_shortest () =
  (* The minimum-image displacement is never longer than any image. *)
  let l =
    Lattice.general
      [|
        Vec3.make 3. 0. 0.; Vec3.make 1. 3. 0.; Vec3.make 0.5 0.4 3.;
      |]
  in
  let rng = Xoshiro.create 2 in
  let vs = Lattice.vectors l in
  for _ = 1 to 100 do
    let dr =
      Vec3.make
        (Xoshiro.uniform_range rng ~lo:(-5.) ~hi:5.)
        (Xoshiro.uniform_range rng ~lo:(-5.) ~hi:5.)
        (Xoshiro.uniform_range rng ~lo:(-5.) ~hi:5.)
    in
    let m = Lattice.min_image_disp l dr in
    for i = -1 to 1 do
      for j = -1 to 1 do
        for k = -1 to 1 do
          let img =
            Vec3.add dr
              (Vec3.add
                 (Vec3.scale (float_of_int i) vs.(0))
                 (Vec3.add
                    (Vec3.scale (float_of_int j) vs.(1))
                    (Vec3.scale (float_of_int k) vs.(2))))
          in
          check_bool "min image shortest" true
            (Vec3.norm m <= Vec3.norm img +. 1e-9)
        done
      done
    done
  done

let test_wigner_seitz () =
  checkf 1e-12 "cubic" 3.5 (Lattice.wigner_seitz_radius (Lattice.cubic 7.));
  checkf 1e-12 "ortho" 1.5
    (Lattice.wigner_seitz_radius (Lattice.orthorhombic 3. 8. 9.));
  check_bool "open infinite" true
    (Lattice.wigner_seitz_radius Lattice.open_cell = infinity)

let test_wrap_position () =
  let l = Lattice.cubic 4. in
  let w = Lattice.wrap_position l (Vec3.make 5. (-1.) 8.5 ) in
  checkf 1e-12 "x" 1. w.Vec3.x;
  checkf 1e-12 "y" 3. w.Vec3.y;
  checkf 1e-12 "z" 0.5 w.Vec3.z

(* ---------- particle set ---------- *)

let test_ps_species () =
  let l = Lattice.cubic 5. in
  let ps =
    Ps.create ~lattice:l
      [
        { Particle_set.name = "u"; charge = -1.; count = 3 };
        { Particle_set.name = "d"; charge = -1.; count = 2 };
      ]
  in
  Alcotest.(check int) "n" 5 (Ps.n ps);
  Alcotest.(check int) "species of 2" 0 (Ps.species_index ps 2);
  Alcotest.(check int) "species of 3" 1 (Ps.species_index ps 3);
  Alcotest.(check string) "name" "d" (Ps.species_of ps 4).Particle_set.name;
  Alcotest.(check (option int)) "first d" (Some 3) (Ps.first_of_species ps 1)

let test_ps_move_protocol () =
  let ps, _ = random_ps ~lattice:(Lattice.cubic 5.) ~seed:3 4 in
  let orig = Ps.get ps 2 in
  let newpos = Vec3.make 1. 2. 3. in
  Ps.propose ps 2 newpos;
  check_bool "containers untouched" true (Vec3.equal orig (Ps.get ps 2));
  Ps.reject ps;
  Alcotest.(check int) "no active" (-1) (Ps.active ps);
  Ps.propose ps 2 newpos;
  Ps.accept ps;
  check_bool "aos updated" true (Vec3.equal newpos (Ps.get ps 2));
  check_bool "soa updated" true (Vec3.equal newpos (Ps.Vs.get (Ps.soa ps) 2))

let test_ps_walker_roundtrip () =
  let ps, _ = random_ps ~lattice:(Lattice.cubic 5.) ~seed:4 6 in
  let w = Walker.create 6 in
  Ps.store_walker ps w;
  let ps2 = electrons ~lattice:(Lattice.cubic 5.) 6 in
  Ps.load_walker ps2 w;
  for i = 0 to 5 do
    check_bool "positions transferred" true
      (Vec3.equal (Ps.get ps i) (Ps.get ps2 i));
    check_bool "soa synced" true
      (Vec3.equal (Ps.get ps i) (Ps.Vs.get (Ps.soa ps2) i))
  done

let test_ps_accept_requires_active () =
  let ps, _ = random_ps ~lattice:(Lattice.cubic 5.) ~seed:5 3 in
  Alcotest.check_raises "no active"
    (Invalid_argument "Particle_set.accept: no active move") (fun () ->
      Ps.accept ps)

(* ---------- walker ---------- *)

let test_walker_copy () =
  let w = Walker.create 3 in
  w.Walker.weight <- 0.7;
  Walker.Aos.set w.Walker.r 0 (Vec3.make 1. 1. 1.);
  let c = Walker.copy w in
  check_bool "distinct ids" true (c.Walker.id <> w.Walker.id);
  Walker.Aos.set c.Walker.r 0 (Vec3.make 2. 2. 2.);
  check_bool "deep copy" true
    (Vec3.equal (Walker.Aos.get w.Walker.r 0) (Vec3.make 1. 1. 1.));
  checkf 1e-12 "weight copied" 0.7 c.Walker.weight

(* ---------- distance tables ---------- *)

let brute_dist lattice ps i j =
  Lattice.min_image_dist lattice (Ps.get ps i) (Ps.get ps j)

let test_aa_tables_agree () =
  let lattice = Lattice.cubic 6. in
  let ps, _ = random_ps ~lattice ~seed:6 12 in
  let tref = AAref.create ps and tsoa = AAsoa.create ps in
  AAref.evaluate tref ps;
  AAsoa.evaluate tsoa ps;
  for i = 0 to 11 do
    for j = 0 to 11 do
      if i <> j then begin
        let expect = brute_dist lattice ps i j in
        checkf 1e-9 "ref dist" expect (AAref.dist tref i j);
        checkf 1e-9 "soa dist" expect (AAsoa.dist tsoa i j);
        (* Displacement conventions: ref displ i j = r_j − r_i;
           soa row k entry i = r_i − r_k. *)
        check_bool "displacements opposite" true
          (Vec3.equal ~tol:1e-9 (AAref.displ tref i j) (AAsoa.displ tsoa i j))
      end
    done
  done

let test_aa_move_accept_cycle () =
  let lattice = Lattice.cubic 6. in
  let ps, rng = random_ps ~lattice ~seed:7 10 in
  let tref = AAref.create ps and tsoa = AAsoa.create ps in
  AAref.evaluate tref ps;
  AAsoa.evaluate tsoa ps;
  (* A PbyP sweep with mixed accepts and rejects. *)
  for k = 0 to 9 do
    let p = Ps.get ps k in
    let newpos =
      Vec3.add p
        (Vec3.make (Xoshiro.gaussian rng) (Xoshiro.gaussian rng)
           (Xoshiro.gaussian rng))
    in
    AAref.move tref ps k newpos;
    AAsoa.move tsoa ps k newpos;
    (* Temp rows agree between layouts. *)
    for i = 0 to 9 do
      if i <> k then
        checkf 1e-9 "temp dist"
          (Lattice.min_image_dist lattice newpos (Ps.get ps i))
          (AAsoa.A.get (AAsoa.temp_dist tsoa) i)
    done;
    if k mod 2 = 0 then begin
      Ps.propose ps k newpos;
      Ps.accept ps;
      AAref.update tref k;
      AAsoa.accept tsoa k
    end
  done;
  (* After the sweep the Ref table must match brute force everywhere. *)
  for i = 0 to 9 do
    for j = 0 to 9 do
      if i <> j then
        checkf 1e-9 "ref after sweep" (brute_dist lattice ps i j)
          (AAref.dist tref i j)
    done
  done;
  (* The SoA compute-on-the-fly table is only guaranteed per-row at move
     time; a full evaluate restores global consistency for measurements. *)
  AAsoa.evaluate tsoa ps;
  for i = 0 to 9 do
    for j = 0 to 9 do
      if i <> j then
        checkf 1e-9 "soa after evaluate" (brute_dist lattice ps i j)
          (AAsoa.dist tsoa i j)
    done
  done

let test_aa_soa_row_fresh_on_move () =
  (* Row k must be correct at move time even if other electrons moved
     since the last evaluate — the compute-on-the-fly guarantee. *)
  let lattice = Lattice.cubic 6. in
  let ps, _ = random_ps ~lattice ~seed:8 8 in
  let t = AAsoa.create ps in
  AAsoa.evaluate t ps;
  (* Move electron 0 and accept without telling the table rows 1..7. *)
  Ps.propose ps 0 (Vec3.make 0.5 0.5 0.5);
  Ps.accept ps;
  AAsoa.move t ps 0 (Vec3.make 1. 1. 1.);
  AAsoa.accept t 0;
  (* Now prepare electron 3: its refreshed row must see electron 0's new
     position. *)
  AAsoa.prepare t ps 3;
  checkf 1e-9 "row sees current positions"
    (brute_dist lattice ps 3 0)
    (AAsoa.dist t 3 0)

let ions ~lattice =
  let ps =
    Ps.create ~lattice [ { Particle_set.name = "ion"; charge = 4.; count = 4 } ]
  in
  Ps.set_all ps
    [|
      Vec3.make 0.5 0.5 0.5; Vec3.make 2. 2. 2.; Vec3.make 4. 1. 3.;
      Vec3.make 1. 4. 2.;
    |];
  ps

let test_ab_tables_agree () =
  let lattice = Lattice.cubic 6. in
  let ion_ps = ions ~lattice in
  let ps, _ = random_ps ~lattice ~seed:9 7 in
  let tref = ABref.create ~sources:ion_ps ps in
  let tsoa = ABsoa.create ~sources:ion_ps ps in
  ABref.evaluate tref ps;
  ABsoa.evaluate tsoa ps;
  for k = 0 to 6 do
    for i = 0 to 3 do
      let expect =
        Lattice.min_image_dist lattice (Ps.get ps k) (Ps.get ion_ps i)
      in
      checkf 1e-9 "ref" expect (ABref.dist tref k i);
      checkf 1e-9 "soa" expect (ABsoa.dist tsoa k i);
      check_bool "displ agree" true
        (Vec3.equal ~tol:1e-9 (ABref.displ tref k i) (ABsoa.displ tsoa k i))
    done
  done

let test_ab_move_accept () =
  let lattice = Lattice.cubic 6. in
  let ion_ps = ions ~lattice in
  let ps, _ = random_ps ~lattice ~seed:10 5 in
  let t = ABsoa.create ~sources:ion_ps ps in
  ABsoa.evaluate t ps;
  let newpos = Vec3.make 3. 3. 3. in
  ABsoa.move t newpos;
  for i = 0 to 3 do
    checkf 1e-9 "temp" (Lattice.min_image_dist lattice newpos (Ps.get ion_ps i))
      (ABsoa.A.get (ABsoa.temp_dist t) i)
  done;
  Ps.propose ps 2 newpos;
  Ps.accept ps;
  ABsoa.accept t 2;
  for i = 0 to 3 do
    checkf 1e-9 "row updated"
      (Lattice.min_image_dist lattice newpos (Ps.get ion_ps i))
      (ABsoa.dist t 2 i)
  done

(* f32 distance-row storage: the rows hold f32-rounded values but every
   distance is computed in f64 and rounded ONCE at the store, so the
   drift against the f64 table is bounded by one f32 rounding of the
   stored value — it never accumulates across a sweep of moves and
   accepts.  Two sizes shaped like the reduced NiO-32 and graphite
   electron counts. *)
module AAsoa32 = Dt_aa_soa.Make (Precision.F64) (Precision.F32)
module ABsoa32 = Dt_ab_soa.Make (Precision.F64) (Precision.F32)

let test_dt_f32_drift_bounded () =
  List.iter
    (fun (n, box, seed) ->
      let lattice = Lattice.cubic box in
      let ps, rng = random_ps ~lattice ~seed n in
      let ion_ps = ions ~lattice in
      let t64 = AAsoa.create ps and t32 = AAsoa32.create ps in
      let b64 = ABsoa.create ~sources:ion_ps ps in
      let b32 = ABsoa32.create ~sources:ion_ps ps in
      AAsoa.evaluate t64 ps;
      AAsoa32.evaluate t32 ps;
      ABsoa.evaluate b64 ps;
      ABsoa32.evaluate b32 ps;
      (* Mirrored PbyP sweep with mixed accepts and rejects. *)
      for k = 0 to n - 1 do
        let newpos =
          Vec3.add (Ps.get ps k)
            (Vec3.make
               (Xoshiro.gaussian rng *. 0.3)
               (Xoshiro.gaussian rng *. 0.3)
               (Xoshiro.gaussian rng *. 0.3))
        in
        AAsoa.move t64 ps k newpos;
        AAsoa32.move t32 ps k newpos;
        ABsoa.move b64 newpos;
        ABsoa32.move b32 newpos;
        if k mod 2 = 0 then begin
          Ps.propose ps k newpos;
          Ps.accept ps;
          AAsoa.accept t64 k;
          AAsoa32.accept t32 k;
          ABsoa.accept b64 k;
          ABsoa32.accept b32 k
        end
      done;
      AAsoa.evaluate t64 ps;
      AAsoa32.evaluate t32 ps;
      ABsoa.evaluate b64 ps;
      ABsoa32.evaluate b32 ps;
      (* One f32 rounding: relative 2^-24, so absolute ~d · 6e-8; a
         box-scaled absolute bound with slack covers it. *)
      let bound = 1e-5 *. box in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then
            check_bool "AA f32 drift bounded" true
              (abs_float (AAsoa.dist t64 i j -. AAsoa32.dist t32 i j)
              <= bound)
        done;
        for s = 0 to 3 do
          check_bool "AB f32 drift bounded" true
            (abs_float (ABsoa.dist b64 i s -. ABsoa32.dist b32 i s) <= bound)
        done
      done)
    [ (48, 7.9, 41); (32, 6.3, 42) ]

let test_tables_general_lattice () =
  (* Hexagonal cell exercises the general minimum-image path. *)
  let a = 4.6 in
  let lattice =
    Lattice.general
      [|
        Vec3.make a 0. 0.;
        Vec3.make (-.a /. 2.) (a *. sqrt 3. /. 2.) 0.;
        Vec3.make 0. 0. 6.7;
      |]
  in
  let ps, _ = random_ps ~lattice ~seed:11 9 in
  let tref = AAref.create ps and tsoa = AAsoa.create ps in
  AAref.evaluate tref ps;
  AAsoa.evaluate tsoa ps;
  for i = 0 to 8 do
    for j = 0 to 8 do
      if i <> j then
        checkf 1e-9 "hex layouts agree" (AAref.dist tref i j)
          (AAsoa.dist tsoa i j)
    done
  done

let test_aa_memory_scaling () =
  let lattice = Lattice.cubic 6. in
  let ps32, _ = random_ps ~lattice ~seed:12 32 in
  let ps64, _ = random_ps ~lattice ~seed:12 64 in
  let b32 = AAsoa.bytes (AAsoa.create ps32) in
  let b64 = AAsoa.bytes (AAsoa.create ps64) in
  (* Full-table storage grows ~4x when N doubles. *)
  check_bool "O(N^2) growth" true
    (float_of_int b64 /. float_of_int b32 > 3.4);
  (* The packed Ref triangle is about half the SoA distance storage. *)
  let ref64 = AAref.bytes (AAref.create ps64) in
  check_bool "triangle smaller" true (ref64 < b64)

let test_forward_table_sweep_invariant () =
  (* Through a full ordered sweep with mixed accepts, the pair (i,j) read
     from the larger row must always match brute force — the forward
     update's correctness invariant (Fig. 6b). *)
  let lattice = Lattice.cubic 6. in
  let ps, rng = random_ps ~lattice ~seed:21 10 in
  let t = AAfwd.create ps in
  AAfwd.evaluate t ps;
  for k = 0 to 9 do
    let newpos =
      Vec3.add (Ps.get ps k)
        (Vec3.make (Xoshiro.gaussian rng) (Xoshiro.gaussian rng)
           (Xoshiro.gaussian rng))
    in
    AAfwd.move t ps k newpos;
    if k mod 2 = 0 then begin
      Ps.propose ps k newpos;
      Ps.accept ps;
      AAfwd.update t k
    end;
    (* invariant check after every move: pairs (i,j) with max(i,j) <= k
       moved already; all pairs must read correctly from the larger row *)
    for i = 0 to 9 do
      for j = 0 to 9 do
        if i <> j then begin
          checkf 1e-9 "pair from larger row" (brute_dist lattice ps i j)
            (AAfwd.dist t i j);
          check_bool "displacement consistent" true
            (Vec3.equal ~tol:1e-9 (AAfwd.displ t i j)
               (Lattice.min_image_disp lattice
                  (Vec3.sub (Ps.get ps j) (Ps.get ps i))))
        end
      done
    done
  done

let test_forward_matches_other_layouts () =
  let lattice = Lattice.cubic 6. in
  let ps, _ = random_ps ~lattice ~seed:22 8 in
  let tf = AAfwd.create ps and ts = AAsoa.create ps in
  AAfwd.evaluate tf ps;
  AAsoa.evaluate ts ps;
  for i = 0 to 7 do
    for j = 0 to 7 do
      if i <> j then
        checkf 1e-9 "forward = soa" (AAsoa.dist ts i j) (AAfwd.dist tf i j)
    done
  done

(* ---------- crowd-batched kernels ---------- *)

(* The batched kernels must reproduce the scalar per-table protocol
   bit-for-bit: compare whole backing arrays through their IEEE bits. *)
let same_bits name (a : AAsoa.A.t) (b : AAsoa.A.t) =
  let ok = ref (AAsoa.A.length a = AAsoa.A.length b) in
  if !ok then
    for i = 0 to AAsoa.A.length a - 1 do
      if
        Int64.bits_of_float (AAsoa.A.get a i)
        <> Int64.bits_of_float (AAsoa.A.get b i)
      then ok := false
    done;
  check_bool name true !ok

let same_f64 name a b =
  check_bool name true (Int64.bits_of_float a = Int64.bits_of_float b)

(* Random per-slot moves and accept decisions shared between the batched
   and the scalar runs of one test. *)
let gauss_move rng ps k =
  Vec3.add (Ps.get ps k)
    (Vec3.make (Xoshiro.gaussian rng) (Xoshiro.gaussian rng)
       (Xoshiro.gaussian rng))

let test_aa_soa_batch_identity () =
  let lattice = Lattice.cubic 6. in
  let n = 7 and slots = 4 in
  let psb = Array.init slots (fun s -> fst (random_ps ~lattice ~seed:(100 + s) n)) in
  let pss = Array.init slots (fun s -> fst (random_ps ~lattice ~seed:(100 + s) n)) in
  let mk ps = let t = AAsoa.create ps in AAsoa.evaluate t ps; t in
  let tb = Array.map mk psb and ts = Array.map mk pss in
  let batch = AAsoa.make_batch (Array.init slots (fun s -> (tb.(s), psb.(s)))) in
  check_bool "batch cap" true (AAsoa.batch_cap batch = slots);
  check_bool "batch table" true (AAsoa.batch_table batch 0 == tb.(0));
  let rng = Xoshiro.create 5 in
  let px = Array.make slots 0.
  and py = Array.make slots 0.
  and pz = Array.make slots 0.
  and acc = Array.make slots false in
  for _sweep = 1 to 3 do
    for k = 0 to n - 1 do
      AAsoa.prepare_batch batch ~k ~m:slots;
      for s = 0 to slots - 1 do
        AAsoa.prepare ts.(s) pss.(s) k
      done;
      let newpos = Array.init slots (fun s -> gauss_move rng psb.(s) k) in
      for s = 0 to slots - 1 do
        px.(s) <- newpos.(s).Vec3.x;
        py.(s) <- newpos.(s).Vec3.y;
        pz.(s) <- newpos.(s).Vec3.z;
        acc.(s) <- Xoshiro.uniform rng < 0.6
      done;
      AAsoa.move_batch batch ~k ~px ~py ~pz ~m:slots;
      for s = 0 to slots - 1 do
        AAsoa.move ts.(s) pss.(s) k newpos.(s);
        same_bits "temp row" (AAsoa.temp_dist tb.(s)) (AAsoa.temp_dist ts.(s))
      done;
      AAsoa.accept_batch batch ~k ~acc ~m:slots;
      for s = 0 to slots - 1 do
        if acc.(s) then begin
          AAsoa.accept ts.(s) k;
          Ps.propose psb.(s) k newpos.(s);
          Ps.accept psb.(s);
          Ps.propose pss.(s) k newpos.(s);
          Ps.accept pss.(s)
        end
      done
    done
  done;
  for s = 0 to slots - 1 do
    same_bits "dist data" (AAsoa.dist_data tb.(s)) (AAsoa.dist_data ts.(s));
    same_bits "dx data" (AAsoa.dx_data tb.(s)) (AAsoa.dx_data ts.(s));
    same_bits "dy data" (AAsoa.dy_data tb.(s)) (AAsoa.dy_data ts.(s));
    same_bits "dz data" (AAsoa.dz_data tb.(s)) (AAsoa.dz_data ts.(s))
  done

let test_ab_soa_batch_identity () =
  let lattice = Lattice.cubic 6. in
  let slots = 3 and n = 6 and ni = 4 in
  let mk_ions () =
    let io =
      Ps.create ~lattice
        [ { Particle_set.name = "ion"; charge = 4.; count = ni } ]
    in
    let rng = Xoshiro.create 77 in
    Ps.randomize io (fun () -> Xoshiro.uniform rng);
    io
  in
  let psb = Array.init slots (fun s -> fst (random_ps ~lattice ~seed:(200 + s) n)) in
  let pss = Array.init slots (fun s -> fst (random_ps ~lattice ~seed:(200 + s) n)) in
  let mk ps = let t = ABsoa.create ~sources:(mk_ions ()) ps in ABsoa.evaluate t ps; t in
  let tb = Array.map mk psb and ts = Array.map mk pss in
  let batch = ABsoa.make_batch tb in
  check_bool "batch cap" true (ABsoa.batch_cap batch = slots);
  let rng = Xoshiro.create 8 in
  let px = Array.make slots 0.
  and py = Array.make slots 0.
  and pz = Array.make slots 0.
  and acc = Array.make slots false in
  for _sweep = 1 to 3 do
    for k = 0 to n - 1 do
      let newpos = Array.init slots (fun s -> gauss_move rng psb.(s) k) in
      for s = 0 to slots - 1 do
        px.(s) <- newpos.(s).Vec3.x;
        py.(s) <- newpos.(s).Vec3.y;
        pz.(s) <- newpos.(s).Vec3.z;
        acc.(s) <- Xoshiro.uniform rng < 0.6
      done;
      ABsoa.move_batch batch ~px ~py ~pz ~m:slots;
      for s = 0 to slots - 1 do
        ABsoa.move ts.(s) newpos.(s);
        same_bits "temp row" (ABsoa.temp_dist tb.(s)) (ABsoa.temp_dist ts.(s))
      done;
      ABsoa.accept_batch batch ~k ~acc ~m:slots;
      for s = 0 to slots - 1 do
        if acc.(s) then begin
          ABsoa.accept ts.(s) k;
          Ps.propose psb.(s) k newpos.(s);
          Ps.accept psb.(s);
          Ps.propose pss.(s) k newpos.(s);
          Ps.accept pss.(s)
        end
      done
    done
  done;
  for s = 0 to slots - 1 do
    same_bits "dist data" (ABsoa.dist_data tb.(s)) (ABsoa.dist_data ts.(s));
    same_bits "dx data" (ABsoa.dx_data tb.(s)) (ABsoa.dx_data ts.(s));
    same_bits "dy data" (ABsoa.dy_data tb.(s)) (ABsoa.dy_data ts.(s));
    same_bits "dz data" (ABsoa.dz_data tb.(s)) (ABsoa.dz_data ts.(s))
  done

let test_aa_forward_batch_identity () =
  let lattice = Lattice.cubic 6. in
  let n = 6 and slots = 3 in
  let psb = Array.init slots (fun s -> fst (random_ps ~lattice ~seed:(300 + s) n)) in
  let pss = Array.init slots (fun s -> fst (random_ps ~lattice ~seed:(300 + s) n)) in
  let mk ps = let t = AAfwd.create ps in AAfwd.evaluate t ps; t in
  let tb = Array.map mk psb and ts = Array.map mk pss in
  let batch = AAfwd.make_batch (Array.init slots (fun s -> (tb.(s), psb.(s)))) in
  let rng = Xoshiro.create 13 in
  let px = Array.make slots 0.
  and py = Array.make slots 0.
  and pz = Array.make slots 0.
  and acc = Array.make slots false in
  for _sweep = 1 to 3 do
    (* The forward scheme's invariant covers one ordered sweep; refresh
       both sides identically between sweeps, as the engine does. *)
    for s = 0 to slots - 1 do
      AAfwd.evaluate tb.(s) psb.(s);
      AAfwd.evaluate ts.(s) pss.(s)
    done;
    for k = 0 to n - 1 do
      let newpos = Array.init slots (fun s -> gauss_move rng psb.(s) k) in
      for s = 0 to slots - 1 do
        px.(s) <- newpos.(s).Vec3.x;
        py.(s) <- newpos.(s).Vec3.y;
        pz.(s) <- newpos.(s).Vec3.z;
        acc.(s) <- Xoshiro.uniform rng < 0.6
      done;
      AAfwd.move_batch batch ~k ~px ~py ~pz ~m:slots;
      for s = 0 to slots - 1 do
        AAfwd.move ts.(s) pss.(s) k newpos.(s);
        same_bits "temp row" (AAfwd.temp_dist tb.(s)) (AAfwd.temp_dist ts.(s))
      done;
      AAfwd.update_batch batch ~k ~acc ~m:slots;
      for s = 0 to slots - 1 do
        if acc.(s) then begin
          AAfwd.update ts.(s) k;
          Ps.propose psb.(s) k newpos.(s);
          Ps.accept psb.(s);
          Ps.propose pss.(s) k newpos.(s);
          Ps.accept pss.(s)
        end
      done;
      for s = 0 to slots - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then
              same_f64 "pair dist" (AAfwd.dist ts.(s) i j)
                (AAfwd.dist tb.(s) i j)
          done
        done
      done
    done
  done

let prop_aa_symmetry =
  QCheck.Test.make ~name:"AA distances symmetric" ~count:30
    QCheck.(int_range 1 10000)
    (fun seed ->
      let lattice = Lattice.cubic 5. in
      let ps, _ = random_ps ~lattice ~seed 8 in
      let t = AAsoa.create ps in
      AAsoa.evaluate t ps;
      let ok = ref true in
      for i = 0 to 7 do
        for j = 0 to 7 do
          if i <> j then begin
            if abs_float (AAsoa.dist t i j -. AAsoa.dist t j i) > 1e-9 then
              ok := false;
            (* dr(i,j) = −dr(j,i) *)
            if
              not
                (Vec3.equal ~tol:1e-9 (AAsoa.displ t i j)
                   (Vec3.neg (AAsoa.displ t j i)))
            then ok := false
          end
        done
      done;
      !ok)

let prop_dist_below_ws_diameter =
  QCheck.Test.make ~name:"min image dist bounded" ~count:50
    QCheck.(int_range 1 10000)
    (fun seed ->
      let lattice = Lattice.cubic 5. in
      let ps, _ = random_ps ~lattice ~seed 6 in
      let t = AAsoa.create ps in
      AAsoa.evaluate t ps;
      let ok = ref true in
      let dmax = 0.5 *. 5. *. sqrt 3. +. 1e-9 in
      for i = 0 to 5 do
        for j = 0 to 5 do
          if i <> j && AAsoa.dist t i j > dmax then ok := false
        done
      done;
      !ok)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "particle"
    [
      ( "lattice",
        [
          Alcotest.test_case "frac roundtrip" `Quick test_lattice_frac_roundtrip;
          Alcotest.test_case "general roundtrip" `Quick
            test_lattice_general_roundtrip;
          Alcotest.test_case "min image ortho" `Quick test_min_image_ortho;
          Alcotest.test_case "general matches ortho" `Quick
            test_min_image_general_matches_ortho;
          Alcotest.test_case "min image shortest" `Quick test_min_image_shortest;
          Alcotest.test_case "wigner-seitz" `Quick test_wigner_seitz;
          Alcotest.test_case "wrap position" `Quick test_wrap_position;
        ] );
      ( "particle_set",
        [
          Alcotest.test_case "species" `Quick test_ps_species;
          Alcotest.test_case "move protocol" `Quick test_ps_move_protocol;
          Alcotest.test_case "walker roundtrip" `Quick test_ps_walker_roundtrip;
          Alcotest.test_case "accept requires active" `Quick
            test_ps_accept_requires_active;
        ] );
      ("walker", [ Alcotest.test_case "copy" `Quick test_walker_copy ]);
      ( "distance_tables",
        [
          Alcotest.test_case "AA layouts agree" `Quick test_aa_tables_agree;
          Alcotest.test_case "AA move/accept cycle" `Quick
            test_aa_move_accept_cycle;
          Alcotest.test_case "AA row fresh on move" `Quick
            test_aa_soa_row_fresh_on_move;
          Alcotest.test_case "AB layouts agree" `Quick test_ab_tables_agree;
          Alcotest.test_case "AB move/accept" `Quick test_ab_move_accept;
          Alcotest.test_case "f32 rows drift bounded" `Quick
            test_dt_f32_drift_bounded;
          Alcotest.test_case "general lattice" `Quick
            test_tables_general_lattice;
          Alcotest.test_case "memory scaling" `Quick test_aa_memory_scaling;
          Alcotest.test_case "forward sweep invariant" `Quick
            test_forward_table_sweep_invariant;
          Alcotest.test_case "forward matches soa" `Quick
            test_forward_matches_other_layouts;
          Alcotest.test_case "AA batch bit-identical" `Quick
            test_aa_soa_batch_identity;
          Alcotest.test_case "AB batch bit-identical" `Quick
            test_ab_soa_batch_identity;
          Alcotest.test_case "forward batch bit-identical" `Quick
            test_aa_forward_batch_identity;
        ] );
      ("properties", qt [ prop_aa_symmetry; prop_dist_below_ws_diameter ]);
    ]
