open Oqmc_particle
open Oqmc_core
open Oqmc_workloads
open Oqmc_rng

let check_bool = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

let factory ~variant ~sys ~seed = Build.factory ~variant ~seed sys

(* ---------- exact systems: the end-to-end correctness anchor ---------- *)

let test_harmonic_zero_variance () =
  (* Ψ_T is the exact eigenfunction: E_L must equal the exact eigenvalue
     at every sampled configuration, i.e. zero variance. *)
  let n = 5 and omega = 1.3 in
  let sys = Validation.harmonic ~n ~omega in
  let exact = Validation.harmonic_exact_energy ~n ~omega in
  let res =
    Vmc.run
      ~factory:(factory ~variant:Variant.Current_f64 ~sys ~seed:1)
      {
        Vmc.default_params with
        Vmc.n_walkers = 2;
        warmup = 10;
        blocks = 4;
        steps_per_block = 10;
        tau = 0.2;
        seed = 2;
      }
  in
  checkf 1e-7 "energy exact" exact res.Vmc.energy;
  check_bool "zero variance" true (res.Vmc.variance < 1e-10);
  check_bool "moves accepted" true (res.Vmc.acceptance > 0.5)

let test_harmonic_all_variants_agree () =
  let n = 4 and omega = 0.9 in
  let sys = Validation.harmonic ~n ~omega in
  let exact = Validation.harmonic_exact_energy ~n ~omega in
  List.iter
    (fun variant ->
      let res =
        Vmc.run
          ~factory:(factory ~variant ~sys ~seed:3)
          {
            Vmc.default_params with
            Vmc.n_walkers = 1;
            warmup = 5;
            blocks = 2;
            steps_per_block = 5;
            tau = 0.2;
            seed = 4;
          }
      in
      (* Mixed precision loosens the tolerance but not the physics. *)
      let tol = 1e-3 in
      check_bool
        (Printf.sprintf "%s energy" (Variant.to_string variant))
        true
        (abs_float (res.Vmc.energy -. exact) < tol))
    Variant.all

let test_free_fermions_exact () =
  let n = 7 and box = 6.0 in
  let sys = Validation.free_fermions ~n ~box in
  let exact = Validation.free_fermions_exact_energy ~n ~box in
  let res =
    Vmc.run
      ~factory:(factory ~variant:Variant.Current_f64 ~sys ~seed:5)
      {
        Vmc.default_params with
        Vmc.n_walkers = 2;
        warmup = 10;
        blocks = 3;
        steps_per_block = 8;
        tau = 0.1;
        seed = 6;
      }
  in
  checkf 1e-7 "plane-wave kinetic energy" exact res.Vmc.energy;
  check_bool "zero variance" true (res.Vmc.variance < 1e-10)

let test_hydrogen_zero_variance () =
  (* Exact 1s orbital: E_L = -1/2 everywhere, exercising the e-ion
     Coulomb path end to end. *)
  let sys = Validation.hydrogen () in
  let res =
    Vmc.run
      ~factory:(factory ~variant:Variant.Current_f64 ~sys ~seed:70)
      {
        Vmc.n_walkers = 2;
        warmup = 20;
        blocks = 4;
        steps_per_block = 10;
        tau = 0.3;
        seed = 71;
        n_domains = 1;
      }
  in
  checkf 1e-8 "hydrogen ground state" (-0.5) res.Vmc.energy;
  check_bool "zero variance" true (res.Vmc.variance < 1e-12)

let test_hydrogen_variational () =
  (* At zeta <> Z the energy must match E(zeta) = zeta^2/2 - Z zeta within
     statistics and stay above the exact -1/2. *)
  let zeta = 0.8 in
  let sys = Validation.hydrogen ~zeta () in
  let res =
    Vmc.run
      ~factory:(factory ~variant:Variant.Current_f64 ~sys ~seed:72)
      {
        Vmc.n_walkers = 6;
        warmup = 100;
        blocks = 12;
        steps_per_block = 25;
        tau = 0.4;
        seed = 73;
        n_domains = 1;
      }
  in
  let exact = Validation.hydrogen_variational_energy ~zeta ~z:1.0 in
  check_bool "matches analytic <H>(zeta)" true
    (abs_float (res.Vmc.energy -. exact)
    < (4. *. res.Vmc.energy_error) +. 0.01);
  check_bool "variational bound" true (res.Vmc.energy > -0.5)

(* ---------- observables ---------- *)

let test_gofr_correlation_hole () =
  (* The J2 factor digs a correlation hole: g(r) suppressed at contact,
     ~1 at large separation; the histogram must also be fed. *)
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let gofr =
    Observables.Gofr.create ~bins:10
      ~lattice:(Oqmc_particle.Lattice.cubic 5.0) ()
  in
  let _ =
    Vmc.run
      ~observe:(Observables.Gofr.accumulate gofr)
      ~factory:(factory ~variant:Variant.Current_f64 ~sys ~seed:74)
      {
        Vmc.n_walkers = 4;
        warmup = 30;
        blocks = 20;
        steps_per_block = 10;
        tau = 0.3;
        seed = 75;
        n_domains = 1;
      }
  in
  let g = Observables.Gofr.result gofr in
  check_bool "fed" true (Observables.Gofr.samples gofr = 80);
  let _, g_contact = g.(0) in
  let outer =
    (* average of the outer third of the bins *)
    let vals = Array.sub g 7 3 in
    Array.fold_left (fun a (_, v) -> a +. v) 0. vals /. 3.
  in
  check_bool "correlation hole at contact" true (g_contact < outer);
  check_bool "uncorrelated at distance" true (outer > 0.5 && outer < 1.6)

let test_density_profile_trap () =
  (* Harmonic trap: density peaks at the center and integrates to N. *)
  let n = 3 and omega = 1.0 in
  let sys = Validation.harmonic ~n ~omega in
  let dens = Observables.Density.create ~bins:20 ~r_max:6.0 () in
  let _ =
    Vmc.run
      ~observe:(Observables.Density.accumulate dens)
      ~factory:(factory ~variant:Variant.Current_f64 ~sys ~seed:76)
      {
        Vmc.n_walkers = 4;
        warmup = 50;
        blocks = 25;
        steps_per_block = 10;
        tau = 0.4;
        seed = 77;
        n_domains = 1;
      }
  in
  let prof = Observables.Density.result dens in
  checkf 0.05 "captures all particles" (float_of_int n)
    (Observables.Density.total dens);
  let _, n_center = prof.(0) in
  let _, n_edge = prof.(19) in
  check_bool "peaked at center" true (n_center > 10. *. (n_edge +. 1e-9))

(* ---------- cross-variant consistency on an interacting system -------- *)

let el_of_walker ~variant ~sys (w : Walker.t) =
  let e = Build.engine ~variant ~seed:42 sys in
  e.Engine_api.load_walker w;
  (e.Engine_api.log_psi (), e.Engine_api.measure ())

let test_variants_same_energy () =
  (* Same configuration → same log Ψ and E_L across all four variants
     (within storage precision). *)
  let sys = Validation.electron_gas ~n_up:6 ~n_down:6 ~box:5.5 () in
  let rng = Xoshiro.create 7 in
  let w = Walker.create 12 in
  for i = 0 to 11 do
    Walker.Aos.set w.Walker.r i
      (Oqmc_containers.Vec3.make
         (Xoshiro.uniform_range rng ~lo:0. ~hi:5.5)
         (Xoshiro.uniform_range rng ~lo:0. ~hi:5.5)
         (Xoshiro.uniform_range rng ~lo:0. ~hi:5.5))
  done;
  let log_ref, el_ref = el_of_walker ~variant:Variant.Ref ~sys w in
  List.iter
    (fun variant ->
      let log_v, el_v = el_of_walker ~variant ~sys w in
      let tol =
        match variant with
        | Variant.Ref | Variant.Current_f64 -> 1e-8
        | Variant.Ref_mp | Variant.Current -> 5e-3
      in
      check_bool
        (Printf.sprintf "%s log psi" (Variant.to_string variant))
        true
        (abs_float (log_v -. log_ref) < tol);
      check_bool
        (Printf.sprintf "%s E_L" (Variant.to_string variant))
        true
        (abs_float (el_v -. el_ref) < tol *. 100.))
    Variant.all

let test_layout_ablation_identical_physics () =
  (* Ref vs Current at the SAME precision must agree to near machine
     epsilon: the layout/algorithm changes are exact rewrites. *)
  let sys = Validation.electron_gas ~n_up:5 ~n_down:5 ~box:5.0 () in
  let rng = Xoshiro.create 8 in
  let w = Walker.create 10 in
  for i = 0 to 9 do
    Walker.Aos.set w.Walker.r i
      (Oqmc_containers.Vec3.make
         (Xoshiro.uniform_range rng ~lo:0. ~hi:5.)
         (Xoshiro.uniform_range rng ~lo:0. ~hi:5.)
         (Xoshiro.uniform_range rng ~lo:0. ~hi:5.))
  done;
  let log_a, el_a = el_of_walker ~variant:Variant.Ref ~sys w in
  let log_b, el_b = el_of_walker ~variant:Variant.Current_f64 ~sys w in
  checkf 1e-9 "log psi" log_a log_b;
  checkf 1e-7 "E_L" el_a el_b

(* ---------- sweeps, buffers, determinism ---------- *)

let test_sweep_updates_consistent () =
  (* After a sweep, the incrementally-updated log Ψ must match a from-
     scratch recompute. *)
  let sys = Validation.electron_gas ~n_up:5 ~n_down:5 ~box:5.0 () in
  List.iter
    (fun variant ->
      let e = Build.engine ~variant ~seed:9 sys in
      let rng = Xoshiro.create 10 in
      for _ = 1 to 5 do
        ignore (e.Engine_api.sweep rng ~tau:0.2)
      done;
      let incremental = e.Engine_api.log_psi () in
      let fresh = e.Engine_api.refresh () in
      let tol =
        match variant with
        | Variant.Ref | Variant.Current_f64 -> 1e-7
        | Variant.Ref_mp | Variant.Current -> 2e-2
      in
      check_bool
        (Printf.sprintf "%s log psi tracks" (Variant.to_string variant))
        true
        (abs_float (incremental -. fresh) < tol))
    Variant.all

let test_walker_buffer_roundtrip () =
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let e = Build.engine ~variant:Variant.Current ~seed:11 sys in
  let w = Walker.create 8 in
  e.Engine_api.register_walker w;
  let el0 = e.Engine_api.measure () in
  (* Scramble the engine with another configuration, then restore. *)
  e.Engine_api.randomize (Xoshiro.create 12);
  e.Engine_api.restore_walker w;
  let el1 = e.Engine_api.measure () in
  checkf 1e-6 "E_L restored from buffer" el0 el1

let test_sweep_deterministic () =
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let run () =
    let e = Build.engine ~variant:Variant.Current ~seed:13 sys in
    let rng = Xoshiro.create 14 in
    let acc = ref 0 in
    for _ = 1 to 5 do
      let r = e.Engine_api.sweep rng ~tau:0.25 in
      acc := !acc + r.Engine_api.accepted
    done;
    (!acc, e.Engine_api.log_psi ())
  in
  let a1, l1 = run () in
  let a2, l2 = run () in
  Alcotest.(check int) "same accepts" a1 a2;
  checkf 0. "same log psi" l1 l2

(* ---------- DMC ---------- *)

let test_dmc_harmonic () =
  let n = 3 and omega = 1.0 in
  let sys = Validation.harmonic ~n ~omega in
  let exact = Validation.harmonic_exact_energy ~n ~omega in
  let res =
    Dmc.run
      ~factory:(factory ~variant:Variant.Current_f64 ~sys ~seed:15)
      {
        Dmc.default_params with
        Dmc.target_walkers = 8;
        warmup = 10;
        generations = 30;
        tau = 0.02;
        seed = 16;
      }
  in
  (* Exact trial wavefunction → DMC converges to the exact energy with
     zero branching noise. *)
  checkf 1e-6 "DMC energy" exact res.Dmc.energy;
  check_bool "population stable" true
    (res.Dmc.mean_population > 4. && res.Dmc.mean_population < 16.)

let test_dmc_population_control () =
  (* With an interacting system the population must stay near target. *)
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let res =
    Dmc.run
      ~factory:(factory ~variant:Variant.Current ~sys ~seed:17)
      {
        Dmc.default_params with
        Dmc.target_walkers = 12;
        warmup = 10;
        generations = 40;
        tau = 0.01;
        seed = 18;
        ranks = 4;
      }
  in
  check_bool "population near target" true
    (res.Dmc.mean_population > 6. && res.Dmc.mean_population < 24.);
  check_bool "acceptance high at small tau" true (res.Dmc.acceptance > 0.8);
  check_bool "comm accounting active" true (res.Dmc.comm_messages >= 0)

let test_tiled_vs_flat_bit_identical () =
  (* The tiled orbital layout is a storage layout, not a physics or even
     a rounding knob: at f64 the fused tiled kernels consume the same
     doubles in the same order as the flat ones, so a full crowd-batched
     VMC and a DMC with delayed updates (delay > 1) must produce EXACTLY
     the same numbers — bit-identical energies, not statistically
     compatible ones. *)
  let sys layout =
    Builder.make ~seed:7 ~with_nlpp:false ~reduction:32 ~precision:`F64
      ~layout ~tile:5 Spec.nio32
  in
  let vmc layout =
    Vmc.run ~crowd:4
      ~factory:
        (Build.factory ~variant:Variant.Current_f64 ~precision:`F64 ~seed:21
           (sys layout))
      {
        Vmc.default_params with
        Vmc.n_walkers = 4;
        warmup = 3;
        blocks = 2;
        steps_per_block = 4;
        tau = 0.05;
        seed = 22;
      }
  in
  let v_flat = vmc `Flat and v_tiled = vmc `Tiled in
  check_bool
    (Printf.sprintf "VMC tiled %.17g = flat %.17g" v_tiled.Vmc.energy
       v_flat.Vmc.energy)
    true
    (v_tiled.Vmc.energy = v_flat.Vmc.energy);
  check_bool "VMC variance bit-identical" true
    (v_tiled.Vmc.variance = v_flat.Vmc.variance);
  let dmc layout =
    Dmc.run ~crowd:4
      ~factory:
        (Build.factory ~variant:Variant.Current_f64 ~precision:`F64 ~delay:3
           ~seed:31 (sys layout))
      {
        Dmc.default_params with
        Dmc.target_walkers = 6;
        warmup = 3;
        generations = 8;
        tau = 0.02;
        seed = 32;
      }
  in
  let d_flat = dmc `Flat and d_tiled = dmc `Tiled in
  check_bool
    (Printf.sprintf "DMC tiled %.17g = flat %.17g" d_tiled.Dmc.energy
       d_flat.Dmc.energy)
    true
    (d_tiled.Dmc.energy = d_flat.Dmc.energy);
  check_bool "DMC population bit-identical" true
    (d_tiled.Dmc.mean_population = d_flat.Dmc.mean_population)

let test_dmc_f32_vs_f64_agree () =
  (* Mixed precision is a storage knob, not a physics knob: a short DMC
     with f32 tables and walker state must land on the f64 energy within
     the runs' combined statistical error (plus a small absolute floor —
     tiny runs underestimate their own error bars). *)
  let run precision variant =
    let sys =
      Builder.make ~seed:7 ~with_nlpp:false ~reduction:32 ~precision
        Spec.nio32
    in
    Dmc.run
      ~factory:(Build.factory ~variant ~precision ~seed:21 sys)
      {
        Dmc.default_params with
        Dmc.target_walkers = 8;
        warmup = 6;
        generations = 24;
        tau = 0.02;
        seed = 22;
      }
  in
  let r64 = run `F64 Variant.Current_f64 in
  let r32 = run `F32 Variant.Current in
  let sigma = r64.Dmc.energy_error +. r32.Dmc.energy_error in
  let tol = (4. *. sigma) +. (0.02 *. abs_float r64.Dmc.energy) +. 0.01 in
  check_bool
    (Printf.sprintf "f32 %.4f vs f64 %.4f within %.4f" r32.Dmc.energy
       r64.Dmc.energy tol)
    true
    (abs_float (r32.Dmc.energy -. r64.Dmc.energy) < tol);
  check_bool "f32 population stable" true
    (r32.Dmc.mean_population > 4. && r32.Dmc.mean_population < 16.)

(* ---------- workload smoke tests ---------- *)

let test_workload_builds_and_runs () =
  List.iter
    (fun spec ->
      let sys = Builder.make ~reduction:16 ~with_nlpp:false spec in
      let e = Build.engine ~variant:Variant.Current ~seed:19 sys in
      let rng = Xoshiro.create 20 in
      let r = e.Engine_api.sweep rng ~tau:0.05 in
      check_bool
        (Printf.sprintf "%s sweeps" spec.Spec.wname)
        true
        (r.Engine_api.accepted >= 0);
      let el = e.Engine_api.measure () in
      check_bool
        (Printf.sprintf "%s finite E_L" spec.Spec.wname)
        true (Float.is_finite el))
    Spec.all

let test_workload_nlpp_runs () =
  let sys = Builder.make ~reduction:16 ~with_nlpp:true Spec.nio32 in
  let e = Build.engine ~variant:Variant.Current ~seed:21 sys in
  let el = e.Engine_api.measure () in
  check_bool "NLPP E_L finite" true (Float.is_finite el)

let test_workload_variants_agree () =
  let sys = Builder.make ~reduction:16 ~with_nlpp:true Spec.nio32 in
  let w = Walker.create (System.n_electrons sys) in
  let e1 = Build.engine ~variant:Variant.Ref ~seed:22 sys in
  e1.Engine_api.register_walker w;
  let l1 = e1.Engine_api.log_psi () and el1 = e1.Engine_api.measure () in
  let e2 = Build.engine ~variant:Variant.Current_f64 ~seed:23 sys in
  e2.Engine_api.load_walker w;
  let l2 = e2.Engine_api.log_psi () and el2 = e2.Engine_api.measure () in
  checkf 1e-6 "NiO log psi" l1 l2;
  check_bool "NiO E_L agree" true (abs_float (el1 -. el2) < 1e-4)

let test_ewald_engine_integration () =
  (* Ewald electrostatics: finite, variant-consistent, and different from
     the minimum-image shortcut by a smooth offset. *)
  let sys_mi = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let sys_ew = Validation.electron_gas ~ewald:true ~n_up:4 ~n_down:4 ~box:5.0 () in
  let w = Walker.create 8 in
  let e0 = Build.engine ~variant:Variant.Ref ~seed:30 sys_mi in
  e0.Engine_api.register_walker w;
  let measure sys variant =
    let e = Build.engine ~variant ~seed:31 sys in
    e.Engine_api.load_walker w;
    e.Engine_api.measure ()
  in
  let mi = measure sys_mi Variant.Ref in
  let ew_ref = measure sys_ew Variant.Ref in
  let ew_cur = measure sys_ew Variant.Current_f64 in
  check_bool "ewald finite" true (Float.is_finite ew_ref);
  checkf 1e-7 "ewald variant-independent" ew_ref ew_cur;
  check_bool "differs from minimum image" true (abs_float (ew_ref -. mi) > 1e-6)

let test_multidomain_matches_serial_counts () =
  (* Domain-parallel VMC must produce sane results and merged timers. *)
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let res =
    Vmc.run
      ~factory:(factory ~variant:Variant.Current ~sys ~seed:24)
      {
        Vmc.n_walkers = 4;
        warmup = 5;
        blocks = 3;
        steps_per_block = 5;
        tau = 0.2;
        seed = 25;
        n_domains = 2;
      }
  in
  check_bool "parallel run finite" true (Float.is_finite res.Vmc.energy);
  Alcotest.(check int) "all samples measured" (4 * 3 * 5) res.Vmc.samples

let test_delayed_update_engine () =
  (* Full engine with the delayed DetUpdate scheme: identical physics to
     Sherman-Morrison within double precision. *)
  let sys = Validation.electron_gas ~n_up:5 ~n_down:5 ~box:5.0 () in
  let w = Walker.create 10 in
  let e_sm = Build.engine ~variant:Variant.Current_f64 ~seed:60 sys in
  e_sm.Engine_api.register_walker w;
  let e_du = Build.engine ~delay:4 ~variant:Variant.Current_f64 ~seed:61 sys in
  e_du.Engine_api.load_walker w;
  checkf 1e-8 "log psi" (e_sm.Engine_api.log_psi ()) (e_du.Engine_api.log_psi ());
  (* identical sweeps under a shared RNG stream *)
  let r1 = e_sm.Engine_api.sweep (Xoshiro.create 62) ~tau:0.2 in
  e_du.Engine_api.load_walker w;
  let r2 = e_du.Engine_api.sweep (Xoshiro.create 62) ~tau:0.2 in
  Alcotest.(check int) "same acceptances" r1.Engine_api.accepted
    r2.Engine_api.accepted;
  checkf 1e-6 "same log psi after sweep" (e_sm.Engine_api.log_psi ())
    (e_du.Engine_api.log_psi ());
  checkf 1e-5 "same E_L" (e_sm.Engine_api.measure ()) (e_du.Engine_api.measure ())

(* ---------- checkpoint ---------- *)

let test_checkpoint_roundtrip () =
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let e = Build.engine ~variant:Variant.Current ~seed:40 sys in
  let rng = Xoshiro.create 41 in
  let walkers =
    List.init 3 (fun _ ->
        let w = Walker.create 8 in
        e.Engine_api.randomize rng;
        e.Engine_api.register_walker w;
        w.Walker.weight <- Xoshiro.uniform rng;
        w.Walker.e_local <- e.Engine_api.measure ();
        w)
  in
  let path = Filename.temp_file "oqmc" ".chk" in
  Checkpoint.save ~path ~e_trial:(-1.25) walkers;
  let e_trial, restored = Checkpoint.load ~path in
  Sys.remove path;
  checkf 0. "e_trial" (-1.25) e_trial;
  Alcotest.(check int) "count" 3 (List.length restored);
  List.iter2
    (fun (a : Walker.t) (b : Walker.t) ->
      checkf 0. "weight" a.Walker.weight b.Walker.weight;
      checkf 0. "log_psi" a.Walker.log_psi b.Walker.log_psi;
      checkf 0. "e_local" a.Walker.e_local b.Walker.e_local;
      for i = 0 to 7 do
        check_bool "positions bit-exact" true
          (Oqmc_containers.Vec3.equal
             (Walker.Aos.get a.Walker.r i)
             (Walker.Aos.get b.Walker.r i))
      done;
      (* restoring an engine from the checkpointed buffer reproduces E_L *)
      e.Engine_api.restore_walker b;
      checkf 1e-6 "E_L from restored buffer" a.Walker.e_local
        (e.Engine_api.measure ()))
    walkers restored

let test_checkpoint_corrupt () =
  let path = Filename.temp_file "oqmc" ".chk" in
  let oc = open_out path in
  output_string oc "NOT-A-CHECKPOINT\n";
  close_out oc;
  (try
     ignore (Checkpoint.load ~path);
     Alcotest.fail "expected Corrupt"
   with Checkpoint.Corrupt _ -> ());
  Sys.remove path

let () =
  Alcotest.run "qmc"
    [
      ( "exact_systems",
        [
          Alcotest.test_case "harmonic zero variance" `Quick
            test_harmonic_zero_variance;
          Alcotest.test_case "harmonic all variants" `Quick
            test_harmonic_all_variants_agree;
          Alcotest.test_case "free fermions" `Quick test_free_fermions_exact;
          Alcotest.test_case "hydrogen zero variance" `Quick
            test_hydrogen_zero_variance;
          Alcotest.test_case "hydrogen variational" `Quick
            test_hydrogen_variational;
        ] );
      ( "observables",
        [
          Alcotest.test_case "g(r) correlation hole" `Quick
            test_gofr_correlation_hole;
          Alcotest.test_case "trap density" `Quick test_density_profile_trap;
        ] );
      ( "variants",
        [
          Alcotest.test_case "same energy" `Quick test_variants_same_energy;
          Alcotest.test_case "layout ablation" `Quick
            test_layout_ablation_identical_physics;
          Alcotest.test_case "sweep consistency" `Quick
            test_sweep_updates_consistent;
        ] );
      ( "engine",
        [
          Alcotest.test_case "buffer roundtrip" `Quick
            test_walker_buffer_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_sweep_deterministic;
        ] );
      ( "dmc",
        [
          Alcotest.test_case "harmonic" `Quick test_dmc_harmonic;
          Alcotest.test_case "population control" `Quick
            test_dmc_population_control;
          Alcotest.test_case "f32 vs f64 energy" `Quick
            test_dmc_f32_vs_f64_agree;
          Alcotest.test_case "tiled vs flat bit-identical" `Quick
            test_tiled_vs_flat_bit_identical;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "build and run" `Quick
            test_workload_builds_and_runs;
          Alcotest.test_case "nlpp" `Quick test_workload_nlpp_runs;
          Alcotest.test_case "variants agree" `Quick
            test_workload_variants_agree;
          Alcotest.test_case "multidomain" `Quick
            test_multidomain_matches_serial_counts;
          Alcotest.test_case "ewald integration" `Quick
            test_ewald_engine_integration;
        ] );
      ( "delayed",
        [
          Alcotest.test_case "engine parity" `Quick test_delayed_update_engine;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "corrupt" `Quick test_checkpoint_corrupt;
        ] );
    ]
