open Oqmc_perfmodel

(* The performance model must stay inside the paper's measured bands:
   these tests pin the calibration so future edits cannot silently drift
   the reproduced figures. *)

let checkf tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)

let costs layout elt n ni ~has_pp =
  Opcount.step_costs
    {
      Opcount.n;
      n_ion = ni;
      n_spo = n / 2;
      elt_bytes = elt;
      layout;
      acceptance = 0.5;
      nlpp_evals = Opcount.nlpp_evals_estimate ~n ~has_pp;
      tile = 0;
    }

let speedup machine (n, ni, has_pp) =
  Roofline.speedup machine
    ~ref_costs:(costs `Store 8 n ni ~has_pp)
    ~cur_costs:(costs `Otf 4 n ni ~has_pp)

let workloads =
  [
    ("Graphite", (256, 64, true));
    ("Be-64", (256, 64, false));
    ("NiO-32", (384, 32, true));
    ("NiO-64", (768, 64, true));
  ]

(* ---------- machines ---------- *)

let test_machine_peaks () =
  (* KNL: 64 cores x 1.4 GHz x 64 SP flops/cycle ≈ 5.7 TF SP. *)
  checkf 1. "KNL SP peak" 5734.4 (Machine.peak_gflops Machine.knl ~single:true);
  checkf 1. "KNL DP peak" 2867.2 (Machine.peak_gflops Machine.knl ~single:false);
  checkf 1. "BDW DP peak" 704. (Machine.peak_gflops Machine.bdw ~single:false);
  (* BG/Q QPX: no SP speedup. *)
  checkf 1e-9 "BGQ SP = DP"
    (Machine.peak_gflops Machine.bgq ~single:false)
    (Machine.peak_gflops Machine.bgq ~single:true)

let test_machine_find () =
  Alcotest.(check string) "find knl" "KNL" (Machine.find "knl").Machine.mname;
  Alcotest.check_raises "unknown" (Invalid_argument "Machine.find: \"vax\"")
    (fun () -> ignore (Machine.find "vax"))

(* ---------- roofline ---------- *)

let test_roofline_bounds () =
  List.iter
    (fun (_, w) ->
      let n, ni, has_pp = w in
      List.iter
        (fun machine ->
          List.iter
            (fun c ->
              let p = Roofline.project machine c in
              check_bool "achieved <= roof" true
                (p.Roofline.gflops <= p.Roofline.attainable +. 1e-9);
              check_bool "positive time for positive flops" true
                (c.Opcount.flops = 0. || p.Roofline.time_s > 0.))
            (costs `Otf 4 n ni ~has_pp))
        Machine.all)
    workloads

let test_speedup_bands () =
  (* Paper Table 2 bands with slack: per-machine ranges over the four
     workloads. *)
  List.iter
    (fun (_, w) ->
      let bdw = speedup Machine.bdw w in
      let knl = speedup Machine.knl w in
      let bgq = speedup Machine.bgq w in
      check_bool "BDW in [2.0, 3.5]" true (bdw >= 2.0 && bdw <= 3.5);
      check_bool "KNL in [1.8, 3.0]" true (knl >= 1.8 && knl <= 3.0);
      check_bool "BGQ in [1.2, 2.4]" true (bgq >= 1.2 && bgq <= 2.4);
      check_bool "BGQ smallest" true (bgq < bdw && bgq < knl);
      check_bool "BDW >= KNL (paper ordering)" true (bdw >= knl))
    workloads

let test_kernel_speedups_bdw () =
  (* Sec. 8.1 anchors: Bspline-v ~1.3x, Bspline-vgh ~1.7x, DetUpdate ~2x,
     DistTable and J2 large. *)
  let n, ni, has_pp = (384, 32, true) in
  let pr = Roofline.project_all Machine.bdw (costs `Store 8 n ni ~has_pp) in
  let pc = Roofline.project_all Machine.bdw (costs `Otf 4 n ni ~has_pp) in
  let ratio k =
    let f l = (List.find (fun p -> p.Roofline.kernel = k) l).Roofline.time_s in
    f pr /. f pc
  in
  check_bool "Bspline-v ~1.3" true (abs_float (ratio "Bspline-v" -. 1.3) < 0.25);
  check_bool "Bspline-vgh ~1.7" true
    (abs_float (ratio "Bspline-vgh" -. 1.7) < 0.35);
  check_bool "DetUpdate ~2" true (abs_float (ratio "DetUpdate" -. 2.) < 0.4);
  check_bool "DistTable large" true (ratio "DistTable" > 4.);
  check_bool "J2 large" true (ratio "J2" > 4.)

let test_mp_gains_knl () =
  (* Fig. 8: Ref+MP gains on KNL ~1.16x (NiO-32) and ~1.3x (NiO-64). *)
  let gain (n, ni, has_pp) =
    Roofline.speedup Machine.knl
      ~ref_costs:(costs `Store 8 n ni ~has_pp)
      ~cur_costs:(costs `Store 4 n ni ~has_pp)
  in
  let g32 = gain (384, 32, true) and g64 = gain (768, 64, true) in
  check_bool "NiO-32 MP gain small" true (g32 >= 1.0 && g32 <= 1.5);
  check_bool "NiO-64 MP gain larger" true (g64 >= g32)

(* ---------- scaling ---------- *)

let test_scaling_efficiencies () =
  let run threads net =
    Scaling.strong_scaling ~threads_per_node:threads ~net
      ~target_population:131072 ~step_time_1walker:0.08
      ~walker_message_bytes:3_000_000
      ~node_counts:[ 16; 64; 256; 1024 ] ()
  in
  let knl = run 128 Scaling.aries in
  let last = List.nth knl (List.length knl - 1) in
  check_bool "KNL 1024-node efficiency ~90%" true
    (last.Scaling.efficiency > 0.85 && last.Scaling.efficiency < 0.95);
  let bdw = run 36 Scaling.omnipath in
  let lastb = List.nth bdw (List.length bdw - 1) in
  check_bool "BDW 1024-socket efficiency ~97%" true
    (lastb.Scaling.efficiency > 0.94);
  (* throughput must increase with node count *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        check_bool "monotone" true
          (b.Scaling.throughput > a.Scaling.throughput);
        monotone rest
    | _ -> ()
  in
  monotone knl

(* ---------- energy ---------- *)

let test_energy_ratio_equals_time_ratio () =
  let p t = Energy.profile ~label:"x" ~machine:Machine.knl ~init_time:0. ~dmc_time:t () in
  let r = Energy.energy_ratio ~ref_profile:(p 1000.) ~cur_profile:(p 400.) in
  checkf 1e-9 "energy ratio" 2.5 r;
  check_bool "KNL plateau 210-215 W" true
    (Energy.dmc_power Machine.knl >= 208. && Energy.dmc_power Machine.knl <= 216.)

let test_energy_profile_samples () =
  let p =
    Energy.profile ~interval:5. ~label:"x" ~machine:Machine.knl
      ~init_time:20. ~dmc_time:80. ()
  in
  check_bool "sampled every 5s" true (List.length p.Energy.samples >= 20);
  List.iter
    (fun s ->
      check_bool "power in a sane band" true
        (s.Energy.watts > 80. && s.Energy.watts < 230.))
    p.Energy.samples

(* ---------- memory ---------- *)

let bspline64 = int_of_float (2.2e9)

let test_memory_nio64 () =
  let f kind label =
    Memory_model.footprint ~label kind ~n:768 ~n_ion:64 ~n_spo_total:240
      ~bspline_bytes:bspline64 ~threads:128 ~walkers:1024
  in
  let r = f `Ref "Ref" and c = f `Current "Current" in
  check_bool "Ref > 25 GB" true (r.Memory_model.total_gb > 25.);
  check_bool "Current fits MCDRAM" true (c.Memory_model.total_gb < 16.);
  let saved = r.Memory_model.total_gb -. c.Memory_model.total_gb in
  check_bool "~36 GB saved (paper)" true (saved > 25. && saved < 45.)

let test_memory_scaling_quadratic () =
  let per_walker n =
    Memory_model.walker_bytes `Ref ~n ~n_ion:64 ~n_spo:(n / 2)
  in
  let r = float_of_int (per_walker 768) /. float_of_int (per_walker 384) in
  check_bool "Ref walker ~O(N^2)" true (r > 3.5 && r < 4.5);
  let pc n = Memory_model.walker_bytes `Current ~n ~n_ion:64 ~n_spo:(n / 2) in
  (* Current's only O(N²) walker state is the determinant inverse. *)
  check_bool "Current walker much smaller" true (pc 768 * 2 < per_walker 768)

let test_opcount_shapes () =
  let ref_costs = costs `Store 8 384 32 ~has_pp:true in
  let mp = costs `Store 4 384 32 ~has_pp:true in
  check_bool "MP halves key bytes" true
    (Opcount.total_bytes mp < 0.7 *. Opcount.total_bytes ref_costs);
  List.iter
    (fun c ->
      check_bool "AI positive" true
        (c.Opcount.flops = 0. || Opcount.arithmetic_intensity c > 0.))
    ref_costs

let () =
  Alcotest.run "perfmodel"
    [
      ( "machine",
        [
          Alcotest.test_case "peaks" `Quick test_machine_peaks;
          Alcotest.test_case "find" `Quick test_machine_find;
        ] );
      ( "roofline",
        [
          Alcotest.test_case "bounds" `Quick test_roofline_bounds;
          Alcotest.test_case "table2 bands" `Quick test_speedup_bands;
          Alcotest.test_case "kernel speedups" `Quick test_kernel_speedups_bdw;
          Alcotest.test_case "MP gains" `Quick test_mp_gains_knl;
        ] );
      ( "scaling",
        [ Alcotest.test_case "efficiencies" `Quick test_scaling_efficiencies ]
      );
      ( "energy",
        [
          Alcotest.test_case "ratio" `Quick test_energy_ratio_equals_time_ratio;
          Alcotest.test_case "profile" `Quick test_energy_profile_samples;
        ] );
      ( "memory",
        [
          Alcotest.test_case "NiO-64" `Quick test_memory_nio64;
          Alcotest.test_case "scaling" `Quick test_memory_scaling_quadratic;
          Alcotest.test_case "opcount" `Quick test_opcount_shapes;
        ] );
    ]
