(* Status smoke: the live-introspection acceptance path end to end.

   1. Boot the oqmc-serve daemon, put a DMC job in flight, and poll the
      Status verb until the snapshot carries per-rank ledger windows AND
      the audit.efficiency gauge — the smoke FAILS if the audit gauge
      never surfaces.
   2. Run the efficiency audit directly on the harmonic and NiO-32
      (reduced) workloads: both must produce a finite
      measured-vs-projected ratio and publish the audit.* gauges.
   3. Inject a rank crash under a supervised run with the flight
      recorder armed: the postmortem file must exist, replay with the
      crashing generation's records and spans present, and the
      oqmc_submit postmortem CLI (path in argv 1) must render it.

   Run with `dune build @status-smoke`. *)

open Oqmc_core
open Oqmc_workloads
open Oqmc_serve
module Jsonx = Oqmc_obs.Jsonx
module Metrics = Oqmc_obs.Metrics
module Trace = Oqmc_obs.Trace
module Flightrec = Oqmc_obs.Flightrec
module Supervisor = Oqmc_dist.Supervisor
module Audit = Oqmc_autotune.Audit

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt
let check name ok = if not ok then die "%s" name

let base =
  let d = Printf.sprintf "/tmp/oqmc-status.%d" (Unix.getpid ()) in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* ---------- helpers over the status JSON ---------- *)

let member_list name j =
  Option.value ~default:[] (Option.bind (Jsonx.member name j) Jsonx.to_list)

let live_jobs body =
  List.filter_map
    (fun job ->
      match Jsonx.member "live" job with
      | Some (Jsonx.Obj _ as live) -> Some live
      | _ -> None)
    (member_list "jobs" body)

let ledger_rows body =
  List.concat_map (fun live -> member_list "ledger" live) (live_jobs body)

let audit_efficiency body =
  List.find_map
    (fun live ->
      Option.bind (Jsonx.member "audit" live) (fun a ->
          Option.bind (Jsonx.member "audit.efficiency" a) Jsonx.to_float))
    (live_jobs body)

(* ---------- part 1: daemon status with a job in flight ---------- *)

let part_status_endpoint () =
  let socket = Filename.concat base "sock" in
  let cfg =
    {
      Server.default_config with
      Server.socket;
      dir = Filename.concat base "state";
      max_queue = 4;
      max_running = 1;
    }
  in
  let daemon =
    match Unix.fork () with
    | 0 -> (
        try
          Server.serve cfg;
          Stdlib.exit 0
        with e ->
          prerr_endline ("daemon: " ^ Printexc.to_string e);
          Stdlib.exit 1)
    | pid -> pid
  in
  let deck =
    "method = dmc\nworkload = harmonic\nwalkers = 64\nblocks = 100\n\
     steps = 50\ntau = 0.01\nseed = 5\n"
  in
  let fd = Client.connect socket in
  (match Client.submit fd ~client:"smoke" ~wait:false deck with
  | Proto.Accepted _ -> ()
  | r ->
      die "submit: expected Accepted, got %s"
        (Jsonx.to_string (Proto.reply_to_json r)));
  (* Poll until BOTH the per-rank ledger windows and the audit gauge
     surface in the live snapshot.  No audit gauge = smoke failure. *)
  let deadline = Unix.gettimeofday () +. 60. in
  let rec poll () =
    let body = Client.status fd in
    check "snapshot has daemon stats" (Jsonx.member "stats" body <> None);
    check "snapshot has the metrics registry"
      (Jsonx.member "metrics" body <> None);
    let rows = ledger_rows body and eff = audit_efficiency body in
    if rows <> [] && eff <> None then (body, rows, Option.get eff)
    else if Unix.gettimeofday () > deadline then
      die "status snapshot incomplete after 60 s: ledger rows %d, audit %s"
        (List.length rows)
        (match eff with Some _ -> "present" | None -> "ABSENT")
    else begin
      Unix.sleepf 0.25;
      poll ()
    end
  in
  let body, rows, eff = poll () in
  check "ledger row carries throughput"
    (List.exists
       (fun r ->
         match
           Option.bind (Jsonx.member "walkers_moves_per_s" r) Jsonx.to_float
         with
         | Some v -> v > 0.
         | None -> false)
       rows);
  check "audit efficiency is a sane ratio" (Float.is_finite eff && eff > 0.);
  (* The snapshot must be plain parseable JSON end to end. *)
  let s = Jsonx.to_string body in
  check "snapshot roundtrips" (Jsonx.parse_string_exn s = body);
  ignore (Client.cancel fd "j0001");
  Client.close fd;
  Unix.kill daemon Sys.sigterm;
  let _, st = Unix.waitpid [] daemon in
  check "daemon drained cleanly" (st = Unix.WEXITED 0);
  Printf.printf "status endpoint OK: ledger rows %d, audit efficiency %.2f\n%!"
    (List.length rows) eff

(* ---------- part 2: efficiency audit on both workloads ---------- *)

let audit_workload name sys ~walkers ~generations =
  Metrics.reset ();
  let factory = Build.factory ~variant:Variant.Current ~seed:3 sys in
  let r =
    Dmc.run ~factory
      {
        Dmc.target_walkers = walkers;
        warmup = 2;
        generations;
        tau = 0.01;
        seed = 7;
        n_domains = 1;
        ranks = 1;
      }
  in
  let a =
    Audit.create ~walkers ~variant:Variant.Current ~precision:`F32 ~sys ()
  in
  let measured_gen_s = r.Dmc.wall_time /. float_of_int generations in
  match Audit.observe ~measured_gen_s a with
  | None -> die "%s: audit produced no report" name
  | Some rep ->
      check
        (name ^ ": measured-vs-projected ratio is finite and positive")
        (Float.is_finite rep.Audit.efficiency && rep.Audit.efficiency > 0.);
      check
        (name ^ ": audit.efficiency gauge published")
        (match Metrics.find (Metrics.snapshot ()) "audit.efficiency" with
        | Some (Metrics.Gauge g) -> Float.is_finite g && g > 0.
        | _ -> false);
      check
        (name ^ ": kernel verdicts present")
        (rep.Audit.kernels <> []);
      print_string (Audit.table rep)

let part_audit_workloads () =
  audit_workload "harmonic"
    (Validation.harmonic ~n:6 ~omega:1.0)
    ~walkers:16 ~generations:12;
  audit_workload "NiO-32 (reduced)"
    (Builder.make ~seed:3 Spec.nio32)
    ~walkers:4 ~generations:3;
  Printf.printf "efficiency audit OK on harmonic and NiO-32\n%!"

(* ---------- part 3: injected crash -> postmortem replay ---------- *)

let part_crash_postmortem submit_exe =
  let fr_path = Filename.concat base "crash.flightrec" in
  Flightrec.clear ();
  Trace.enable ();
  let sys = Validation.harmonic ~n:4 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current ~seed:3 sys in
  let p =
    {
      Supervisor.default_params with
      ranks = 3;
      target_walkers = 9;
      warmup = 3;
      generations = 10;
      tau = 0.02;
      seed = 77;
      n_domains = 1;
      heartbeat_s = 30.;
      respawn_backoff = 0.01;
      faults = [ (1, 5, Oqmc_core.Fault.Rank_kill) ];
      flightrec = Some fr_path;
    }
  in
  let res = Supervisor.run ~factory p in
  Trace.disable ();
  check "injected crash detected" (res.Supervisor.crashes = 1);
  check "run survived the crash" (res.Supervisor.live_ranks = 3);
  check "postmortem file written on the abort path" (Sys.file_exists fr_path);
  let pm = Flightrec.replay ~path:fr_path in
  check "postmortem replays complete (CRC ok)" pm.Flightrec.complete;
  check "rank_failed record present"
    (List.exists
       (fun (e : Flightrec.entry) -> e.Flightrec.kind = "rank_failed")
       pm.Flightrec.records);
  (* The crashing generation's records and spans made it into the dump. *)
  let crash_gen =
    List.find_map
      (fun (e : Flightrec.entry) ->
        if e.Flightrec.kind <> "rank_failed" then None
        else Option.bind (Jsonx.member "gen" e.Flightrec.data) Jsonx.to_float)
      pm.Flightrec.records
  in
  check "rank_failed names its generation" (crash_gen <> None);
  let cg = Option.get crash_gen in
  (* The crashing generation's own "gen" record is written at generation
     end — after the dump — so the ring must reach the generation
     immediately before the crash. *)
  check "generation records reach the crashing generation"
    (List.exists
       (fun (e : Flightrec.entry) ->
         e.Flightrec.kind = "gen"
         &&
         match
           Option.bind (Jsonx.member "gen" e.Flightrec.data) Jsonx.to_float
         with
         | Some g -> g >= cg -. 1.
         | None -> false)
       pm.Flightrec.records);
  check "trace spans captured in the dump" (pm.Flightrec.spans <> []);
  (* And the user-facing replay: oqmc_submit postmortem <file>. *)
  let out = Filename.concat base "postmortem.out" in
  let cmd =
    Printf.sprintf "%s postmortem %s > %s"
      (Filename.quote submit_exe) (Filename.quote fr_path) (Filename.quote out)
  in
  check "oqmc_submit postmortem exits 0" (Sys.command cmd = 0);
  let rendered = In_channel.with_open_bin out In_channel.input_all in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  check "CLI replay shows the rank failure" (contains rendered "rank_failed");
  Printf.printf "crash postmortem OK: rank 1 died at gen %.0f, %d records, %d spans replayed\n%!"
    cg
    (List.length pm.Flightrec.records)
    (List.length pm.Flightrec.spans)

let () =
  let submit_exe =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else die "usage: status_smoke <path-to-oqmc_submit.exe>"
  in
  rm_rf (Filename.concat base "state");
  part_status_endpoint ();
  part_audit_workloads ();
  part_crash_postmortem submit_exe;
  rm_rf base;
  print_endline "status smoke OK"
