open Oqmc_core
open Oqmc_obs
open Oqmc_workloads
open Oqmc_dist

(* Chaos soak: a deterministic multi-hundred-generation supervised DMC
   run under a seeded schedule of kills, stalls, corrupted frames, full
   disks and elastic membership changes walking the rank count through
   4 -> 6 -> 3 -> 5.  The workload is the exact-eigenfunction harmonic
   trap — zero-variance, so the mixed estimator must stay pinned to the
   analytic energy no matter what the injector does.  Asserts, per
   seed: the run completes; every estimator is finite and within
   tolerance of both the uninjected reference and the exact energy; no
   walker is lost or duplicated by any membership transition; the rank
   trajectory is reached; and every scheduled event surfaced in the
   supervisor's counters and the telemetry stream.  Finishes with a
   lockstep-vs-softened generation-latency comparison under a straggler
   workload and writes BENCH_chaos.json.

   Run with `dune build @chaos-soak`; set OQMC_CHAOS_LONG=1 for the
   extended matrix. *)

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let long =
  match Sys.getenv_opt "OQMC_CHAOS_LONG" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let gens = if long then 600 else 220
let soak_seeds = if long then [ 3; 5; 7; 9; 11; 13 ] else [ 3; 5; 7 ]
let events = if long then 24 else 12
let trajectory = [ 6; 3; 5 ]
let start_ranks = 4
let target_walkers = 24

let sys = Validation.harmonic ~n:6 ~omega:1.0
let exact = Validation.harmonic_exact_energy ~n:6 ~omega:1.0
let factory = Build.factory ~variant:Variant.Current_f64 ~seed:700 sys

(* Zero-variance workload: the mixed estimator is the analytic energy
   up to kinetic-term roundoff, fault-injected or not. *)
let energy_tol = 1e-6

let tmpdir () =
  let d = Filename.temp_file "oqmc_chaos" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let base_params seed =
  {
    Supervisor.default_params with
    ranks = start_ranks;
    target_walkers;
    warmup = 5;
    generations = gens;
    tau = 0.01;
    seed;
    n_domains = 1;
    heartbeat_s = 30.;
    max_respawn = 10;
    respawn_backoff = 0.005;
    elastic = true;
    gen_deadline_ms = 200;
    straggler_policy = Supervisor.Warn;
  }

let assert_finite seed (res : Supervisor.result) =
  if not (Float.is_finite res.Supervisor.energy) then
    fail "seed %d: non-finite energy" seed;
  if not (Float.is_finite res.Supervisor.final_e_trial) then
    fail "seed %d: non-finite trial energy" seed;
  Array.iter
    (fun e ->
      if not (Float.is_finite e) then fail "seed %d: non-finite series" seed)
    res.Supervisor.energy_series

(* Every telemetry line must parse, and every membership transition must
   be visible as its own record even under decimation. *)
let count_telemetry_events path =
  let ic = open_in path in
  let joins = ref 0 and leaves = ref 0 and lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr lines;
         match Jsonx.parse_string_exn line with
         | j -> (
             match Option.bind (Jsonx.member "event" j) Jsonx.to_str with
             | Some "join" -> incr joins
             | Some "leave" -> incr leaves
             | _ -> ())
         | exception _ -> fail "unparseable telemetry line: %s" line
       end
     done
   with End_of_file -> ());
  close_in ic;
  (!lines, !joins, !leaves)

let soak seed =
  let dir = tmpdir () in
  let path = Filename.concat dir "soak.chk" in
  let telem = Filename.concat dir "soak.telemetry.jsonl" in
  let schedule =
    Chaos.plan ~seed ~gens ~ranks:start_ranks ~trajectory ~events ~stall_s:0.4
      ~disk_failures:2 ()
  in
  let c = Chaos.count schedule in
  if Chaos.total schedule < events + 1 then
    fail "seed %d: schedule too small (%d events)" seed (Chaos.total schedule);
  let faults, membership = Supervisor.of_chaos schedule in
  (* The uninjected reference over the same initial shards (the
     in-process executor is bit-identical to the fault-free forked
     path, and far cheaper to run). *)
  let reference = Supervisor.run_local ~factory (base_params seed) in
  assert_finite seed reference;
  let p =
    {
      (base_params seed) with
      Supervisor.checkpoint = Some path;
      checkpoint_every = 5;
      checkpoint_keep = 2;
      telemetry = Some telem;
      telemetry_every = 4;
      faults;
      membership;
    }
  in
  let res = Supervisor.run ~factory p in
  (* 1. Completion + finite estimators within tolerance. *)
  assert_finite seed res;
  if abs_float (res.Supervisor.energy -. exact) > energy_tol then
    fail "seed %d: energy %.9f drifted from exact %.9f" seed
      res.Supervisor.energy exact;
  if abs_float (res.Supervisor.energy -. reference.Supervisor.energy)
     > energy_tol
  then
    fail "seed %d: injected energy %.9f vs reference %.9f" seed
      res.Supervisor.energy reference.Supervisor.energy;
  (* 2. No walker lost or duplicated by any membership transition. *)
  List.iter
    (fun m ->
      if m.Supervisor.m_walkers_before <> m.Supervisor.m_walkers_after then
        fail "seed %d: %s at gen %d lost walkers (%d -> %d)" seed
          m.Supervisor.m_kind m.Supervisor.m_gen m.Supervisor.m_walkers_before
          m.Supervisor.m_walkers_after)
    res.Supervisor.membership_log;
  (* 3. The whole membership plan landed and the trajectory was reached. *)
  if res.Supervisor.membership_skipped <> 0 then
    fail "seed %d: %d membership events skipped" seed
      res.Supervisor.membership_skipped;
  if res.Supervisor.joins <> c.Chaos.joins then
    fail "seed %d: %d joins scheduled, %d applied" seed c.Chaos.joins
      res.Supervisor.joins;
  if res.Supervisor.leaves <> c.Chaos.leaves then
    fail "seed %d: %d leaves scheduled, %d applied" seed c.Chaos.leaves
      res.Supervisor.leaves;
  if
    List.length res.Supervisor.membership_log
    <> c.Chaos.joins + c.Chaos.leaves
  then fail "seed %d: membership log incomplete" seed;
  let final_ranks = List.nth trajectory (List.length trajectory - 1) in
  if res.Supervisor.live_ranks <> final_ranks then
    fail "seed %d: trajectory should end at %d ranks, saw %d" seed final_ranks
      res.Supervisor.live_ranks;
  (* 4. Every fault surfaced in the supervisor's counters. *)
  if res.Supervisor.crashes < c.Chaos.kills then
    fail "seed %d: %d kills scheduled, only %d crashes seen" seed
      c.Chaos.kills res.Supervisor.crashes;
  if res.Supervisor.garbage_frames < c.Chaos.garbage then
    fail "seed %d: %d garbage frames scheduled, %d detected" seed
      c.Chaos.garbage res.Supervisor.garbage_frames;
  if c.Chaos.stalls > 0 && res.Supervisor.stragglers < c.Chaos.stalls then
    fail "seed %d: %d sub-heartbeat stalls scheduled, %d stragglers seen" seed
      c.Chaos.stalls res.Supervisor.stragglers;
  if res.Supervisor.ranks_failed <> [] then
    fail "seed %d: rank(s) abandoned despite the respawn budget" seed;
  (* 5. The telemetry stream is parseable end to end and carries every
     membership transition as its own record. *)
  let lines, tj, tl = count_telemetry_events telem in
  if lines = 0 then fail "seed %d: empty telemetry" seed;
  if tj <> c.Chaos.joins || tl <> c.Chaos.leaves then
    fail "seed %d: telemetry saw %d/%d joins, %d/%d leaves" seed tj
      c.Chaos.joins tl c.Chaos.leaves;
  Printf.printf
    "chaos seed %2d OK: %3d gens, %2d events (%d kill %d stall %d garbage %d \
     disk), %d joins %d leaves, E = %.9f (exact %.9f), %d respawns, gen p50 \
     %.1f ms p99 %.1f ms\n%!"
    seed gens (Chaos.total schedule) c.Chaos.kills c.Chaos.stalls
    c.Chaos.garbage c.Chaos.disk_full res.Supervisor.joins
    res.Supervisor.leaves res.Supervisor.energy exact res.Supervisor.respawns
    (1000. *. res.Supervisor.gen_p50_s)
    (1000. *. res.Supervisor.gen_p99_s);
  (seed, schedule, res)

(* Generation-latency comparison: the same straggler workload (periodic
   sub-heartbeat stalls) under classic lockstep vs deadline-budgeted
   barrier softening with walker stealing + async checkpoints. *)
let latency_run ~softened =
  let dir = tmpdir () in
  let path = Filename.concat dir "lat.chk" in
  let lat_gens = if long then 120 else 60 in
  let faults =
    (* One 100 ms stall every 8 generations, round-robin over ranks. *)
    List.init (lat_gens / 8) (fun i ->
        ((i mod start_ranks), (8 * i) + 4, Fault.Rank_stall 0.1))
  in
  let p =
    {
      (base_params 901) with
      Supervisor.generations = lat_gens;
      checkpoint = Some path;
      checkpoint_every = 5;
      checkpoint_keep = 2;
      faults;
      gen_deadline_ms = (if softened then 40 else 0);
      straggler_policy = Supervisor.Steal;
    }
  in
  let res = Supervisor.run ~factory p in
  assert_finite 901 res;
  res

let () =
  let survivals = List.map soak soak_seeds in
  let lockstep = latency_run ~softened:false in
  let softened = latency_run ~softened:true in
  Printf.printf
    "latency: lockstep p50 %.1f ms p99 %.1f ms | softened p50 %.1f ms p99 \
     %.1f ms (%d stragglers, %d steals)\n%!"
    (1000. *. lockstep.Supervisor.gen_p50_s)
    (1000. *. lockstep.Supervisor.gen_p99_s)
    (1000. *. softened.Supervisor.gen_p50_s)
    (1000. *. softened.Supervisor.gen_p99_s)
    softened.Supervisor.stragglers softened.Supervisor.steals;
  let seed_obj (seed, schedule, (res : Supervisor.result)) =
    let c = Chaos.count schedule in
    Jsonx.Obj
      [
        ("seed", Jsonx.Num (float_of_int seed));
        ("generations", Jsonx.Num (float_of_int gens));
        ("events", Jsonx.Num (float_of_int (Chaos.total schedule)));
        ("kills", Jsonx.Num (float_of_int c.Chaos.kills));
        ("stalls", Jsonx.Num (float_of_int c.Chaos.stalls));
        ("garbage", Jsonx.Num (float_of_int c.Chaos.garbage));
        ("disk_full", Jsonx.Num (float_of_int c.Chaos.disk_full));
        ("joins", Jsonx.Num (float_of_int res.Supervisor.joins));
        ("leaves", Jsonx.Num (float_of_int res.Supervisor.leaves));
        ("respawns", Jsonx.Num (float_of_int res.Supervisor.respawns));
        ("stragglers", Jsonx.Num (float_of_int res.Supervisor.stragglers));
        ("energy", Jsonx.Num res.Supervisor.energy);
        ("energy_exact", Jsonx.Num exact);
        ("gen_p50_s", Jsonx.Num res.Supervisor.gen_p50_s);
        ("gen_p99_s", Jsonx.Num res.Supervisor.gen_p99_s);
        ("survived", Jsonx.Bool true);
      ]
  in
  let lat (r : Supervisor.result) =
    Jsonx.Obj
      [
        ("gen_p50_s", Jsonx.Num r.Supervisor.gen_p50_s);
        ("gen_p99_s", Jsonx.Num r.Supervisor.gen_p99_s);
        ("stragglers", Jsonx.Num (float_of_int r.Supervisor.stragglers));
        ("steals", Jsonx.Num (float_of_int r.Supervisor.steals));
      ]
  in
  let bench =
    Jsonx.Obj
      [
        ("bench", Jsonx.Str "chaos_soak");
        ( "header",
          Jsonx.Obj
            [
              ("schema", Jsonx.Num 1.);
              ("precision", Jsonx.Str "f64");
              ("delay", Jsonx.Num 1.);
            ] );
        ("mode", Jsonx.Str (if long then "long" else "short"));
        ("survival", Jsonx.Arr (List.map seed_obj survivals));
        ( "latency",
          Jsonx.Obj [ ("lockstep", lat lockstep); ("softened", lat softened) ]
        );
      ]
  in
  let out =
    match Sys.getenv_opt "OQMC_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_chaos.json"
  in
  let oc = open_out out in
  output_string oc (Jsonx.to_string bench);
  output_char oc '\n';
  close_out oc;
  Printf.printf "chaos soak OK: %d seeds x %d generations, BENCH -> %s\n%!"
    (List.length soak_seeds) gens out
