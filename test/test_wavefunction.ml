open Oqmc_containers
open Oqmc_particle
open Oqmc_rng
open Oqmc_wavefunction
open Oqmc_workloads

(* Component-level tests: each wavefunction piece is checked against
   brute-force recomputation and finite differences, and the Ref/Current
   implementations are checked against each other. *)

module P = Precision.F64
module Ps = Particle_set.Make (P)
module W = Wfc.Make (P)
module AAref = Dt_aa_ref.Make (P)
module AAsoa = Dt_aa_soa.Make (P) (P)
module ABref = Dt_ab_ref.Make (P)
module ABsoa = Dt_ab_soa.Make (P) (P)
module J2 = Jastrow_two.Make (P) (P)
module J1 = Jastrow_one.Make (P) (P)
module Det = Slater_det.Make (P) (P)
module Twf = Trial_wavefunction.Make (P)

let checkf tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)

let lattice = Lattice.cubic 6.

let electrons ~seed n =
  let ps =
    Ps.create ~lattice
      [
        { Particle_set.name = "u"; charge = -1.; count = n / 2 };
        { Particle_set.name = "d"; charge = -1.; count = n - (n / 2) };
      ]
  in
  let rng = Xoshiro.create seed in
  Ps.randomize ps (fun () -> Xoshiro.uniform rng);
  (ps, rng)

let ions () =
  let io =
    Ps.create ~lattice
      [
        { Particle_set.name = "A"; charge = 4.; count = 2 };
        { Particle_set.name = "B"; charge = 6.; count = 2 };
      ]
  in
  Ps.set_all io
    [|
      Vec3.make 1. 1. 1.; Vec3.make 4. 4. 1.; Vec3.make 1. 4. 4.;
      Vec3.make 4. 1. 4.;
    |];
  io

let functors2 = Jastrow_sets.ee_set ~cutoff:2.9
let functors1 = [| Jastrow_sets.one_body ~depth:0.4 ~range:0.9 ~cutoff:2.9 ();
                   Jastrow_sets.one_body ~depth:0.6 ~range:0.7 ~cutoff:2.9 () |]

(* Build matching Ref and Current J2 components over the same electrons. *)
let j2_pair ps =
  let tref = AAref.create ps and tsoa = AAsoa.create ps in
  AAref.evaluate tref ps;
  AAsoa.evaluate tsoa ps;
  let jref = J2.create_ref ~table:tref ~functors:functors2 ps in
  let jopt = J2.create_opt ~table:tsoa ~functors:functors2 ps in
  ignore (jref.W.evaluate_log ps);
  ignore (jopt.W.evaluate_log ps);
  (tref, tsoa, jref, jopt)

let test_j2_log_agreement () =
  let ps, _ = electrons ~seed:1 10 in
  let _, _, jref, jopt = j2_pair ps in
  checkf 1e-10 "log psi agree" (jref.W.evaluate_log ps) (jopt.W.evaluate_log ps)

let test_j2_ratio_agreement () =
  let ps, rng = electrons ~seed:2 10 in
  let tref, tsoa, jref, jopt = j2_pair ps in
  for k = 0 to 9 do
    let pos =
      Vec3.add (Ps.get ps k)
        (Vec3.make (Xoshiro.gaussian rng *. 0.3) (Xoshiro.gaussian rng *. 0.3)
           (Xoshiro.gaussian rng *. 0.3))
    in
    AAsoa.prepare tsoa ps k;
    Ps.propose ps k pos;
    AAref.move tref ps k pos;
    AAsoa.move tsoa ps k pos;
    let r1 = jref.W.ratio ps k and r2 = jopt.W.ratio ps k in
    checkf 1e-10 "ratio" r1 r2;
    let r1g, g1 = jref.W.ratio_grad ps k in
    let r2g, g2 = jopt.W.ratio_grad ps k in
    checkf 1e-10 "ratio_grad r" r1g r2g;
    check_bool "ratio_grad g" true (Vec3.equal ~tol:1e-9 g1 g2);
    Ps.reject ps
  done

let test_j2_ratio_matches_log_difference () =
  (* ratio must equal exp(logψ(R') − logψ(R)) via brute recompute. *)
  let ps, _ = electrons ~seed:3 8 in
  let _, tsoa, _, jopt = j2_pair ps in
  let k = 3 in
  let oldpos = Ps.get ps k in
  let newpos = Vec3.add oldpos (Vec3.make 0.4 (-0.2) 0.3) in
  AAsoa.prepare tsoa ps k;
  Ps.propose ps k newpos;
  AAsoa.move tsoa ps k newpos;
  let r = jopt.W.ratio ps k in
  Ps.reject ps;
  (* recompute logs from scratch at both configurations *)
  let log_old = jopt.W.evaluate_log ps in
  Ps.set ps k newpos;
  AAsoa.evaluate tsoa ps;
  let log_new = jopt.W.evaluate_log ps in
  checkf 1e-9 "ratio = exp(dlog)" (exp (log_new -. log_old)) r

let test_j2_accept_consistency () =
  (* After a sequence of accepted moves the incremental state must match
     a from-scratch evaluation. *)
  let ps, rng = electrons ~seed:4 10 in
  let tref, tsoa, jref, jopt = j2_pair ps in
  for k = 0 to 9 do
    let pos =
      Vec3.add (Ps.get ps k)
        (Vec3.make (Xoshiro.gaussian rng *. 0.2) (Xoshiro.gaussian rng *. 0.2)
           (Xoshiro.gaussian rng *. 0.2))
    in
    AAsoa.prepare tsoa ps k;
    Ps.propose ps k pos;
    AAref.move tref ps k pos;
    AAsoa.move tsoa ps k pos;
    let r = jopt.W.ratio ps k in
    ignore (jref.W.ratio ps k);
    if r > 0.3 then begin
      jref.W.accept ps k;
      jopt.W.accept ps k;
      AAref.update tref k;
      AAsoa.accept tsoa k;
      Ps.accept ps
    end
    else Ps.reject ps
  done;
  (* grads from the incrementally maintained opt state *)
  let g_inc = jopt.W.grad ps 5 in
  AAref.evaluate tref ps;
  AAsoa.evaluate tsoa ps;
  let lref = jref.W.evaluate_log ps in
  let lopt = jopt.W.evaluate_log ps in
  checkf 1e-9 "logs equal after sweep" lref lopt;
  let g_fresh = jopt.W.grad ps 5 in
  check_bool "incremental grad matches fresh" true
    (Vec3.equal ~tol:1e-8 g_inc g_fresh)

let test_j2_grad_finite_difference () =
  let ps, _ = electrons ~seed:5 8 in
  let _, tsoa, _, jopt = j2_pair ps in
  let k = 2 in
  let g = jopt.W.grad ps k in
  let h = 1e-6 in
  let log_at pos =
    let saved = Ps.get ps k in
    Ps.set ps k pos;
    AAsoa.evaluate tsoa ps;
    let l = jopt.W.evaluate_log ps in
    Ps.set ps k saved;
    l
  in
  let p = Ps.get ps k in
  let fd d =
    (log_at (Vec3.add p d) -. log_at (Vec3.sub p d)) /. (2. *. h)
  in
  checkf 1e-5 "gx" (fd (Vec3.make h 0. 0.)) g.Vec3.x;
  checkf 1e-5 "gy" (fd (Vec3.make 0. h 0.)) g.Vec3.y;
  checkf 1e-5 "gz" (fd (Vec3.make 0. 0. h)) g.Vec3.z;
  (* restore table state *)
  AAsoa.evaluate tsoa ps;
  ignore (jopt.W.evaluate_log ps)

let test_j2_gl_laplacian_fd () =
  let ps, _ = electrons ~seed:6 6 in
  let _, tsoa, _, jopt = j2_pair ps in
  let gl = W.make_gl 6 in
  W.clear_gl gl;
  jopt.W.accumulate_gl ps gl;
  let k = 1 in
  let h = 1e-4 in
  let log_at pos =
    let saved = Ps.get ps k in
    Ps.set ps k pos;
    AAsoa.evaluate tsoa ps;
    let l = jopt.W.evaluate_log ps in
    Ps.set ps k saved;
    l
  in
  let p = Ps.get ps k in
  let l0 = log_at p in
  let lap_fd =
    (log_at (Vec3.add p (Vec3.make h 0. 0.))
    +. log_at (Vec3.sub p (Vec3.make h 0. 0.))
    +. log_at (Vec3.add p (Vec3.make 0. h 0.))
    +. log_at (Vec3.sub p (Vec3.make 0. h 0.))
    +. log_at (Vec3.add p (Vec3.make 0. 0. h))
    +. log_at (Vec3.sub p (Vec3.make 0. 0. h))
    -. (6. *. l0))
    /. (h *. h)
  in
  checkf 1e-3 "laplacian of log" lap_fd gl.W.glap.(k);
  AAsoa.evaluate tsoa ps;
  ignore (jopt.W.evaluate_log ps)

(* ---------- J1 ---------- *)

let j1_pair ps io =
  let tref = ABref.create ~sources:io ps in
  let tsoa = ABsoa.create ~sources:io ps in
  ABref.evaluate tref ps;
  ABsoa.evaluate tsoa ps;
  let jref = J1.create_ref ~table:tref ~functors:functors1 ~ions:io ps in
  let jopt = J1.create_opt ~table:tsoa ~functors:functors1 ~ions:io ps in
  ignore (jref.W.evaluate_log ps);
  ignore (jopt.W.evaluate_log ps);
  (tref, tsoa, jref, jopt)

let test_j1_agreement () =
  let ps, rng = electrons ~seed:7 8 in
  let io = ions () in
  let tref, tsoa, jref, jopt = j1_pair ps io in
  checkf 1e-10 "log" (jref.W.evaluate_log ps) (jopt.W.evaluate_log ps);
  for k = 0 to 7 do
    let pos =
      Vec3.add (Ps.get ps k) (Vec3.make (Xoshiro.gaussian rng *. 0.3) 0.1 0.)
    in
    Ps.propose ps k pos;
    ABref.move tref pos;
    ABsoa.move tsoa pos;
    let r1 = jref.W.ratio ps k and r2 = jopt.W.ratio ps k in
    checkf 1e-10 "ratio" r1 r2;
    let _, g1 = jref.W.ratio_grad ps k in
    let _, g2 = jopt.W.ratio_grad ps k in
    check_bool "grad" true (Vec3.equal ~tol:1e-9 g1 g2);
    Ps.reject ps
  done

let test_j1_grad_fd () =
  let ps, _ = electrons ~seed:8 6 in
  let io = ions () in
  let _, tsoa, _, jopt = j1_pair ps io in
  let k = 4 in
  let g = jopt.W.grad ps k in
  let h = 1e-6 in
  let log_at pos =
    let saved = Ps.get ps k in
    Ps.set ps k pos;
    ABsoa.evaluate tsoa ps;
    let l = jopt.W.evaluate_log ps in
    Ps.set ps k saved;
    l
  in
  let p = Ps.get ps k in
  let fd d = (log_at (Vec3.add p d) -. log_at (Vec3.sub p d)) /. (2. *. h) in
  checkf 1e-5 "gx" (fd (Vec3.make h 0. 0.)) g.Vec3.x;
  checkf 1e-5 "gz" (fd (Vec3.make 0. 0. h)) g.Vec3.z

(* ---------- SPO engines ---------- *)

let test_plane_wave_vgl_fd () =
  let spo = Spo_analytic.plane_waves ~lattice ~n_orb:7 in
  let vgl = Spo.make_vgl 7 in
  let out1 = Array.make 7 0. and out2 = Array.make 7 0. in
  let r = Vec3.make 1.1 2.7 0.4 in
  spo.Spo.eval_vgl r vgl;
  let h = 1e-6 in
  for m = 0 to 6 do
    spo.Spo.eval_v (Vec3.add r (Vec3.make h 0. 0.)) out1;
    spo.Spo.eval_v (Vec3.sub r (Vec3.make h 0. 0.)) out2;
    checkf 1e-5 "pw gx" ((out1.(m) -. out2.(m)) /. (2. *. h)) vgl.Spo.gx.(m)
  done

let test_harmonic_vgl_fd () =
  let spo = Spo_analytic.harmonic ~omega:1.1 ~n_orb:6 in
  let vgl = Spo.make_vgl 6 in
  let out1 = Array.make 6 0. and out2 = Array.make 6 0. in
  let r = Vec3.make 0.4 (-0.6) 0.2 in
  spo.Spo.eval_vgl r vgl;
  let h = 1e-5 in
  for m = 0 to 5 do
    spo.Spo.eval_v (Vec3.add r (Vec3.make 0. h 0.)) out1;
    spo.Spo.eval_v (Vec3.sub r (Vec3.make 0. h 0.)) out2;
    checkf 1e-4 "ho gy" ((out1.(m) -. out2.(m)) /. (2. *. h)) vgl.Spo.gy.(m)
  done;
  (* laplacian via eigenvalue: for HO eigenstates,
     −½∇²φ = (E − ½ω²r²)φ. *)
  let omega = 1.1 in
  let states = [| (0, 0, 0); (1, 0, 0); (0, 1, 0); (0, 0, 1) |] in
  Array.iteri
    (fun m (nx, ny, nz) ->
      let e = omega *. (float_of_int (nx + ny + nz) +. 1.5) in
      let expected =
        -2. *. (e -. (0.5 *. omega *. omega *. Vec3.norm2 r)) *. vgl.Spo.v.(m)
      in
      checkf 1e-8
        (Printf.sprintf "ho laplacian eigen m=%d" m)
        expected vgl.Spo.lap.(m))
    states

let test_bspline_spo_metric () =
  (* Non-cubic cell: the Cartesian gradients from the metric transform
     must match finite differences of the values. *)
  let lat = Lattice.orthorhombic 3. 5. 7. in
  let module B3 = Oqmc_spline.Bspline3d.Make (Precision.F64) in
  let module SpoB = Spo_bspline.Make (Precision.F64) in
  let table = B3.create ~nx:10 ~ny:10 ~nz:10 ~n_orb:2 in
  let rng = Xoshiro.create 9 in
  B3.fill table (fun ~orb:_ ~i:_ ~j:_ ~k:_ ->
      Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.);
  let spo = SpoB.create ~table ~lattice:lat in
  let vgl = Spo.make_vgl 2 in
  let o1 = Array.make 2 0. and o2 = Array.make 2 0. in
  let r = Vec3.make 1.3 2.9 5.1 in
  spo.Spo.eval_vgl r vgl;
  let h = 1e-5 in
  let fd m d =
    spo.Spo.eval_v (Vec3.add r d) o1;
    spo.Spo.eval_v (Vec3.sub r d) o2;
    (o1.(m) -. o2.(m)) /. (2. *. h)
  in
  for m = 0 to 1 do
    checkf 1e-4 "gx" (fd m (Vec3.make h 0. 0.)) vgl.Spo.gx.(m);
    checkf 1e-4 "gy" (fd m (Vec3.make 0. h 0.)) vgl.Spo.gy.(m);
    checkf 1e-4 "gz" (fd m (Vec3.make 0. 0. h)) vgl.Spo.gz.(m)
  done;
  (* laplacian via 6-point stencil *)
  let m = 0 in
  let v0 = vgl.Spo.v.(m) in
  let at d = spo.Spo.eval_v (Vec3.add r d) o1; o1.(m) in
  let lap_fd =
    (at (Vec3.make h 0. 0.) +. at (Vec3.make (-.h) 0. 0.)
    +. at (Vec3.make 0. h 0.) +. at (Vec3.make 0. (-.h) 0.)
    +. at (Vec3.make 0. 0. h) +. at (Vec3.make 0. 0. (-.h))
    -. (6. *. v0))
    /. (h *. h)
  in
  checkf 2e-2 "laplacian" lap_fd vgl.Spo.lap.(m)

(* ---------- Slater determinant ---------- *)

let det_setup seed =
  let ps, rng = electrons ~seed 8 in
  let spo = Spo_analytic.plane_waves ~lattice ~n_orb:4 in
  let d_up = Det.create ~spo ~first:0 ~count:4 ps in
  let d_dn = Det.create ~spo ~first:4 ~count:4 ps in
  ignore (d_up.W.evaluate_log ps);
  ignore (d_dn.W.evaluate_log ps);
  (ps, rng, d_up, d_dn)

let test_det_ratio_vs_log () =
  let ps, _, d_up, _ = det_setup 10 in
  let k = 2 in
  let oldpos = Ps.get ps k in
  let newpos = Vec3.add oldpos (Vec3.make 0.5 0.2 (-0.3)) in
  let log_old = d_up.W.evaluate_log ps in
  Ps.propose ps k newpos;
  let r = d_up.W.ratio ps k in
  Ps.reject ps;
  Ps.set ps k newpos;
  let log_new = d_up.W.evaluate_log ps in
  checkf 1e-8 "|ratio| = exp(dlog)" (exp (log_new -. log_old)) (abs_float r)

let test_det_out_of_group () =
  let ps, _, d_up, d_dn = det_setup 11 in
  Ps.propose ps 6 (Vec3.make 1. 1. 1.);
  checkf 1e-12 "up det ignores down move" 1. (d_up.W.ratio ps 6);
  check_bool "down det responds" true (abs_float (d_dn.W.ratio ps 6) <> 1.);
  Ps.reject ps

let test_det_accept_tracks () =
  let ps, rng, d_up, _ = det_setup 12 in
  (* accept several moves, then compare against a fresh recompute *)
  let log_running = ref (d_up.W.evaluate_log ps) in
  for k = 0 to 3 do
    let pos =
      Vec3.add (Ps.get ps k) (Vec3.make (Xoshiro.gaussian rng *. 0.2) 0.1 0.)
    in
    Ps.propose ps k pos;
    let r = d_up.W.ratio ps k in
    if abs_float r > 0.3 then begin
      d_up.W.accept ps k;
      Ps.accept ps;
      log_running := !log_running +. log (abs_float r)
    end
    else Ps.reject ps
  done;
  let fresh = d_up.W.evaluate_log ps in
  checkf 1e-8 "incremental log tracks" fresh !log_running

let test_det_grad_fd () =
  let ps, _, d_up, _ = det_setup 13 in
  let k = 1 in
  let g = d_up.W.grad ps k in
  let h = 1e-6 in
  let log_at pos =
    let saved = Ps.get ps k in
    Ps.set ps k pos;
    let l = d_up.W.evaluate_log ps in
    Ps.set ps k saved;
    l
  in
  let p = Ps.get ps k in
  let fd d = (log_at (Vec3.add p d) -. log_at (Vec3.sub p d)) /. (2. *. h) in
  checkf 1e-5 "gx" (fd (Vec3.make h 0. 0.)) g.Vec3.x;
  checkf 1e-5 "gy" (fd (Vec3.make 0. h 0.)) g.Vec3.y;
  ignore (d_up.W.evaluate_log ps)

let test_det_delayed_same_physics () =
  let ps, rng = electrons ~seed:14 8 in
  let spo = Spo_analytic.plane_waves ~lattice ~n_orb:4 in
  let d_sm = Det.create ~spo ~first:0 ~count:4 ps in
  let d_delayed = Det.create ~scheme:(Det.Delayed 3) ~spo ~first:0 ~count:4 ps in
  ignore (d_sm.W.evaluate_log ps);
  ignore (d_delayed.W.evaluate_log ps);
  for k = 0 to 3 do
    let pos =
      Vec3.add (Ps.get ps k) (Vec3.make (Xoshiro.gaussian rng *. 0.2) 0. 0.)
    in
    Ps.propose ps k pos;
    let r1 = d_sm.W.ratio ps k in
    let r2 = d_delayed.W.ratio ps k in
    checkf 1e-8 "delayed ratio" r1 r2;
    if abs_float r1 > 0.3 then begin
      d_sm.W.accept ps k;
      d_delayed.W.accept ps k;
      Ps.accept ps
    end
    else Ps.reject ps
  done;
  checkf 1e-7 "final logs" (d_sm.W.evaluate_log ps)
    (d_delayed.W.evaluate_log ps)

(* ---------- crowd-batched kernels ---------- *)

let same_f64 name a b =
  check_bool name true (Int64.bits_of_float a = Int64.bits_of_float b)

(* The batched Jastrow/determinant kernels must match the scalar
   component closures bit-for-bit: drive two identical replicas of each
   crowd slot, one through the batch entry points and one through the
   scalar W.t closures, over a random move/accept/reject sequence. *)
let test_j2_batch_identity () =
  let m = 3 in
  let mk seed =
    let ps, _ = electrons ~seed 8 in
    let t = AAsoa.create ps in
    AAsoa.evaluate t ps;
    (ps, t)
  in
  let psb = Array.init m (fun s -> mk (30 + s)) in
  let pss = Array.init m (fun s -> mk (30 + s)) in
  let sts =
    Array.map (fun (ps, t) -> J2.make_opt ~table:t ~functors:functors2 ps) psb
  in
  let jb = Array.map J2.opt_component sts in
  let js =
    Array.map (fun (ps, t) -> J2.create_opt ~table:t ~functors:functors2 ps) pss
  in
  Array.iteri (fun s (ps, _) -> ignore (jb.(s).W.evaluate_log ps)) psb;
  Array.iteri (fun s (ps, _) -> ignore (js.(s).W.evaluate_log ps)) pss;
  let rng = Xoshiro.create 9 in
  let ratio = Array.make m 1.
  and gx = Array.make m 0.
  and gy = Array.make m 0.
  and gz = Array.make m 0.
  and acc = Array.make m false in
  for _sweep = 1 to 3 do
    for k = 0 to 7 do
      (* prepare, then current-position gradient (engine stage order) *)
      for s = 0 to m - 1 do
        let psB, tB = psb.(s) and psS, tS = pss.(s) in
        AAsoa.prepare tB psB k;
        AAsoa.prepare tS psS k
      done;
      Array.fill gx 0 m 0.;
      Array.fill gy 0 m 0.;
      Array.fill gz 0 m 0.;
      J2.grad_batch sts ~k ~m ~gx ~gy ~gz;
      for s = 0 to m - 1 do
        let psS, _ = pss.(s) in
        let g = js.(s).W.grad psS k in
        same_f64 "j2 grad x" g.Vec3.x gx.(s);
        same_f64 "j2 grad y" g.Vec3.y gy.(s);
        same_f64 "j2 grad z" g.Vec3.z gz.(s)
      done;
      (* identical proposed moves on both replicas *)
      let dr =
        Array.init m (fun _ ->
            Vec3.make
              (Xoshiro.gaussian rng *. 0.4)
              (Xoshiro.gaussian rng *. 0.4)
              (Xoshiro.gaussian rng *. 0.4))
      in
      for s = 0 to m - 1 do
        let psB, tB = psb.(s) and psS, tS = pss.(s) in
        let np = Vec3.add (Ps.get psB k) dr.(s) in
        Ps.propose psB k np;
        Ps.propose psS k np;
        AAsoa.move tB psB k np;
        AAsoa.move tS psS k np;
        acc.(s) <- Xoshiro.uniform rng < 0.5
      done;
      Array.fill ratio 0 m 1.;
      Array.fill gx 0 m 0.;
      Array.fill gy 0 m 0.;
      Array.fill gz 0 m 0.;
      J2.ratio_grad_batch sts ~k ~m ~ratio ~gx ~gy ~gz;
      for s = 0 to m - 1 do
        let psS, _ = pss.(s) in
        let r, g = js.(s).W.ratio_grad psS k in
        same_f64 "j2 ratio" r ratio.(s);
        same_f64 "j2 rg x" g.Vec3.x gx.(s);
        same_f64 "j2 rg y" g.Vec3.y gy.(s);
        same_f64 "j2 rg z" g.Vec3.z gz.(s)
      done;
      J2.accept_batch sts ~k ~m ~acc;
      for s = 0 to m - 1 do
        let psB, tB = psb.(s) and psS, tS = pss.(s) in
        if acc.(s) then begin
          js.(s).W.accept psS k;
          AAsoa.accept tB k;
          AAsoa.accept tS k;
          Ps.accept psB;
          Ps.accept psS
        end
        else begin
          js.(s).W.reject psS k;
          Ps.reject psB;
          Ps.reject psS
        end
      done
    done
  done;
  (* incremental state survives the whole sequence identically *)
  for s = 0 to m - 1 do
    let psB, _ = psb.(s) and psS, _ = pss.(s) in
    same_f64 "j2 final log" (js.(s).W.evaluate_log psS)
      (jb.(s).W.evaluate_log psB)
  done

let test_j1_batch_identity () =
  let m = 3 in
  let mk seed =
    let ps, _ = electrons ~seed 8 in
    let io = ions () in
    let t = ABsoa.create ~sources:io ps in
    ABsoa.evaluate t ps;
    (ps, io, t)
  in
  let psb = Array.init m (fun s -> mk (60 + s)) in
  let pss = Array.init m (fun s -> mk (60 + s)) in
  let sts =
    Array.map
      (fun (ps, io, t) -> J1.make_opt ~table:t ~functors:functors1 ~ions:io ps)
      psb
  in
  let jb = Array.map J1.opt_component sts in
  let js =
    Array.map
      (fun (ps, io, t) ->
        J1.create_opt ~table:t ~functors:functors1 ~ions:io ps)
      pss
  in
  Array.iteri (fun s (ps, _, _) -> ignore (jb.(s).W.evaluate_log ps)) psb;
  Array.iteri (fun s (ps, _, _) -> ignore (js.(s).W.evaluate_log ps)) pss;
  let rng = Xoshiro.create 10 in
  let ratio = Array.make m 1.
  and gx = Array.make m 0.
  and gy = Array.make m 0.
  and gz = Array.make m 0.
  and acc = Array.make m false in
  for _sweep = 1 to 3 do
    for k = 0 to 7 do
      Array.fill gx 0 m 0.;
      Array.fill gy 0 m 0.;
      Array.fill gz 0 m 0.;
      J1.grad_batch sts ~k ~m ~gx ~gy ~gz;
      for s = 0 to m - 1 do
        let psS, _, _ = pss.(s) in
        let g = js.(s).W.grad psS k in
        same_f64 "j1 grad x" g.Vec3.x gx.(s);
        same_f64 "j1 grad y" g.Vec3.y gy.(s);
        same_f64 "j1 grad z" g.Vec3.z gz.(s)
      done;
      let dr =
        Array.init m (fun _ ->
            Vec3.make
              (Xoshiro.gaussian rng *. 0.4)
              (Xoshiro.gaussian rng *. 0.4)
              (Xoshiro.gaussian rng *. 0.4))
      in
      for s = 0 to m - 1 do
        let psB, _, tB = psb.(s) and psS, _, tS = pss.(s) in
        let np = Vec3.add (Ps.get psB k) dr.(s) in
        Ps.propose psB k np;
        Ps.propose psS k np;
        ABsoa.move tB np;
        ABsoa.move tS np;
        acc.(s) <- Xoshiro.uniform rng < 0.5
      done;
      Array.fill ratio 0 m 1.;
      Array.fill gx 0 m 0.;
      Array.fill gy 0 m 0.;
      Array.fill gz 0 m 0.;
      J1.ratio_grad_batch sts ~k ~m ~ratio ~gx ~gy ~gz;
      for s = 0 to m - 1 do
        let psS, _, _ = pss.(s) in
        let r, g = js.(s).W.ratio_grad psS k in
        same_f64 "j1 ratio" r ratio.(s);
        same_f64 "j1 rg x" g.Vec3.x gx.(s);
        same_f64 "j1 rg y" g.Vec3.y gy.(s);
        same_f64 "j1 rg z" g.Vec3.z gz.(s)
      done;
      J1.accept_batch sts ~k ~m ~acc;
      for s = 0 to m - 1 do
        let psB, _, tB = psb.(s) and psS, _, tS = pss.(s) in
        if acc.(s) then begin
          js.(s).W.accept psS k;
          ABsoa.accept tB k;
          ABsoa.accept tS k;
          Ps.accept psB;
          Ps.accept psS
        end
        else begin
          js.(s).W.reject psS k;
          Ps.reject psB;
          Ps.reject psS
        end
      done
    done
  done;
  for s = 0 to m - 1 do
    let psB, _, _ = psb.(s) and psS, _, _ = pss.(s) in
    same_f64 "j1 final log" (js.(s).W.evaluate_log psS)
      (jb.(s).W.evaluate_log psB)
  done

(* Drive one determinant through the crowd entry points
   (grad_into/ratio_grad_into/accept_move on a Det.state) and a replica
   through the scalar closures; every ratio/gradient must agree
   bit-for-bit, for Sherman-Morrison and for delayed-k updates. *)
let det_batch_identity ~scheme () =
  let ps_b, _ = electrons ~seed:44 8 in
  let ps_s, _ = electrons ~seed:44 8 in
  let spo = Spo_analytic.plane_waves ~lattice ~n_orb:4 in
  let st = Det.make ~scheme ~spo ~first:0 ~count:4 ps_b in
  let cb = Det.component st in
  let cs = Det.create ~scheme ~spo ~first:0 ~count:4 ps_s in
  ignore (cb.W.evaluate_log ps_b);
  ignore (cs.W.evaluate_log ps_s);
  let vgl = Spo.make_vgl 4 in
  let ratio = [| 1. |]
  and gx = [| 0. |]
  and gy = [| 0. |]
  and gz = [| 0. |] in
  let rng = Xoshiro.create 51 in
  for _sweep = 1 to 3 do
    for k = 0 to 7 do
      spo.Spo.eval_vgl (Ps.get ps_b k) vgl;
      gx.(0) <- 0.;
      gy.(0) <- 0.;
      gz.(0) <- 0.;
      Det.grad_into st vgl k ~s:0 ~gx ~gy ~gz;
      if k < 4 then begin
        let g = cs.W.grad ps_s k in
        same_f64 "det grad x" g.Vec3.x gx.(0);
        same_f64 "det grad y" g.Vec3.y gy.(0);
        same_f64 "det grad z" g.Vec3.z gz.(0)
      end
      else begin
        same_f64 "out-of-group grad x" 0. gx.(0);
        same_f64 "out-of-group grad y" 0. gy.(0);
        same_f64 "out-of-group grad z" 0. gz.(0)
      end;
      let np =
        Vec3.add (Ps.get ps_b k)
          (Vec3.make
             (Xoshiro.gaussian rng *. 0.3)
             (Xoshiro.gaussian rng *. 0.3)
             (Xoshiro.gaussian rng *. 0.3))
      in
      Ps.propose ps_b k np;
      Ps.propose ps_s k np;
      spo.Spo.eval_vgl np vgl;
      ratio.(0) <- 1.;
      gx.(0) <- 0.;
      gy.(0) <- 0.;
      gz.(0) <- 0.;
      Det.ratio_grad_into st vgl k ~s:0 ~ratio ~gx ~gy ~gz;
      let r, g = cs.W.ratio_grad ps_s k in
      same_f64 "det ratio" r ratio.(0);
      same_f64 "det rg x" g.Vec3.x gx.(0);
      same_f64 "det rg y" g.Vec3.y gy.(0);
      same_f64 "det rg z" g.Vec3.z gz.(0);
      if Xoshiro.uniform rng < 0.6 then begin
        Det.accept_move st k;
        cs.W.accept ps_s k;
        Ps.accept ps_b;
        Ps.accept ps_s
      end
      else begin
        cb.W.reject ps_b k;
        cs.W.reject ps_s k;
        Ps.reject ps_b;
        Ps.reject ps_s
      end
    done
  done;
  same_f64 "det final log" (cs.W.evaluate_log ps_s) (cb.W.evaluate_log ps_b)

let test_det_batch_identity_sm = det_batch_identity ~scheme:Det.Sherman_morrison

let test_det_batch_identity_delayed =
  det_batch_identity ~scheme:(Det.Delayed 3)

(* Delayed-k sweep: every delay rank must track a fresh LU recompute
   through a long random accept/reject sequence. *)
let test_det_delayed_k_sweep () =
  List.iter
    (fun kd ->
      let ps, rng = electrons ~seed:(70 + kd) 8 in
      let spo = Spo_analytic.plane_waves ~lattice ~n_orb:4 in
      let scheme = if kd = 1 then Det.Sherman_morrison else Det.Delayed kd in
      let d = Det.create ~scheme ~spo ~first:0 ~count:4 ps in
      let log_running = ref (d.W.evaluate_log ps) in
      for _sweep = 1 to 4 do
        for k = 0 to 3 do
          let np =
            Vec3.add (Ps.get ps k)
              (Vec3.make
                 (Xoshiro.gaussian rng *. 0.3)
                 (Xoshiro.gaussian rng *. 0.3)
                 (Xoshiro.gaussian rng *. 0.3))
          in
          Ps.propose ps k np;
          let r = d.W.ratio ps k in
          if abs_float r > 0.3 then begin
            d.W.accept ps k;
            Ps.accept ps;
            log_running := !log_running +. log (abs_float r)
          end
          else begin
            d.W.reject ps k;
            Ps.reject ps
          end
        done
      done;
      (* fresh LU recompute at the final configuration *)
      checkf 1e-8
        (Printf.sprintf "delay %d tracks LU" kd)
        (d.W.evaluate_log ps) !log_running)
    [ 1; 2; 4; 8 ]

(* ---------- mixed-precision drift bounds ---------- *)

module J2_32 = Jastrow_two.Make (P) (Precision.F32)
module J1_32 = Jastrow_one.Make (P) (Precision.F32)
module Det32 = Slater_det.Make (P) (Precision.F32)

(* f32 distance rows + f32-narrowed spline coefficients (the
   precision_dt and precision_jastrow knobs together) against the pure
   f64 components over a mirrored PbyP sweep.  Storage rounds once per
   element while every sum stays double, so log and ratio drift stay
   within a few f32 roundings of the pair terms; the bound here is the
   measured envelope that the production watchdog audit arms against. *)
let test_jastrow_f32_drift () =
  let n = 10 in
  let ps64, _ = electrons ~seed:81 n in
  let ps32, rng = electrons ~seed:81 n in
  let io64 = ions () and io32 = ions () in
  let t64 = AAsoa.create ps64 and t32 = J2_32.Dsoa.create ps32 in
  AAsoa.evaluate t64 ps64;
  J2_32.Dsoa.evaluate t32 ps32;
  let ab64 = ABsoa.create ~sources:io64 ps64 in
  let ab32 = J1_32.Dsoa.create ~sources:io32 ps32 in
  ABsoa.evaluate ab64 ps64;
  J1_32.Dsoa.evaluate ab32 ps32;
  let narrow = Oqmc_spline.Cubic_spline_1d.narrow in
  let j2_64 = J2.create_opt ~table:t64 ~functors:functors2 ps64 in
  let j2_32 =
    J2_32.create_opt ~table:t32
      ~functors:(Array.map (Array.map narrow) functors2)
      ps32
  in
  let j1_64 = J1.create_opt ~table:ab64 ~functors:functors1 ~ions:io64 ps64 in
  let j1_32 =
    J1_32.create_opt ~table:ab32
      ~functors:(Array.map narrow functors1)
      ~ions:io32 ps32
  in
  let tol = 1e-4 in
  checkf tol "j2 initial log" (j2_64.W.evaluate_log ps64)
    (j2_32.W.evaluate_log ps32);
  checkf tol "j1 initial log" (j1_64.W.evaluate_log ps64)
    (j1_32.W.evaluate_log ps32);
  for k = 0 to n - 1 do
    let np =
      Vec3.add (Ps.get ps64 k)
        (Vec3.make
           (Xoshiro.gaussian rng *. 0.3)
           (Xoshiro.gaussian rng *. 0.3)
           (Xoshiro.gaussian rng *. 0.3))
    in
    AAsoa.prepare t64 ps64 k;
    J2_32.Dsoa.prepare t32 ps32 k;
    Ps.propose ps64 k np;
    Ps.propose ps32 k np;
    AAsoa.move t64 ps64 k np;
    J2_32.Dsoa.move t32 ps32 k np;
    ABsoa.move ab64 np;
    J1_32.Dsoa.move ab32 np;
    checkf tol "j2 ratio" (j2_64.W.ratio ps64 k) (j2_32.W.ratio ps32 k);
    checkf tol "j1 ratio" (j1_64.W.ratio ps64 k) (j1_32.W.ratio ps32 k);
    if k mod 2 = 0 then begin
      j2_64.W.accept ps64 k;
      j2_32.W.accept ps32 k;
      j1_64.W.accept ps64 k;
      j1_32.W.accept ps32 k;
      AAsoa.accept t64 k;
      J2_32.Dsoa.accept t32 k;
      ABsoa.accept ab64 k;
      J1_32.Dsoa.accept ab32 k;
      Ps.accept ps64;
      Ps.accept ps32
    end
    else begin
      j2_64.W.reject ps64 k;
      j2_32.W.reject ps32 k;
      j1_64.W.reject ps64 k;
      j1_32.W.reject ps32 k;
      Ps.reject ps64;
      Ps.reject ps32
    end
  done;
  checkf tol "j2 final log" (j2_64.W.evaluate_log ps64)
    (j2_32.W.evaluate_log ps32);
  checkf tol "j1 final log" (j1_64.W.evaluate_log ps64)
    (j1_32.W.evaluate_log ps32)

(* f32 inverse/panel storage (the precision_inv knob) against the f64
   determinant over a mirrored accept/reject sweep, for both the
   Sherman-Morrison and the delayed scheme: B, the Slater matrix and
   the delayed panels narrow while every dot and update accumulates in
   double, so PbyP ratios track within a small multiple of f32 epsilon
   and the double-precision recompute anchors the final log. *)
let test_det_f32_inverse_drift () =
  List.iter
    (fun kd ->
      let ps64, rng = electrons ~seed:(90 + kd) 8 in
      let ps32, _ = electrons ~seed:(90 + kd) 8 in
      let spo = Spo_analytic.plane_waves ~lattice ~n_orb:4 in
      let scheme64 =
        if kd = 1 then Det.Sherman_morrison else Det.Delayed kd
      in
      let scheme32 =
        if kd = 1 then Det32.Sherman_morrison else Det32.Delayed kd
      in
      let d64 = Det.create ~scheme:scheme64 ~spo ~first:0 ~count:4 ps64 in
      let d32 = Det32.create ~scheme:scheme32 ~spo ~first:0 ~count:4 ps32 in
      ignore (d64.W.evaluate_log ps64);
      ignore (d32.W.evaluate_log ps32);
      for _sweep = 1 to 3 do
        for k = 0 to 3 do
          let np =
            Vec3.add (Ps.get ps64 k)
              (Vec3.make
                 (Xoshiro.gaussian rng *. 0.3)
                 (Xoshiro.gaussian rng *. 0.3)
                 (Xoshiro.gaussian rng *. 0.3))
          in
          Ps.propose ps64 k np;
          Ps.propose ps32 k np;
          let r64 = d64.W.ratio ps64 k and r32 = d32.W.ratio ps32 k in
          check_bool
            (Printf.sprintf "delay %d ratio drift" kd)
            true
            (abs_float (r64 -. r32) <= 1e-4 *. (1. +. abs_float r64));
          if abs_float r64 > 0.3 then begin
            d64.W.accept ps64 k;
            d32.W.accept ps32 k;
            Ps.accept ps64;
            Ps.accept ps32
          end
          else begin
            d64.W.reject ps64 k;
            d32.W.reject ps32 k;
            Ps.reject ps64;
            Ps.reject ps32
          end
        done
      done;
      checkf 1e-4
        (Printf.sprintf "delay %d final log drift" kd)
        (d64.W.evaluate_log ps64)
        (d32.W.evaluate_log ps32))
    [ 1; 3 ]

(* ---------- TrialWaveFunction composition ---------- *)

let test_twf_product () =
  let ps, _ = electrons ~seed:15 8 in
  let tsoa = AAsoa.create ps in
  AAsoa.evaluate tsoa ps;
  let spo = Spo_analytic.plane_waves ~lattice ~n_orb:4 in
  let d_up = Det.create ~spo ~first:0 ~count:4 ps in
  let d_dn = Det.create ~spo ~first:4 ~count:4 ps in
  let j2 = J2.create_opt ~table:tsoa ~functors:functors2 ps in
  let twf = Twf.create [ d_up; d_dn; j2 ] in
  let log_total = Twf.evaluate_log twf ps in
  let sum =
    d_up.W.evaluate_log ps +. d_dn.W.evaluate_log ps
    +. j2.W.evaluate_log ps
  in
  checkf 1e-10 "log is a sum" sum log_total;
  let k = 5 in
  AAsoa.prepare tsoa ps k;
  Ps.propose ps k (Vec3.add (Ps.get ps k) (Vec3.make 0.2 0.1 0.));
  AAsoa.move tsoa ps k (Ps.active_pos ps);
  let r = Twf.ratio twf ps k in
  let product =
    d_up.W.ratio ps k *. d_dn.W.ratio ps k *. j2.W.ratio ps k
  in
  checkf 1e-10 "ratio is a product" product r;
  Ps.reject ps

let () =
  Alcotest.run "wavefunction"
    [
      ( "jastrow2",
        [
          Alcotest.test_case "log agreement" `Quick test_j2_log_agreement;
          Alcotest.test_case "ratio agreement" `Quick test_j2_ratio_agreement;
          Alcotest.test_case "ratio = dlog" `Quick
            test_j2_ratio_matches_log_difference;
          Alcotest.test_case "accept consistency" `Quick
            test_j2_accept_consistency;
          Alcotest.test_case "grad fd" `Quick test_j2_grad_finite_difference;
          Alcotest.test_case "laplacian fd" `Quick test_j2_gl_laplacian_fd;
        ] );
      ( "jastrow1",
        [
          Alcotest.test_case "agreement" `Quick test_j1_agreement;
          Alcotest.test_case "grad fd" `Quick test_j1_grad_fd;
        ] );
      ( "spo",
        [
          Alcotest.test_case "plane wave fd" `Quick test_plane_wave_vgl_fd;
          Alcotest.test_case "harmonic fd + eigen" `Quick test_harmonic_vgl_fd;
          Alcotest.test_case "bspline metric" `Quick test_bspline_spo_metric;
        ] );
      ( "slater",
        [
          Alcotest.test_case "ratio vs log" `Quick test_det_ratio_vs_log;
          Alcotest.test_case "out of group" `Quick test_det_out_of_group;
          Alcotest.test_case "accept tracks" `Quick test_det_accept_tracks;
          Alcotest.test_case "grad fd" `Quick test_det_grad_fd;
          Alcotest.test_case "delayed same physics" `Quick
            test_det_delayed_same_physics;
          Alcotest.test_case "delayed k sweep vs LU" `Quick
            test_det_delayed_k_sweep;
        ] );
      ( "crowd_batch",
        [
          Alcotest.test_case "j2 batch bit-identical" `Quick
            test_j2_batch_identity;
          Alcotest.test_case "j1 batch bit-identical" `Quick
            test_j1_batch_identity;
          Alcotest.test_case "det batch bit-identical (SM)" `Quick
            test_det_batch_identity_sm;
          Alcotest.test_case "det batch bit-identical (delayed)" `Quick
            test_det_batch_identity_delayed;
        ] );
      ( "mixed_precision",
        [
          Alcotest.test_case "jastrow f32 drift bounded" `Quick
            test_jastrow_f32_drift;
          Alcotest.test_case "inverse f32 drift bounded" `Quick
            test_det_f32_inverse_drift;
        ] );
      ("twf", [ Alcotest.test_case "product" `Quick test_twf_product ]);
    ]
