(* Serve-layer unit + property tests: admission queue semantics,
   crash-journal replay under torn tails, deck canonicalization, result
   cache integrity, and protocol codec roundtrips.  The daemon itself
   is exercised end to end by serve_smoke.ml / serve_soak.ml. *)

open Oqmc_serve
module Input = Oqmc_core.Input
module Jsonx = Oqmc_obs.Jsonx

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let tmpdir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "oqmc-serve-test.%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let fresh =
  let n = ref 0 in
  fun base ->
    incr n;
    Filename.concat tmpdir (Printf.sprintf "%s.%d" base !n)

(* ---------- queue semantics ---------- *)

let test_queue_priority () =
  let q = Jqueue.create ~bound:16 () in
  let push c p v =
    match Jqueue.push q ~client:c ~priority:p v with
    | Ok pos -> pos
    | Error e -> Alcotest.failf "unexpected rejection: %s" e
  in
  check_int "first lands at 1" 1 (push "a" 0 "low");
  check_int "urgent jumps the line" 1 (push "a" 5 "urgent");
  check_int "mid sits behind urgent" 2 (push "a" 1 "mid");
  check_bool "pop order: urgent" true (Jqueue.pop q = Some "urgent");
  check_bool "pop order: mid" true (Jqueue.pop q = Some "mid");
  check_bool "pop order: low" true (Jqueue.pop q = Some "low");
  check_bool "drained" true (Jqueue.pop q = None)

let test_queue_fairness () =
  (* One client floods five jobs before a second client submits two;
     at equal priority the scheduler must interleave, not starve. *)
  let q = Jqueue.create ~bound:16 () in
  let push c v =
    match Jqueue.push q ~client:c ~priority:0 v with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "unexpected rejection: %s" e
  in
  List.iter (fun v -> push "flood" v) [ "f1"; "f2"; "f3"; "f4"; "f5" ];
  push "meek" "m1";
  push "meek" "m2";
  let order = List.init 7 (fun _ -> Option.get (Jqueue.pop q)) in
  Alcotest.(check (list string))
    "flood interleaves with meek"
    [ "f1"; "m1"; "f2"; "m2"; "f3"; "f4"; "f5" ]
    order;
  check_int "flood served" 5 (Jqueue.served q "flood");
  check_int "meek served" 2 (Jqueue.served q "meek")

let test_queue_fairness_respects_priority () =
  let q = Jqueue.create ~bound:16 () in
  let push c p v = Jqueue.push q ~client:c ~priority:p v |> Result.get_ok in
  ignore (push "flood" 3 "f-hi");
  ignore (push "meek" 0 "m-lo");
  ignore (push "flood" 3 "f-hi2");
  (* Fairness only breaks ties: priority still dominates. *)
  Alcotest.(check (list string))
    "priority beats fairness"
    [ "f-hi"; "f-hi2"; "m-lo" ]
    (List.init 3 (fun _ -> Option.get (Jqueue.pop q)))

let test_queue_bound () =
  let q = Jqueue.create ~bound:3 () in
  let push v = Jqueue.push q ~client:"c" ~priority:0 v in
  List.iter (fun v -> ignore (Result.get_ok (push v))) [ "1"; "2"; "3" ];
  check_bool "full" true (Jqueue.is_full q);
  (match push "4" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "push above the bound must be rejected");
  check_int "rejection does not grow the queue" 3 (Jqueue.length q);
  ignore (Jqueue.pop q);
  (match push "4" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "slot freed but still rejected: %s" e);
  check_bool "invalid bound" true
    (try
       ignore (Jqueue.create ~bound:0 ());
       false
     with Invalid_argument _ -> true)

let test_queue_remove () =
  let q = Jqueue.create ~bound:8 () in
  let push v = ignore (Result.get_ok (Jqueue.push q ~client:"c" ~priority:0 v)) in
  List.iter push [ "a"; "b"; "a" ];
  check_bool "removes oldest match" true (Jqueue.remove q (( = ) "a") = Some "a");
  Alcotest.(check (list string)) "second a survives" [ "b"; "a" ] (Jqueue.to_list q);
  check_bool "no match" true (Jqueue.remove q (( = ) "zzz") = None)

(* ---------- journal ---------- *)

let mk_spec ?(id = "j0001") ?(client = "alice") ?(priority = 0)
    ?(deadline_s = 0.) ?(retries = 2) () =
  {
    Job.id;
    client;
    deck = "method = vmc\nworkload = harmonic\n";
    hash = "00112233445566778899aabbccddeeff";
    priority;
    deadline_s;
    retries;
    submitted_at = 123.0625;
  }

let sample_records =
  [
    Journal.Submit (mk_spec ());
    Journal.Start { id = "j0001"; attempt = 1; pid = 4242; t = 124.5 };
    Journal.Submit (mk_spec ~id:"j0002" ~client:"bob" ~priority:3 ());
    Journal.Start { id = "j0001"; attempt = 2; pid = 4243; t = 125.5 };
    Journal.Suspend { id = "j0001"; t = 126. };
    Journal.Done { id = "j0002"; hash = "deadbeef"; t = 127. };
    Journal.Submit (mk_spec ~id:"j0003" ~client:"eve" ());
    Journal.Failed { id = "j0003"; reason = "boom"; t = 128. };
    Journal.Rejected
      { id = "j0004"; client = "eve"; reason = "queue full"; t = 129. };
    Journal.Cancelled { id = "j0001"; t = 130. };
  ]

let write_journal path records =
  let j = Journal.open_ path in
  List.iter (Journal.append j) records;
  Journal.close j

let test_journal_roundtrip () =
  let path = fresh "journal" in
  write_journal path sample_records;
  let got = Journal.replay path in
  check_int "all records back" (List.length sample_records) (List.length got);
  List.iter2
    (fun a b ->
      match (a, b) with
      | Journal.Submit sa, Journal.Submit sb ->
          check_str "spec id" sa.Job.id sb.Job.id;
          check_str "spec deck" sa.Job.deck sb.Job.deck;
          check_bool "spec submitted_at bit-exact" true
            (sa.Job.submitted_at = sb.Job.submitted_at)
      | ra, rb -> check_bool "record equal" true (ra = rb))
    sample_records got;
  check_bool "missing file is empty" true (Journal.replay (fresh "absent") = [])

(* SIGKILL between any two bytes of the journal: the replay of every
   byte-prefix must be a prefix of the full record list — a torn tail
   is "never written", never a corrupted or duplicated record. *)
let test_journal_torn_tail () =
  let path = fresh "journal" in
  write_journal path sample_records;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let n_full = List.length (Journal.replay path) in
  check_int "sanity: full replay" (List.length sample_records) n_full;
  let prefix_path = fresh "torn" in
  let last = ref (-1) in
  for len = 0 to String.length full do
    Out_channel.with_open_bin prefix_path (fun oc ->
        Out_channel.output_string oc (String.sub full 0 len));
    let got = Journal.replay prefix_path in
    let n = List.length got in
    check_bool "replay count monotone" true (n >= !last);
    last := max !last n;
    check_bool "replay is a prefix" true
      (got = List.filteri (fun i _ -> i < n) sample_records)
  done;
  check_int "final prefix is everything" n_full !last;
  (* A flipped byte mid-line must also stop the replay, not invent a
     record. *)
  let corrupt = Bytes.of_string full in
  Bytes.set corrupt (String.length full / 2) '\xff';
  Out_channel.with_open_bin prefix_path (fun oc ->
      Out_channel.output_bytes oc corrupt);
  check_bool "bit flip truncates, never corrupts" true
    (let got = Journal.replay prefix_path in
     let n = List.length got in
     n < n_full && got = List.filteri (fun i _ -> i < n) sample_records)

let test_journal_recover () =
  let r = Journal.recover sample_records in
  (* j0001: submitted, started twice, suspended once, cancelled (terminal).
     j0002: done.  j0003: failed.  j0004: rejected.  Nothing pending. *)
  check_int "nothing pending" 0 (List.length r.Journal.r_pending);
  check_int "four terminals" 4 (List.length r.Journal.r_terminal);
  check_bool "j0002 done with hash" true
    (List.assoc "j0002" r.Journal.r_terminal = Journal.Tdone "deadbeef");
  check_bool "j0003 failed" true
    (List.assoc "j0003" r.Journal.r_terminal = Journal.Tfailed "boom");
  check_bool "j0004 rejected" true
    (List.assoc "j0004" r.Journal.r_terminal
    = Journal.Trejected "queue full");
  check_bool "j0001 cancelled" true
    (List.assoc "j0001" r.Journal.r_terminal = Journal.Tcancelled);
  check_int "next seq past the largest id" 5 r.Journal.r_next_seq;
  (* Drop the terminal records: j0001 pending with one consumed attempt
     (two starts minus one suspend), j0003 pending untouched. *)
  let open_records =
    List.filter
      (function
        | Journal.Cancelled _ | Journal.Failed _ -> false | _ -> true)
      sample_records
  in
  let r = Journal.recover open_records in
  (match r.Journal.r_pending with
  | [ p1; p3 ] ->
      check_str "j0001 pending" "j0001" p1.Journal.p_spec.Job.id;
      check_int "suspend refunds the attempt" 1 p1.Journal.p_attempts;
      check_bool "deadline anchor survives" true
        (p1.Journal.p_first_start = 124.5);
      check_int "suspended runner has no stale pid" 0 p1.Journal.p_stale_pid;
      check_str "j0003 pending" "j0003" p3.Journal.p_spec.Job.id;
      check_int "never started" 0 p3.Journal.p_attempts
  | l -> Alcotest.failf "expected 2 pending, got %d" (List.length l));
  (* An interrupted Start with no Suspend leaves a stale pid to kill. *)
  let r =
    Journal.recover
      [
        Journal.Submit (mk_spec ());
        Journal.Start { id = "j0001"; attempt = 1; pid = 777; t = 1. };
      ]
  in
  match r.Journal.r_pending with
  | [ p ] ->
      check_int "stale pid surfaces" 777 p.Journal.p_stale_pid;
      check_int "crash consumed the attempt" 1 p.Journal.p_attempts
  | _ -> Alcotest.fail "expected 1 pending"

let test_journal_compact () =
  let open_records =
    List.filter
      (function
        | Journal.Cancelled _ | Journal.Failed _ -> false | _ -> true)
      sample_records
  in
  let before = Journal.recover open_records in
  let path = fresh "compacted" in
  Journal.compact ~path before;
  let after = Journal.recover (Journal.replay path) in
  check_int "terminal history dropped" 0 (List.length after.Journal.r_terminal);
  check_int "pending preserved" 2 (List.length after.Journal.r_pending);
  List.iter2
    (fun (a : Journal.pending) (b : Journal.pending) ->
      check_str "pending id" a.Journal.p_spec.Job.id b.Journal.p_spec.Job.id;
      check_int "consumed budget preserved" a.Journal.p_attempts
        b.Journal.p_attempts;
      check_bool "deadline anchor preserved" true
        (a.Journal.p_first_start = b.Journal.p_first_start);
      check_int "synthetic start carries no pid" 0 b.Journal.p_stale_pid)
    before.Journal.r_pending after.Journal.r_pending;
  (* Compaction drops terminal history, so the id counter only has to
     stay ahead of every job that is still alive. *)
  check_int "seq counter covers the pending ids" 4 after.Journal.r_next_seq

(* ---------- deck canonicalization ---------- *)

let base_deck =
  [
    ("method", "dmc");
    ("workload", "harmonic");
    ("walkers", "32");
    ("blocks", "2");
    ("steps", "5");
    ("tau", "0.01");
    ("seed", "42");
    ("domains", "2");
    ("crowd", "4");
    ("delay", "2");
  ]

let render pairs =
  String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s = %s\n" k v) pairs)

let hash_of pairs = Input.deck_hash (Input.parse_string (render pairs))

let test_canonical_invariance () =
  let h0 = hash_of base_deck in
  (* Key order is meaningless. *)
  check_str "reversed key order" h0 (hash_of (List.rev base_deck));
  (* Comments, blank lines and whitespace are meaningless. *)
  let noisy =
    "# production run\n\n"
    ^ String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf "  %s=%s   # knob\n" k v) base_deck)
    ^ "\n# trailing note\n"
  in
  check_str "comments and whitespace" h0
    (Input.deck_hash (Input.parse_string noisy));
  (* Operational knobs (output paths, cadence, progress) don't change
     the physics and must share the cache entry. *)
  let operational =
    base_deck
    @ [
        ("checkpoint", "/tmp/ck"); ("checkpoint_every", "3");
        ("telemetry", "/tmp/t.jsonl"); ("trace", "/tmp/t.json");
        ("progress", "true");
      ]
  in
  check_str "operational knobs don't shift the hash" h0 (hash_of operational);
  (* Decimal formatting of a float is meaningless; its value is not. *)
  let retau v = List.map (fun (k, x) -> (k, if k = "tau" then v else x)) base_deck in
  check_str "tau reformatted" h0 (hash_of (retau "1e-2"));
  check_bool "tau changed" true (h0 <> hash_of (retau "0.02"))

let test_canonical_sensitivity () =
  let h0 = hash_of base_deck in
  let override k v =
    List.map (fun (k', x) -> (k', if k' = k then v else x)) base_deck
  in
  List.iter
    (fun (k, v) ->
      check_bool (Printf.sprintf "%s = %s changes the hash" k v) true
        (h0 <> hash_of (override k v)))
    [
      ("method", "vmc"); ("workload", "hydrogen"); ("walkers", "64");
      ("blocks", "3"); ("steps", "7"); ("tau", "0.02"); ("seed", "43");
      ("domains", "4"); ("crowd", "8"); ("delay", "4");
    ];
  (* Additive physics knobs matter too. *)
  List.iter
    (fun (k, v) ->
      check_bool (Printf.sprintf "%s = %s changes the hash" k v) true
        (h0 <> hash_of (base_deck @ [ (k, v) ])))
    [
      ("precision", "f32"); ("nlpp", "true"); ("ranks", "3");
      (* load-level exchange planning changes which walkers move where,
         so it cannot share a cache entry with the count-level default *)
      ("plan", "load");
    ];
  (* ... while spelling out the count default is a no-op. *)
  check_str "explicit plan = count keeps the hash" h0
    (hash_of (base_deck @ [ ("plan", "count") ]))

let prop_canonical_shuffle =
  (* Property: ANY permutation of the deck lines, with random comment
     and blank-line interleavings, hashes identically. *)
  let open QCheck in
  Test.make ~count:100 ~name:"canonical form is order/comment invariant"
    (pair (int_bound 1_000_000) (list_of_size (Gen.return 6) small_nat))
    (fun (seed, pads) ->
      let st = Random.State.make [| seed |] in
      let shuffled =
        List.map (fun kv -> (Random.State.bits st, kv)) base_deck
        |> List.sort compare |> List.map snd
      in
      let noise i =
        match List.nth_opt pads (i mod 6) with
        | Some n when n mod 3 = 0 -> "# noise\n"
        | Some n when n mod 3 = 1 -> "\n"
        | _ -> ""
      in
      let text =
        String.concat ""
          (List.mapi
             (fun i (k, v) -> noise i ^ Printf.sprintf "%s = %s\n" k v)
             shuffled)
      in
      Input.deck_hash (Input.parse_string text) = hash_of base_deck)

(* ---------- result cache ---------- *)

let mk_outcome ?(drained = false) () =
  {
    Job.energy = 16.0;
    error = 1.25e-3;
    variance = 0x1.fp-3;
    acceptance = 0.987654321;
    series = [| 15.9; 16.1; nan; infinity; -0.0 |];
    gens = 10;
    drained;
    resumed_from = 3;
    wall_s = 2.5;
  }

let same_float a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let test_cache_roundtrip () =
  let dir = fresh "cache" in
  Unix.mkdir dir 0o755;
  let hash = "abcdef0123456789" in
  let o = mk_outcome () in
  check_bool "empty dir misses" true (Cache.lookup ~dir ~hash = None);
  Cache.store ~dir ~hash o;
  (match Cache.lookup ~dir ~hash with
  | None -> Alcotest.fail "stored entry must hit"
  | Some got ->
      check_bool "energy bit-exact" true (same_float o.Job.energy got.Job.energy);
      check_int "series length" 5 (Array.length got.Job.series);
      Array.iteri
        (fun i x ->
          check_bool
            (Printf.sprintf "series[%d] bit-exact (nan/inf/-0. too)" i)
            true
            (same_float x got.Job.series.(i)))
        o.Job.series;
      check_int "resumed_from" 3 got.Job.resumed_from);
  Alcotest.(check (list string)) "entries lists the hash" [ hash ] (Cache.entries ~dir);
  (* Partial (drained) results must never be cached. *)
  check_bool "drained store rejected" true
    (try
       Cache.store ~dir ~hash:"feedface" (mk_outcome ~drained:true ());
       false
     with Invalid_argument _ -> true);
  check_bool "bad hash rejected" true
    (try
       Cache.store ~dir ~hash:"../escape" (mk_outcome ());
       false
     with Invalid_argument _ -> true)

let test_cache_corruption_heals () =
  let dir = fresh "cache" in
  Unix.mkdir dir 0o755;
  let hash = "abcdef0123456789" in
  Cache.store ~dir ~hash (mk_outcome ());
  let file = Filename.concat dir hash in
  let body = In_channel.with_open_bin file In_channel.input_all in
  let corrupt = Bytes.of_string body in
  Bytes.set corrupt (Bytes.length corrupt / 3) '\xee';
  Out_channel.with_open_bin file (fun oc -> Out_channel.output_bytes oc corrupt);
  check_bool "corrupt entry is a miss" true (Cache.lookup ~dir ~hash = None);
  check_bool "damaged file removed" true (not (Sys.file_exists file));
  (* The slot heals on the next store. *)
  Cache.store ~dir ~hash (mk_outcome ());
  check_bool "healed" true (Cache.lookup ~dir ~hash <> None)

(* ---------- codecs ---------- *)

let json_roundtrip to_j of_j v = of_j (Jsonx.parse_string_exn (Jsonx.to_string (to_j v)))

let test_job_codecs () =
  let s = mk_spec ~priority:7 ~deadline_s:12.5 ~retries:4 () in
  let s' = json_roundtrip Job.spec_to_json Job.spec_of_json s in
  check_bool "spec roundtrip" true (s = s');
  let o = mk_outcome () in
  let o' = json_roundtrip Job.outcome_to_json Job.outcome_of_json o in
  check_bool "outcome scalars bit-exact" true
    (same_float o.Job.energy o'.Job.energy
    && same_float o.Job.wall_s o'.Job.wall_s);
  Array.iteri
    (fun i x -> check_bool "series bit-exact" true (same_float x o'.Job.series.(i)))
    o.Job.series;
  check_bool "malformed raises Codec_error" true
    (try
       ignore (Job.spec_of_json (Jsonx.parse_string_exn "{\"id\":3}"));
       false
     with Job.Codec_error _ -> true)

let test_proto_codecs () =
  let reqs =
    [
      Proto.Submit
        {
          Proto.client = "alice";
          deck = "method = vmc\n# c\n";
          priority = 2;
          deadline_s = 30.;
          retries = -1;
          wait = true;
        };
      Proto.Query "j0042";
      Proto.Cancel "j0042";
      Proto.Stats;
      Proto.Status;
      Proto.Ping;
    ]
  in
  List.iter
    (fun r ->
      check_bool "request roundtrip" true
        (json_roundtrip Proto.request_to_json Proto.request_of_json r = r))
    reqs;
  let reps =
    [
      Proto.Accepted { id = "j0001"; cached = false; position = 3 };
      Proto.Rejected { id = "j0002"; reason = "queue full" };
      Proto.State { id = "j0001"; state = "running"; attempt = 2 };
      Proto.Job_failed { id = "j0001"; reason = "crash budget exhausted" };
      Proto.Stats_reply
        {
          Proto.submitted = 9; accepted = 7; rejected = 2; done_ = 4;
          failed = 1; cancelled = 1; queued = 1; running = 0; retrying = 0;
          cache_hits = 2; suspended = 1;
        };
      Proto.Pong;
      Proto.Error "malformed request";
      Proto.Status_reply
        (Jsonx.Obj
           [
             ("t", Jsonx.Num 12.5);
             ( "jobs",
               Jsonx.Arr
                 [
                   Jsonx.Obj
                     [
                       ("id", Jsonx.Str "j0001");
                       ("live", Jsonx.Null);
                     ];
                 ] );
           ]);
    ]
  in
  List.iter
    (fun r ->
      check_bool "reply roundtrip" true
        (json_roundtrip Proto.reply_to_json Proto.reply_of_json r = r))
    reps;
  (* Job_done carries floats: compare fields, not structural equality
     (nan != nan). *)
  let jd = Proto.Job_done { id = "j0009"; outcome = mk_outcome (); cached = true } in
  match json_roundtrip Proto.reply_to_json Proto.reply_of_json jd with
  | Proto.Job_done { id = "j0009"; outcome = o; cached = true } ->
      check_bool "job_done outcome bit-exact" true
        (same_float o.Job.energy 16.0 && Array.length o.Job.series = 5)
  | _ -> Alcotest.fail "job_done roundtrip shape"

(* ---------- live status endpoint under load ----------

   Boot a real daemon, put a job in flight, and hammer the Status verb
   while it runs: every reply must be a well-formed snapshot, and once
   the runner's first ledger window lands the snapshot must carry
   per-rank throughput rows.  The select loop answers from in-memory
   state plus one small file read, so it must stay responsive. *)

let member_list name j =
  Option.value ~default:[] (Option.bind (Jsonx.member name j) Jsonx.to_list)

let ledger_rows body =
  List.concat_map
    (fun job ->
      match Jsonx.member "live" job with
      | Some (Jsonx.Obj _ as live) -> member_list "ledger" live
      | _ -> [])
    (member_list "jobs" body)

let test_status_under_load () =
  let base = fresh "statusd" in
  Unix.mkdir base 0o755;
  let socket = Filename.concat base "sock" in
  let cfg =
    {
      Server.default_config with
      Server.socket;
      dir = Filename.concat base "state";
      max_queue = 8;
      max_running = 1;
    }
  in
  let daemon =
    match Unix.fork () with
    | 0 -> (
        try
          Server.serve cfg;
          Stdlib.exit 0
        with _ -> Stdlib.exit 1)
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] daemon))
    (fun () ->
      let deck =
        "method = dmc\nworkload = harmonic\nwalkers = 64\nblocks = 100\n\
         steps = 50\ntau = 0.01\nseed = 5\n"
      in
      let fd = Client.connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close fd)
        (fun () ->
          (match Client.submit fd ~client:"t" ~wait:false deck with
          | Proto.Accepted _ -> ()
          | r ->
              Alcotest.failf "submit: %s"
                (Jsonx.to_string (Proto.reply_to_json r)));
          (* Poll until the runner's first ledger window surfaces. *)
          let deadline = Unix.gettimeofday () +. 30. in
          let rec poll () =
            let body = Client.status fd in
            check_bool "snapshot carries daemon stats" true
              (Jsonx.member "stats" body <> None);
            check_bool "snapshot carries the metrics registry" true
              (Jsonx.member "metrics" body <> None);
            if ledger_rows body <> [] then body
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "no ledger window surfaced within 30 s"
            else begin
              Unix.sleepf 0.2;
              poll ()
            end
          in
          let body = poll () in
          let row = List.hd (ledger_rows body) in
          check_bool "ledger row has a throughput number" true
            (match
               Option.bind
                 (Jsonx.member "walkers_moves_per_s" row)
                 Jsonx.to_float
             with
            | Some v -> v > 0.
            | None -> false);
          (* Load: 25 back-to-back queries with a runner active; each
             must come back parsed and job-bearing, promptly. *)
          let t0 = Unix.gettimeofday () in
          for _ = 1 to 25 do
            let b = Client.status fd in
            check_bool "status under load lists the running job" true
              (member_list "jobs" b <> [])
          done;
          check_bool "25 status queries answered in < 10 s" true
            (Unix.gettimeofday () -. t0 < 10.);
          ignore (Client.cancel fd "j0001")))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_canonical_shuffle ] in
  Alcotest.run "serve"
    [
      ( "queue",
        [
          Alcotest.test_case "priority ordering + positions" `Quick
            test_queue_priority;
          Alcotest.test_case "per-client fairness under flood" `Quick
            test_queue_fairness;
          Alcotest.test_case "fairness never overrides priority" `Quick
            test_queue_fairness_respects_priority;
          Alcotest.test_case "bounded admission rejects, then reopens" `Quick
            test_queue_bound;
          Alcotest.test_case "remove takes the oldest match" `Quick
            test_queue_remove;
        ] );
      ( "journal",
        [
          Alcotest.test_case "records roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail at every byte = clean prefix" `Quick
            test_journal_torn_tail;
          Alcotest.test_case "recover: pending, budgets, stale pids" `Quick
            test_journal_recover;
          Alcotest.test_case "compact preserves pending state" `Quick
            test_journal_compact;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "order/comment/format invariance" `Quick
            test_canonical_invariance;
          Alcotest.test_case "every physics knob shifts the hash" `Quick
            test_canonical_sensitivity;
        ]
        @ qsuite );
      ( "cache",
        [
          Alcotest.test_case "store/lookup bit-exact (hex floats)" `Quick
            test_cache_roundtrip;
          Alcotest.test_case "corruption is a miss and heals" `Quick
            test_cache_corruption_heals;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "job spec/outcome JSON" `Quick test_job_codecs;
          Alcotest.test_case "proto request/reply JSON" `Quick
            test_proto_codecs;
        ] );
      ( "status",
        [
          Alcotest.test_case "live snapshot under load" `Quick
            test_status_under_load;
        ] );
    ]
