open Oqmc_containers
open Oqmc_particle
open Oqmc_core
open Oqmc_workloads
open Oqmc_rng

(* Cross-module property tests: randomized invariants that tie the whole
   stack together, beyond the per-module suites. *)

let check_bool = Alcotest.(check bool)

(* Random electron-gas walker for a given seed. *)
let random_walker ~box ~n seed =
  let rng = Xoshiro.create seed in
  let w = Walker.create n in
  for i = 0 to n - 1 do
    Walker.Aos.set w.Walker.r i
      (Vec3.make
         (Xoshiro.uniform_range rng ~lo:0. ~hi:box)
         (Xoshiro.uniform_range rng ~lo:0. ~hi:box)
         (Xoshiro.uniform_range rng ~lo:0. ~hi:box))
  done;
  w

let prop_variants_agree_random_configs =
  QCheck.Test.make ~name:"all variants agree on random configurations"
    ~count:10
    QCheck.(int_range 1 100000)
    (fun seed ->
      let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
      let w = random_walker ~box:5.0 ~n:8 seed in
      let energies =
        List.map
          (fun variant ->
            let e = Build.engine ~variant ~seed:1 sys in
            e.Engine_api.load_walker w;
            e.Engine_api.measure ())
          Variant.all
      in
      match energies with
      | e0 :: rest -> List.for_all (fun e -> abs_float (e -. e0) < 0.05) rest
      | [] -> false)

let prop_log_psi_translation_invariant =
  (* Rigid translation of all electrons in a periodic HEG leaves |Ψ| and
     E_L unchanged (plane-wave orbitals + pair Jastrow). *)
  QCheck.Test.make ~name:"periodic system translation invariant" ~count:10
    QCheck.(
      pair (int_range 1 100000)
        (triple (float_range 0. 5.) (float_range 0. 5.) (float_range 0. 5.)))
    (fun (seed, (tx, ty, tz)) ->
      let sys = Validation.electron_gas ~n_up:3 ~n_down:3 ~box:5.0 () in
      let e = Build.engine ~variant:Variant.Current_f64 ~seed:2 sys in
      let w = random_walker ~box:5.0 ~n:6 seed in
      e.Engine_api.load_walker w;
      let l0 = e.Engine_api.log_psi () and el0 = e.Engine_api.measure () in
      let t = Vec3.make tx ty tz in
      for i = 0 to 5 do
        Walker.Aos.set w.Walker.r i (Vec3.add (Walker.Aos.get w.Walker.r i) t)
      done;
      e.Engine_api.load_walker w;
      let l1 = e.Engine_api.log_psi () and el1 = e.Engine_api.measure () in
      abs_float (l1 -. l0) < 1e-6 && abs_float (el1 -. el0) < 1e-5)

let prop_sweep_preserves_log_consistency =
  (* After random sweeps at random time steps, incremental log Ψ always
     matches a from-scratch recompute. *)
  QCheck.Test.make ~name:"incremental log psi consistent under sweeps"
    ~count:8
    QCheck.(pair (int_range 1 100000) (float_range 0.05 0.5))
    (fun (seed, tau) ->
      let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
      let e = Build.engine ~variant:Variant.Current_f64 ~seed sys in
      let rng = Xoshiro.create (seed + 1) in
      for _ = 1 to 3 do
        ignore (e.Engine_api.sweep rng ~tau)
      done;
      let inc = e.Engine_api.log_psi () in
      let fresh = e.Engine_api.refresh () in
      abs_float (inc -. fresh) < 1e-7)

let prop_checkpoint_roundtrip_random =
  QCheck.Test.make ~name:"checkpoint roundtrip is bit-exact" ~count:10
    QCheck.(int_range 1 100000)
    (fun seed ->
      let rng = Xoshiro.create seed in
      let walkers =
        List.init
          (1 + Xoshiro.int rng 4)
          (fun i ->
            let w = random_walker ~box:4.0 ~n:5 (seed + i) in
            w.Walker.weight <- Xoshiro.uniform rng;
            w.Walker.e_local <- Xoshiro.gaussian rng;
            Wbuffer.add w.Walker.buffer (Xoshiro.gaussian rng);
            Wbuffer.add w.Walker.buffer (Xoshiro.gaussian rng);
            w)
      in
      let path = Filename.temp_file "oqmc-prop" ".chk" in
      Checkpoint.save ~path ~e_trial:(Xoshiro.gaussian rng) walkers;
      let _, restored = Checkpoint.load ~path in
      Sys.remove path;
      List.for_all2
        (fun (a : Walker.t) (b : Walker.t) ->
          a.Walker.weight = b.Walker.weight
          && a.Walker.e_local = b.Walker.e_local
          && Wbuffer.contents a.Walker.buffer = Wbuffer.contents b.Walker.buffer
          &&
          let ok = ref true in
          for i = 0 to 4 do
            if
              not
                (Vec3.equal
                   (Walker.Aos.get a.Walker.r i)
                   (Walker.Aos.get b.Walker.r i))
            then ok := false
          done;
          !ok)
        walkers restored)

let prop_input_deck_roundtrip =
  QCheck.Test.make ~name:"input deck parses what it prints" ~count:50
    QCheck.(
      quad (int_range 1 64) (int_range 1 50) (float_range 0.001 1.0) bool)
    (fun (walkers, blocks, tau, nlpp) ->
      let deck =
        Printf.sprintf
          "method=dmc\nworkload = NiO-32\nvariant = Ref+MP\nwalkers=%d\n\
           blocks = %d # comment\ntau = %.17g\nnlpp = %b\n"
          walkers blocks tau nlpp
      in
      let cfg = Input.parse_string deck in
      cfg.Input.method_ = "dmc"
      && cfg.Input.workload = "NiO-32"
      && cfg.Input.variant = Variant.Ref_mp
      && cfg.Input.walkers = walkers
      && cfg.Input.blocks = blocks
      && abs_float (cfg.Input.tau -. tau) < 1e-9
      && cfg.Input.nlpp = nlpp)

let test_input_deck_errors () =
  let bad s =
    match Input.parse_string s with
    | exception Input.Parse_error _ -> true
    | _ -> false
  in
  check_bool "unknown key" true (bad "walrus = 3\n");
  check_bool "bad int" true (bad "walkers = many\n");
  check_bool "no equals" true (bad "just words\n");
  check_bool "bad variant" true (bad "variant = turbo\n");
  check_bool "delay < 1 rejected" true (bad "delay = 0\n");
  check_bool "delay parsed" true
    ((Input.parse_string "delay = 8\n").Input.delay = 8);
  check_bool "delay defaults to SM" true (Input.default.Input.delay = 1);
  check_bool "comments ok" true
    (match Input.parse_string "# only a comment\n" with
    | cfg -> cfg = Input.default
    | exception _ -> false)

let test_unbalanced_spins () =
  (* n_up <> n_down exercises the two-determinant bookkeeping. *)
  let lattice_box = 5.0 in
  let sys =
    System.validate
      {
        System.name = "heg-polarized";
        lattice = Lattice.cubic lattice_box;
        n_up = 5;
        n_down = 3;
        ions = [];
        spo =
          Oqmc_wavefunction.Spo_analytic.plane_waves
            ~lattice:(Lattice.cubic lattice_box) ~n_orb:5;
        j1 = None;
        j2 = Some (Jastrow_sets.ee_set ~cutoff:2.4);
        ham =
          { System.coulomb = true; ewald = false; harmonic = None; nlpp = None };
      }
  in
  let e = Build.engine ~variant:Variant.Current_f64 ~seed:5 sys in
  let rng = Xoshiro.create 6 in
  for _ = 1 to 3 do
    ignore (e.Engine_api.sweep rng ~tau:0.2)
  done;
  let inc = e.Engine_api.log_psi () in
  let fresh = e.Engine_api.refresh () in
  check_bool "polarized system consistent" true (abs_float (inc -. fresh) < 1e-7);
  check_bool "finite E_L" true (Float.is_finite (e.Engine_api.measure ()))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "cross-module",
        qt
          [
            prop_variants_agree_random_configs;
            prop_log_psi_translation_invariant;
            prop_sweep_preserves_log_consistency;
            prop_checkpoint_roundtrip_random;
            prop_input_deck_roundtrip;
          ] );
      ( "edge-cases",
        [
          Alcotest.test_case "input deck errors" `Quick test_input_deck_errors;
          Alcotest.test_case "unbalanced spins" `Quick test_unbalanced_spins;
        ] );
    ]
