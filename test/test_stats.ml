open Oqmc_core
open Oqmc_particle
open Oqmc_rng

let checkf tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- running stats ---------- *)

let test_running_moments () =
  let r = Stats.make_running () in
  List.iter (Stats.push r) [ 1.; 2.; 3.; 4.; 5. ];
  check_int "count" 5 (Stats.count r);
  checkf 1e-12 "mean" 3. (Stats.mean r);
  checkf 1e-12 "variance" 2.5 (Stats.variance r);
  checkf 1e-12 "stderr" (sqrt (2.5 /. 5.)) (Stats.std_error r)

let test_series_basics () =
  let s = Stats.make_series () in
  for i = 1 to 2000 do
    Stats.append s (float_of_int (i mod 4))
  done;
  check_int "length" 2000 (Stats.length s);
  checkf 1e-9 "mean" 1.5 (Stats.series_mean s);
  checkf 1e-9 "get" 1. (Stats.get s 0)

let test_autocorrelation_white_noise () =
  let s = Stats.make_series () in
  let rng = Xoshiro.create 1 in
  for _ = 1 to 5000 do
    Stats.append s (Xoshiro.gaussian rng)
  done;
  let tau = Stats.autocorrelation_time s in
  check_bool "white noise tau ~1" true (tau > 0.5 && tau < 1.6)

let test_autocorrelation_correlated () =
  (* AR(1) with rho = 0.9: integrated tau = (1+rho)/(1-rho) = 19. *)
  let s = Stats.make_series () in
  let rng = Xoshiro.create 2 in
  let x = ref 0. in
  for _ = 1 to 20000 do
    x := (0.9 *. !x) +. Xoshiro.gaussian rng;
    Stats.append s !x
  done;
  let tau = Stats.autocorrelation_time s in
  check_bool "correlated tau >> 1" true (tau > 8.);
  check_bool "error grows with tau" true
    (Stats.series_error s > sqrt (Stats.series_variance s /. 20000.))

let test_ar1_closed_forms () =
  (* AR(1): x_{t+1} = phi x_t + eps, eps ~ N(0,1).  Closed forms:
     rho(k) = phi^k, integrated tau = (1+phi)/(1-phi), stationary
     variance 1/(1-phi^2).  The estimators must land on them within
     Monte-Carlo error on a long equilibrated series. *)
  List.iteri
    (fun case phi ->
      let tau_exact = (1. +. phi) /. (1. -. phi) in
      let var_exact = 1. /. (1. -. (phi *. phi)) in
      let s = Stats.make_series () in
      let rng = Xoshiro.create (100 + case) in
      let x = ref 0. in
      (* equilibrate past the initial transient, then record *)
      for _ = 1 to 2000 do
        x := (phi *. !x) +. Xoshiro.gaussian rng
      done;
      let n = 200_000 in
      for _ = 1 to n do
        x := (phi *. !x) +. Xoshiro.gaussian rng;
        Stats.append s !x
      done;
      let tau = Stats.autocorrelation_time s in
      let var = Stats.series_variance s in
      check_bool
        (Printf.sprintf "tau(phi=%.2f) ~ %.2f, got %.2f" phi tau_exact tau)
        true
        (abs_float (tau -. tau_exact) /. tau_exact < 0.25);
      check_bool
        (Printf.sprintf "var(phi=%.2f) ~ %.3f, got %.3f" phi var_exact var)
        true
        (abs_float (var -. var_exact) /. var_exact < 0.1);
      (* the correlated error bar must inflate the naive one by
         roughly sqrt(tau) *)
      let naive = sqrt (var /. float_of_int n) in
      let ratio = Stats.series_error s /. naive in
      check_bool
        (Printf.sprintf "error inflation(phi=%.2f) ~ %.2f, got %.2f" phi
           (sqrt tau_exact) ratio)
        true
        (ratio > 0.6 *. sqrt tau_exact && ratio < 1.6 *. sqrt tau_exact))
    [ 0.5; 0.8 ]

let test_efficiency () =
  checkf 1e-12 "kappa" (1. /. 24.)
    (Stats.efficiency ~variance:2. ~tau_corr:3. ~t_mc:4.);
  check_bool "degenerate -> infinity" true
    (Stats.efficiency ~variance:0. ~tau_corr:1. ~t_mc:1. = infinity)

(* ---------- population ---------- *)

let mk_pop n =
  let walkers = List.init n (fun _ -> Walker.create 4) in
  Population.create ~target:n ~e_trial:(-1.) walkers

let test_dmc_weight () =
  let w = Walker.create 4 in
  w.Walker.weight <- 1.;
  Population.dmc_weight ~tau:0.01 ~e_trial:(-1.) ~e_old:(-1.) ~e_new:(-1.) w;
  checkf 1e-12 "neutral weight" 1. w.Walker.weight;
  Population.dmc_weight ~tau:0.01 ~e_trial:(-1.) ~e_old:(-2.) ~e_new:(-2.) w;
  checkf 1e-9 "growth" (exp 0.01) w.Walker.weight

let test_dmc_weight_clamped () =
  let w = Walker.create 4 in
  w.Walker.weight <- 1.;
  (* A pathological local energy must not blow up the branching factor. *)
  Population.dmc_weight ~tau:1.0 ~e_trial:0. ~e_old:(-1e6) ~e_new:(-1e6) w;
  check_bool "clamped" true (w.Walker.weight <= exp 2. +. 1e-9)

let test_branch_unit_weights () =
  let pop = mk_pop 10 in
  let rng = Xoshiro.create 3 in
  Population.branch pop rng;
  (* weight-1 walkers give either 1 or 2 copies under floor(w+u) with
     w = 1: always exactly 1. *)
  check_int "stable population" 10 (Population.size pop)

let test_branch_kills_and_splits () =
  let pop = mk_pop 8 in
  let rng = Xoshiro.create 4 in
  List.iteri
    (fun i w ->
      w.Walker.weight <- (if i < 4 then 0.001 else 2.5))
    (Population.walkers pop);
  Population.branch pop rng;
  let n = Population.size pop in
  (* 4 walkers nearly die, 4 walkers yield 2-3 copies each *)
  check_bool "population adjusted" true (n >= 8 && n <= 14);
  List.iter
    (fun w -> checkf 1e-12 "reset weight" 1. w.Walker.weight)
    (Population.walkers pop)

let test_branch_never_extinct () =
  let pop = mk_pop 4 in
  let rng = Xoshiro.create 5 in
  List.iter (fun w -> w.Walker.weight <- 0.) (Population.walkers pop);
  Population.branch pop rng;
  check_bool "at least one survivor" true (Population.size pop >= 1)

let test_trial_energy_feedback () =
  let pop = mk_pop 10 in
  Population.update_trial_energy pop ~tau:0.01 ~e_estimate:(-2.) ;
  (* population at target -> E_T = estimate *)
  checkf 1e-9 "at target" (-2.) (Population.e_trial pop);
  (* overpopulated -> E_T pushed below the estimate *)
  let over =
    Population.create ~target:5 ~e_trial:0.
      (List.init 10 (fun _ -> Walker.create 4))
  in
  Population.update_trial_energy over ~tau:0.01 ~e_estimate:(-2.);
  check_bool "pushes down" true (Population.e_trial over < -2.)

let test_load_balance_report () =
  let pop = mk_pop 10 in
  let r = Population.load_balance pop ~ranks:4 in
  check_bool "bytes consistent" true
    (r.Population.messages = 0 || r.Population.bytes > 0);
  Alcotest.check_raises "bad ranks"
    (Invalid_argument "Population.load_balance: ranks < 1") (fun () ->
      ignore (Population.load_balance pop ~ranks:0))

let test_average_weight () =
  let pop = mk_pop 4 in
  List.iteri
    (fun i w -> w.Walker.weight <- float_of_int (i + 1))
    (Population.walkers pop);
  checkf 1e-12 "average" 2.5 (Population.average_weight pop)

(* ---------- nelder-mead ---------- *)

let test_nm_quadratic () =
  let f x = ((x.(0) -. 3.) ** 2.) +. ((x.(1) +. 1.) ** 2.) +. 5. in
  let r = Nelder_mead.minimize ~max_iter:500 ~tol:1e-10 ~f [| 0.; 0. |] in
  check_bool "converged" true r.Nelder_mead.converged;
  checkf 1e-3 "x0" 3. r.Nelder_mead.x.(0);
  checkf 1e-3 "x1" (-1.) r.Nelder_mead.x.(1);
  checkf 1e-5 "fmin" 5. r.Nelder_mead.fx

let test_nm_rosenbrock () =
  let f x =
    (100. *. ((x.(1) -. (x.(0) *. x.(0))) ** 2.)) +. ((1. -. x.(0)) ** 2.)
  in
  let r =
    Nelder_mead.minimize ~max_iter:2000 ~tol:1e-12 ~init_step:0.2 ~f
      [| -1.2; 1. |]
  in
  check_bool "near optimum" true
    (abs_float (r.Nelder_mead.x.(0) -. 1.) < 0.05
    && abs_float (r.Nelder_mead.x.(1) -. 1.) < 0.1)

let test_nm_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Nelder_mead.minimize: empty parameter vector")
    (fun () -> ignore (Nelder_mead.minimize ~f:(fun _ -> 0.) [||]))

(* ---------- optimizer ---------- *)

let test_optimizer_recovers_exact_trial () =
  (* Trial determinant of HO orbitals with frequency w; Hamiltonian trap
     frequency 1.  Variance vanishes only at w = 1, so the optimizer must
     find it. *)
  let system_of p =
    let w = Float.max 0.2 p.(0) in
    Oqmc_core.System.validate
      {
        Oqmc_core.System.name = "ho-opt";
        lattice = Oqmc_particle.Lattice.open_cell;
        n_up = 3;
        n_down = 0;
        ions = [];
        spo = Oqmc_wavefunction.Spo_analytic.harmonic ~omega:w ~n_orb:3;
        j1 = None;
        j2 = None;
        ham =
          {
            Oqmc_core.System.coulomb = false;
            ewald = false;
            harmonic = Some 1.0;
            nlpp = None;
          };
      }
  in
  let r =
    Optimizer.optimize ~objective:Optimizer.Variance
      ~vmc_params:
        {
          Vmc.n_walkers = 3;
          warmup = 20;
          blocks = 4;
          steps_per_block = 10;
          tau = 0.3;
          seed = 99;
          n_domains = 1;
        }
      ~max_iter:60 ~tol:1e-10 ~init_step:0.2
      ~system_of [| 1.35 |]
  in
  checkf 0.05 "recovered trap frequency" 1.0 r.Optimizer.best.(0);
  check_bool "variance collapsed" true (r.Optimizer.vmc.Vmc.variance < 1e-3);
  check_bool "history recorded" true (List.length r.Optimizer.history > 5)

(* ---------- variant ---------- *)

let test_variant_strings () =
  List.iter
    (fun v ->
      Alcotest.(check string)
        "roundtrip"
        (Variant.to_string v)
        (Variant.to_string (Variant.of_string (Variant.to_string v))))
    Variant.all;
  check_bool "layouts" true
    (Variant.layout Variant.Ref = Variant.Store
    && Variant.layout Variant.Current = Variant.Otf)

let () =
  Alcotest.run "stats_population"
    [
      ( "stats",
        [
          Alcotest.test_case "running" `Quick test_running_moments;
          Alcotest.test_case "series" `Quick test_series_basics;
          Alcotest.test_case "white noise" `Quick
            test_autocorrelation_white_noise;
          Alcotest.test_case "correlated" `Quick
            test_autocorrelation_correlated;
          Alcotest.test_case "ar1 closed forms" `Quick test_ar1_closed_forms;
          Alcotest.test_case "efficiency" `Quick test_efficiency;
        ] );
      ( "population",
        [
          Alcotest.test_case "dmc weight" `Quick test_dmc_weight;
          Alcotest.test_case "weight clamped" `Quick test_dmc_weight_clamped;
          Alcotest.test_case "branch unit" `Quick test_branch_unit_weights;
          Alcotest.test_case "branch kills/splits" `Quick
            test_branch_kills_and_splits;
          Alcotest.test_case "never extinct" `Quick test_branch_never_extinct;
          Alcotest.test_case "trial feedback" `Quick
            test_trial_energy_feedback;
          Alcotest.test_case "load balance" `Quick test_load_balance_report;
          Alcotest.test_case "average weight" `Quick test_average_weight;
        ] );
      ( "nelder_mead",
        [
          Alcotest.test_case "quadratic" `Quick test_nm_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "empty" `Quick test_nm_empty;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "recovers exact trial" `Slow
            test_optimizer_recovers_exact_trial;
        ] );
      ("variant", [ Alcotest.test_case "strings" `Quick test_variant_strings ]);
    ]
