open Oqmc_particle
open Oqmc_core
open Oqmc_workloads
open Oqmc_rng

(* Run-integrity subsystem: crash-safe checkpoint v2 (atomic write,
   CRC-32 trailer, generation rotation, fallback), the walker watchdog,
   and the seeded fault-injection harness that proves every recovery
   path actually fires. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))

let tmpdir () =
  let f = Filename.temp_file "oqmc_integrity" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

(* A small interacting system whose engine exercises real buffers. *)
let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 ()
let factory = Build.factory ~variant:Variant.Current_f64 ~seed:500 sys

let mk_walkers ?(seed = 41) n_walkers =
  let e = Build.engine ~variant:Variant.Current_f64 ~seed:40 sys in
  let rng = Xoshiro.create seed in
  ( e,
    List.init n_walkers (fun _ ->
        let w = Walker.create 8 in
        e.Engine_api.randomize rng;
        e.Engine_api.register_walker w;
        w.Walker.weight <- 0.5 +. Xoshiro.uniform rng;
        w.Walker.e_local <- e.Engine_api.measure ();
        w) )

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ---------- checkpoint v2 format ---------- *)

let test_crc32_vector () =
  (* The standard IEEE CRC-32 check value. *)
  check_int "crc32(123456789)" 0xCBF43926 (Checkpoint.crc32 "123456789")

let test_v2_roundtrip_atomic () =
  let dir = tmpdir () in
  let path = Filename.concat dir "run.chk" in
  let _, walkers = mk_walkers 3 in
  Checkpoint.save ~path ~e_trial:(-1.5) walkers;
  check_bool "no tmp file left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  check_bool "v2 magic" true
    (String.length (read_file path) > String.length Checkpoint.magic
    && String.sub (read_file path) 0 (String.length Checkpoint.magic)
       = Checkpoint.magic);
  let e_trial, restored = Checkpoint.load ~path in
  checkf 0. "e_trial" (-1.5) e_trial;
  check_int "count" 3 (List.length restored);
  List.iter2
    (fun (a : Walker.t) (b : Walker.t) ->
      checkf 0. "weight bit-exact" a.Walker.weight b.Walker.weight;
      checkf 0. "log_psi bit-exact" a.Walker.log_psi b.Walker.log_psi)
    walkers restored

let test_v1_still_loads () =
  let dir = tmpdir () in
  let path = Filename.concat dir "v1.chk" in
  let _, walkers = mk_walkers 2 in
  Checkpoint.save ~path ~e_trial:(-0.5) walkers;
  (* Rewrite as v1: swap the magic, drop the crc trailer. *)
  let content = read_file path in
  let lines = String.split_on_char '\n' content in
  let v1 =
    lines
    |> List.filter (fun l -> String.length l < 4 || String.sub l 0 4 <> "crc ")
    |> List.map (fun l -> if l = Checkpoint.magic then Checkpoint.magic_v1 else l)
    |> String.concat "\n"
  in
  write_file path v1;
  let e_trial, restored = Checkpoint.load ~path in
  checkf 0. "v1 e_trial" (-0.5) e_trial;
  check_int "v1 count" 2 (List.length restored)

let test_strict_trailing_garbage () =
  let dir = tmpdir () in
  let path = Filename.concat dir "g.chk" in
  let _, walkers = mk_walkers 2 in
  Checkpoint.save ~path ~e_trial:(-1.0) walkers;
  (* Garbage after the crc trailer. *)
  write_file path (read_file path ^ "junk\n");
  (try
     ignore (Checkpoint.load ~path);
     Alcotest.fail "expected Corrupt on trailing garbage"
   with Checkpoint.Corrupt _ -> ());
  (* Garbage inside the payload, crc recomputed so only the strict
     parser can catch it. *)
  Checkpoint.save ~path ~e_trial:(-1.0) walkers;
  let rebuild f =
    let lines = String.split_on_char '\n' (read_file path) in
    let lines = List.filter (fun l -> l <> "") lines in
    let payload_lines =
      List.filter
        (fun l -> String.length l < 4 || String.sub l 0 4 <> "crc ")
        lines
    in
    let payload_lines = f payload_lines in
    let payload =
      String.concat "" (List.map (fun l -> l ^ "\n") payload_lines)
    in
    payload ^ Printf.sprintf "crc %08x\n" (Checkpoint.crc32 payload)
  in
  write_file path (rebuild (fun ls -> ls @ [ "walker 1 0x1p0 1 0 0x0p0 0x0p0" ]));
  (try
     ignore (Checkpoint.load ~path);
     Alcotest.fail "expected Corrupt on extra walker lines"
   with Checkpoint.Corrupt _ -> ())

let test_strict_count_mismatch () =
  let dir = tmpdir () in
  let path = Filename.concat dir "c.chk" in
  let _, walkers = mk_walkers 3 in
  Checkpoint.save ~path ~e_trial:(-1.0) walkers;
  let rebuild count =
    let lines = String.split_on_char '\n' (read_file path) in
    let lines = List.filter (fun l -> l <> "") lines in
    let payload_lines =
      List.filter
        (fun l -> String.length l < 4 || String.sub l 0 4 <> "crc ")
        lines
      |> List.map (fun l ->
             if String.length l >= 8 && String.sub l 0 8 = "walkers " then
               Printf.sprintf "walkers %d" count
             else l)
    in
    let payload =
      String.concat "" (List.map (fun l -> l ^ "\n") payload_lines)
    in
    payload ^ Printf.sprintf "crc %08x\n" (Checkpoint.crc32 payload)
  in
  (* Count says fewer walkers than the stream holds. *)
  write_file path (rebuild 2);
  (try
     ignore (Checkpoint.load ~path);
     Alcotest.fail "expected Corrupt on undercount"
   with Checkpoint.Corrupt _ -> ());
  (* Count says more walkers than the stream holds. *)
  write_file path (rebuild 4);
  (try
     ignore (Checkpoint.load ~path);
     Alcotest.fail "expected Corrupt on overcount"
   with Checkpoint.Corrupt _ -> ())

(* ---------- generation rotation and fallback ---------- *)

let test_rotation_keeps_last_k () =
  let dir = tmpdir () in
  let path = Filename.concat dir "rot.chk" in
  let _, walkers = mk_walkers 2 in
  List.iter
    (fun gen ->
      Checkpoint.save_generation ~keep:3 ~path ~gen
        ~e_trial:(float_of_int gen) walkers)
    [ 5; 10; 15; 20 ];
  let gens = List.map fst (Checkpoint.list_generations ~path) in
  Alcotest.(check (list int)) "last three kept" [ 10; 15; 20 ] gens;
  let gen, (e_trial, ws) = Checkpoint.load_latest ~path in
  check_int "latest generation" 20 gen;
  checkf 0. "latest e_trial" 20. e_trial;
  check_int "latest walkers" 2 (List.length ws)

let test_fallback_past_corrupt_generations () =
  let dir = tmpdir () in
  let path = Filename.concat dir "fb.chk" in
  let _, walkers = mk_walkers 2 in
  List.iter
    (fun gen ->
      Checkpoint.save_generation ~keep:3 ~path ~gen
        ~e_trial:(float_of_int gen) walkers)
    [ 10; 15; 20 ];
  (* Latest garbled: fall back one generation. *)
  Fault.garble_file ~path:(Checkpoint.generation_path ~path 20) ~seed:7;
  let gen, _ = Checkpoint.load_latest ~path in
  check_int "fell back to 15" 15 gen;
  (* Next one truncated mid-stream: fall back again. *)
  Fault.truncate_file ~path:(Checkpoint.generation_path ~path 15) ~lines:5;
  let gen, _ = Checkpoint.load_latest ~path in
  check_int "fell back to 10" 10 gen;
  (* Everything corrupt and no plain file: Corrupt. *)
  Fault.garble_file ~path:(Checkpoint.generation_path ~path 10) ~seed:8;
  (try
     ignore (Checkpoint.load_latest ~path);
     Alcotest.fail "expected Corrupt with no valid generation"
   with Checkpoint.Corrupt _ -> ());
  (* A plain base file is the final fallback, reported as generation 0. *)
  Checkpoint.save ~path ~e_trial:(-9.) walkers;
  let gen, (e_trial, _) = Checkpoint.load_latest ~path in
  check_int "plain fallback" 0 gen;
  checkf 0. "plain e_trial" (-9.) e_trial

let test_truncation_property () =
  (* Truncating the latest generation anywhere — at every line boundary
     and at sampled byte offsets — either falls back to the previous
     generation or raises Corrupt; never a short/garbled population. *)
  let dir = tmpdir () in
  let path = Filename.concat dir "trunc.chk" in
  let _, wa = mk_walkers ~seed:61 3 in
  let _, wb = mk_walkers ~seed:62 4 in
  Checkpoint.save_generation ~keep:10 ~path ~gen:1 ~e_trial:(-1.0) wa;
  Checkpoint.save_generation ~keep:10 ~path ~gen:2 ~e_trial:(-2.0) wb;
  let gen2 = Checkpoint.generation_path ~path 2 in
  let full = read_file gen2 in
  let n_lines =
    String.fold_left (fun a c -> if c = '\n' then a + 1 else a) 0 full
  in
  let expect_fallback () =
    (try
       ignore (Checkpoint.load ~path:gen2);
       Alcotest.fail "expected Corrupt from truncated generation"
     with Checkpoint.Corrupt _ -> ());
    let gen, (e_trial, ws) = Checkpoint.load_latest ~path in
    check_int "fell back to generation 1" 1 gen;
    checkf 0. "previous e_trial" (-1.0) e_trial;
    check_int "previous population intact" 3 (List.length ws)
  in
  for l = 0 to n_lines - 1 do
    write_file gen2 full;
    Fault.truncate_file ~path:gen2 ~lines:l;
    expect_fallback ()
  done;
  let len = String.length full in
  let off = ref 0 in
  while !off < len do
    write_file gen2 full;
    Fault.truncate_file_bytes ~path:gen2 ~bytes:!off;
    expect_fallback ();
    off := !off + 97
  done;
  (* The untruncated file still loads as the latest. *)
  write_file gen2 full;
  let gen, (_, ws) = Checkpoint.load_latest ~path in
  check_int "full file wins" 2 gen;
  check_int "full population" 4 (List.length ws)

let test_garbled_generation_rejected () =
  let dir = tmpdir () in
  let path = Filename.concat dir "garble.chk" in
  let _, walkers = mk_walkers 3 in
  Checkpoint.save ~path ~e_trial:(-1.0) walkers;
  let full = read_file path in
  for seed = 1 to 20 do
    write_file path full;
    Fault.garble_file ~path ~seed;
    match Checkpoint.load ~path with
    | exception Checkpoint.Corrupt _ -> ()
    | _, ws ->
        (* Vanishingly unlikely (the xor would have to land only on
           bytes whose change keeps the crc line consistent) — but if it
           ever parses, it must at least be structurally complete. *)
        check_int "population size preserved" 3 (List.length ws)
  done

(* ---------- failing writes: retry with backoff ---------- *)

let test_write_retry_recovers () =
  Fault.reset ();
  let dir = tmpdir () in
  let path = Filename.concat dir "retry.chk" in
  let _, walkers = mk_walkers 2 in
  Fault.arm_io_failure Fault.Checkpoint_write ~times:2;
  Checkpoint.save ~retries:3 ~backoff:0.001 ~path ~e_trial:(-1.0) walkers;
  check_int "two failures injected" 2 (Fault.io_injected_count ());
  let _, ws = Checkpoint.load ~path in
  check_int "valid after retries" 2 (List.length ws);
  Fault.reset ();
  (* Rename failures are retried too (fresh tmp each attempt). *)
  Fault.arm_io_failure Fault.Checkpoint_rename ~times:1;
  Checkpoint.save ~retries:1 ~backoff:0.001 ~path ~e_trial:(-2.0) walkers;
  let e_trial, _ = Checkpoint.load ~path in
  checkf 0. "rename retried" (-2.0) e_trial;
  check_bool "no tmp left" false (Sys.file_exists (path ^ ".tmp"));
  Fault.reset ()

let test_write_retry_exhausted () =
  Fault.reset ();
  let dir = tmpdir () in
  let path = Filename.concat dir "exhaust.chk" in
  let _, walkers = mk_walkers 2 in
  Fault.arm_io_failure Fault.Checkpoint_write ~times:10;
  (try
     Checkpoint.save ~retries:2 ~backoff:0.001 ~path ~e_trial:(-1.0) walkers;
     Alcotest.fail "expected Sys_error after exhausted retries"
   with Sys_error _ -> ());
  check_bool "nothing published" false (Sys.file_exists path);
  Fault.reset ()

(* ---------- walker watchdog ---------- *)

let watchdog_cfg =
  {
    Integrity.check_every = 1;
    drift_tol = 1e-6;
    buffer_tol = 1e-6;
    sample = 16;
  }

let run_watchdog walkers =
  let runner = Runner.create ~n_domains:1 ~factory in
  let pop =
    Population.create ~target:(List.length walkers) ~e_trial:(-1.) walkers
  in
  let st = Integrity.create_stats () in
  Integrity.watchdog watchdog_cfg st ~gen:1 ~rng:(Xoshiro.create 3) runner
    pop;
  (st, pop)

let test_watchdog_clean_population () =
  let _, walkers = mk_walkers 4 in
  let st, pop = run_watchdog walkers in
  check_int "nothing quarantined" 0 st.Integrity.quarantined;
  check_int "all audited" 4 st.Integrity.audits;
  check_bool "drift negligible" true (st.Integrity.drift_max < 1e-6);
  check_int "population preserved" 4 (Population.size pop)

let test_watchdog_quarantines_nan () =
  let _, walkers = mk_walkers 4 in
  let victims = [ List.nth walkers 1; List.nth walkers 3 ] in
  Fault.poison_energy (List.hd victims);
  Fault.poison_weight (List.nth victims 1);
  let st, pop = run_watchdog walkers in
  check_int "both quarantined" 2 st.Integrity.quarantined;
  check_int "both recovered" 2 st.Integrity.recoveries;
  check_int "population size preserved" 4 (Population.size pop);
  List.iter
    (fun v ->
      check_bool "victim removed" false
        (List.memq v (Population.walkers pop)))
    victims;
  check_bool "population all finite" true
    (List.for_all Integrity.walker_finite (Population.walkers pop))

let test_watchdog_quarantines_nan_position () =
  let _, walkers = mk_walkers 3 in
  Fault.poison_position (List.nth walkers 2) ~index:5;
  let st, pop = run_watchdog walkers in
  check_int "quarantined" 1 st.Integrity.quarantined;
  check_bool "population all finite" true
    (List.for_all Integrity.walker_finite (Population.walkers pop))

let test_watchdog_detects_bit_flip () =
  (* A flipped exponent bit in the serialized state buffer: the scalar
     scan cannot see it, only the recompute audit can. *)
  let _, walkers = mk_walkers 4 in
  let victim = List.nth walkers 1 in
  Fault.flip_buffer_bit victim ~index:0 ~bit:62;
  let st, pop = run_watchdog walkers in
  check_bool "quarantined" true (st.Integrity.quarantined >= 1);
  check_bool "victim removed" false (List.memq victim (Population.walkers pop));
  check_int "population size preserved" 4 (Population.size pop)

let test_watchdog_detects_scalar_drift () =
  (* Accumulated incremental drift of log Ψ beyond tolerance. *)
  let _, walkers = mk_walkers 4 in
  let victim = List.nth walkers 2 in
  Fault.drift_log_psi victim ~delta:0.5;
  let st, pop = run_watchdog walkers in
  check_bool "drift recorded" true (st.Integrity.drift_max >= 0.4);
  check_bool "quarantined" true (st.Integrity.quarantined >= 1);
  check_bool "victim removed" false (List.memq victim (Population.walkers pop))

let test_watchdog_total_loss_reseeds () =
  (* Even a fully poisoned population recovers: fresh walkers are
     re-randomized from the engine. *)
  let _, walkers = mk_walkers 3 in
  List.iter Fault.poison_energy walkers;
  let st, pop = run_watchdog walkers in
  check_int "all quarantined" 3 st.Integrity.quarantined;
  check_int "all reseeded" 3 st.Integrity.recoveries;
  check_int "population size preserved" 3 (Population.size pop);
  check_bool "population all finite" true
    (List.for_all Integrity.walker_finite (Population.walkers pop))

(* ---------- DMC end to end ---------- *)

let harmonic_factory =
  let hsys = Validation.harmonic ~n:3 ~omega:1.0 in
  Build.factory ~variant:Variant.Current_f64 ~seed:600 hsys

let test_dmc_nan_injection_recovers () =
  Fault.reset ();
  Fault.arm_nan_energy ~seed:99 ~rate:0.05;
  let res =
    Dmc.run
      ~watchdog:{ Integrity.default_config with check_every = 3 }
      ~factory:harmonic_factory
      {
        Dmc.default_params with
        Dmc.target_walkers = 8;
        warmup = 4;
        generations = 30;
        tau = 0.02;
        seed = 77;
      }
  in
  let injected = Fault.nans_injected_count () in
  Fault.reset ();
  check_bool "nans were injected" true (injected > 0);
  let it = res.Dmc.integrity in
  check_bool "walkers quarantined" true (it.Integrity.quarantined > 0);
  check_bool "recoveries reported" true (it.Integrity.recoveries > 0);
  check_bool "energy finite" true (Float.is_finite res.Dmc.energy);
  check_bool "no poisoned generation estimate" true
    (Array.for_all Float.is_finite res.Dmc.energy_series);
  check_bool "population survived" true (res.Dmc.mean_population > 2.)

let test_dmc_kill_and_resume () =
  Fault.reset ();
  let dir = tmpdir () in
  let path = Filename.concat dir "dmc.chk" in
  (* "Killed" run: 15 absolute generations, checkpoint every 5. *)
  let res1 =
    Dmc.run ~checkpoint_every:5 ~checkpoint_path:path ~checkpoint_keep:2
      ~factory:harmonic_factory
      {
        Dmc.default_params with
        Dmc.target_walkers = 8;
        warmup = 2;
        generations = 13;
        tau = 0.02;
        seed = 88;
      }
  in
  check_int "three checkpoints written" 3
    res1.Dmc.integrity.Integrity.checkpoints_written;
  Alcotest.(check (list int))
    "rotation kept the last two" [ 10; 15 ]
    (List.map fst (Checkpoint.list_generations ~path));
  (* Resume from the latest valid generation. *)
  let gen, (e_trial, ws) = Checkpoint.load_latest ~path in
  check_int "latest generation" 15 gen;
  let res2 =
    Dmc.run ~initial:(e_trial, ws) ~factory:harmonic_factory
      {
        Dmc.default_params with
        Dmc.target_walkers = 8;
        warmup = 0;
        generations = 5;
        tau = 0.02;
        seed = 89;
      }
  in
  check_bool "resumed energy finite" true (Float.is_finite res2.Dmc.energy);
  (* Corrupt the latest generation: resume falls back to the previous
     one. *)
  Fault.garble_file ~path:(Checkpoint.generation_path ~path 15) ~seed:5;
  let gen, (e_trial, ws) = Checkpoint.load_latest ~path in
  check_int "fell back to generation 10" 10 gen;
  let res3 =
    Dmc.run ~initial:(e_trial, ws) ~factory:harmonic_factory
      {
        Dmc.default_params with
        Dmc.target_walkers = 8;
        warmup = 0;
        generations = 5;
        tau = 0.02;
        seed = 90;
      }
  in
  check_bool "fallback resume energy finite" true
    (Float.is_finite res3.Dmc.energy)

let test_dmc_checkpoint_failure_does_not_kill_run () =
  Fault.reset ();
  let path = "/nonexistent-oqmc-dir/never/run.chk" in
  let res =
    Dmc.run ~checkpoint_every:2 ~checkpoint_path:path
      ~factory:harmonic_factory
      {
        Dmc.default_params with
        Dmc.target_walkers = 4;
        warmup = 0;
        generations = 4;
        tau = 0.02;
        seed = 91;
      }
  in
  check_int "both checkpoint attempts failed" 2
    res.Dmc.integrity.Integrity.checkpoint_failures;
  check_int "none written" 0 res.Dmc.integrity.Integrity.checkpoints_written;
  check_bool "run completed" true (Float.is_finite res.Dmc.energy)

let test_dmc_tiny_run_nan_free () =
  (* Tiny generation counts must not divide by a zero wall time. *)
  let res =
    Dmc.run ~factory:harmonic_factory
      {
        Dmc.default_params with
        Dmc.target_walkers = 2;
        warmup = 0;
        generations = 0;
        tau = 0.02;
        seed = 92;
      }
  in
  List.iter
    (fun (name, v) ->
      check_bool (name ^ " not NaN") false (Float.is_nan v))
    [
      ("energy", res.Dmc.energy);
      ("energy_error", res.Dmc.energy_error);
      ("variance", res.Dmc.variance);
      ("tau_corr", res.Dmc.tau_corr);
      ("efficiency", res.Dmc.efficiency);
      ("acceptance", res.Dmc.acceptance);
      ("throughput", res.Dmc.throughput);
      ("mean_population", res.Dmc.mean_population);
    ]

(* ---------- runner failure aggregation ---------- *)

let test_runner_joins_all_failures () =
  Runner.with_runner ~n_domains:3 ~factory @@ fun runner ->
  let items = Array.init 9 Fun.id in
  (* Every domain fails.  Work is pulled dynamically, so each domain is
     held at its first index until all three have arrived — then all
     fail together: every failure must be collected, none lost. *)
  let arrived = Atomic.make 0 in
  (try
     Runner.parallel_for runner ~n:(Array.length items)
       ~f:(fun ~domain _ ->
         Atomic.incr arrived;
         while Atomic.get arrived < 3 do
           Domain.cpu_relax ()
         done;
         failwith (Printf.sprintf "boom %d" domain));
     Alcotest.fail "expected Domain_failures"
   with
  | Runner.Domain_failures fs ->
      check_int "one failure per domain" 3 (List.length fs);
      Alcotest.(check (list int))
        "domain indices in order" [ 0; 1; 2 ] (List.map fst fs));
  (* A single failing index re-raises the original exception. *)
  (try
     Runner.iter_walkers runner items ~f:(fun _ i ->
         if i = 4 then failwith "solo");
     Alcotest.fail "expected Failure"
   with Failure msg -> Alcotest.(check string) "original exn" "solo" msg);
  (* And the poisoned pool still works afterwards: no leaked or wedged
     workers, every index processed exactly once. *)
  let hits = Array.make 9 0 in
  Runner.iter_walkers runner items ~f:(fun _ i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> check_int (Printf.sprintf "index %d exactly once" i) 1 h)
    hits

(* ---------- VMC drift metric ---------- *)

let test_vmc_reports_drift () =
  let res =
    Vmc.run
      ~factory:(Build.factory ~variant:Variant.Current ~seed:700 sys)
      {
        Vmc.default_params with
        Vmc.n_walkers = 2;
        warmup = 5;
        blocks = 3;
        steps_per_block = 5;
        tau = 0.2;
        seed = 701;
      }
  in
  check_bool "drift_max finite" true (Float.is_finite res.Vmc.drift_max);
  check_bool "drift_max sane" true
    (res.Vmc.drift_max >= 0. && res.Vmc.drift_max < 1.)

let () =
  Alcotest.run "integrity"
    [
      ( "checkpoint_v2",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
          Alcotest.test_case "roundtrip + atomic" `Quick
            test_v2_roundtrip_atomic;
          Alcotest.test_case "v1 compatibility" `Quick test_v1_still_loads;
          Alcotest.test_case "trailing garbage" `Quick
            test_strict_trailing_garbage;
          Alcotest.test_case "count mismatch" `Quick
            test_strict_count_mismatch;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "keeps last K" `Quick test_rotation_keeps_last_k;
          Alcotest.test_case "fallback past corrupt" `Quick
            test_fallback_past_corrupt_generations;
          Alcotest.test_case "truncation property" `Quick
            test_truncation_property;
          Alcotest.test_case "garbled rejected" `Quick
            test_garbled_generation_rejected;
        ] );
      ( "io_faults",
        [
          Alcotest.test_case "retry recovers" `Quick test_write_retry_recovers;
          Alcotest.test_case "retry exhausted" `Quick
            test_write_retry_exhausted;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "clean population" `Quick
            test_watchdog_clean_population;
          Alcotest.test_case "quarantines NaN" `Quick
            test_watchdog_quarantines_nan;
          Alcotest.test_case "NaN position" `Quick
            test_watchdog_quarantines_nan_position;
          Alcotest.test_case "bit flip" `Quick test_watchdog_detects_bit_flip;
          Alcotest.test_case "scalar drift" `Quick
            test_watchdog_detects_scalar_drift;
          Alcotest.test_case "total loss reseeds" `Quick
            test_watchdog_total_loss_reseeds;
        ] );
      ( "dmc_recovery",
        [
          Alcotest.test_case "NaN injection recovers" `Quick
            test_dmc_nan_injection_recovers;
          Alcotest.test_case "kill and resume" `Quick test_dmc_kill_and_resume;
          Alcotest.test_case "checkpoint failure survivable" `Quick
            test_dmc_checkpoint_failure_does_not_kill_run;
          Alcotest.test_case "tiny run NaN-free" `Quick
            test_dmc_tiny_run_nan_free;
        ] );
      ( "runner",
        [
          Alcotest.test_case "joins all failures" `Quick
            test_runner_joins_all_failures;
        ] );
      ( "vmc",
        [ Alcotest.test_case "drift metric" `Quick test_vmc_reports_drift ] );
    ]
