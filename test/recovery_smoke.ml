open Oqmc_core
open Oqmc_workloads
open Oqmc_dist

(* Recovery smoke: a short 4-rank supervised DMC run in which one rank
   is SIGKILLed mid-run by the fault injector and respawned from its
   checkpoint shard.  Asserts the headline robustness guarantees end to
   end: the run completes, the crash was detected and recovered, every
   estimator is finite, and the population stays within control bounds.
   Run with `dune build @recovery-smoke`. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let () =
  let dir = Filename.temp_file "oqmc_recovery" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "smoke.chk" in
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let factory = Build.factory ~variant:Variant.Current_f64 ~seed:900 sys in
  let target = 12 in
  let params =
    {
      Supervisor.default_params with
      ranks = 4;
      target_walkers = target;
      warmup = 3;
      generations = 15;
      tau = 0.02;
      seed = 31;
      n_domains = 1;
      heartbeat_s = 30.;
      max_respawn = 2;
      respawn_backoff = 0.01;
      checkpoint = Some path;
      checkpoint_every = 4;
      faults = [ (1, 10, Fault.Rank_kill) ];
    }
  in
  let res = Supervisor.run ~factory params in
  if res.Supervisor.crashes <> 1 then
    fail "expected 1 crash, saw %d" res.Supervisor.crashes;
  if res.Supervisor.respawns <> 1 then
    fail "expected 1 respawn, saw %d" res.Supervisor.respawns;
  if res.Supervisor.live_ranks <> 4 then
    fail "expected all 4 ranks live, saw %d" res.Supervisor.live_ranks;
  if not (Float.is_finite res.Supervisor.energy) then
    fail "non-finite energy %f" res.Supervisor.energy;
  if not (Float.is_finite res.Supervisor.energy_error) then
    fail "non-finite error bar %f" res.Supervisor.energy_error;
  if not (Float.is_finite res.Supervisor.final_e_trial) then
    fail "non-finite trial energy %f" res.Supervisor.final_e_trial;
  Array.iter
    (fun e -> if not (Float.is_finite e) then fail "non-finite series entry %f" e)
    res.Supervisor.energy_series;
  let t = float_of_int target in
  if
    res.Supervisor.mean_population < t /. 3.
    || res.Supervisor.mean_population > t *. 3.
  then
    fail "population out of control: mean %.1f, target %d"
      res.Supervisor.mean_population target;
  if res.Supervisor.final_walkers = [] then fail "empty final ensemble";
  Printf.printf
    "recovery smoke OK: E = %.6f +/- %.6f, population %.1f/%d, %d crash \
     recovered, %d degraded generation(s), %d exchange messages\n"
    res.Supervisor.energy res.Supervisor.energy_error
    res.Supervisor.mean_population target res.Supervisor.crashes
    res.Supervisor.degraded_generations res.Supervisor.comm_messages
