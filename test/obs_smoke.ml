open Oqmc_core
open Oqmc_workloads
open Oqmc_dist
module Jsonx = Oqmc_obs.Jsonx

(* Observability smoke: a short 4-rank supervised DMC run with tracing
   and telemetry on, validating the artifacts end to end — the Chrome
   trace parses as JSON, carries the supervisor (pid -1) and every rank,
   spans nest within each (pid, tid) lane, and the telemetry JSONL holds
   one well-formed record per measured generation.  Also checks the
   trajectory itself is untouched: estimators finite, population under
   control.  Run with `dune build @obs-smoke`. *)

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

let fget j key =
  match Jsonx.member key j with
  | Some v -> (
      match Jsonx.to_float v with
      | Some f -> f
      | None -> fail "field %S is not a number" key)
  | None -> fail "record missing field %S" key

(* Complete spans within one (pid, tid) lane must nest: sorted by start
   time, each span either lies inside the innermost open span or starts
   after it ends.  Partial overlap means broken begin/end pairing. *)
let check_lane_nesting ~lane spans =
  let eps = 2.0 (* microseconds; export rounds timestamps *) in
  let sorted =
    List.sort (fun (t1, _) (t2, _) -> compare t1 t2) spans
  in
  let stack = ref [] in
  List.iter
    (fun (ts, dur) ->
      let fin = ts +. dur in
      let rec unwind () =
        match !stack with
        | (_, pfin) :: rest when pfin <= ts +. eps ->
            stack := rest;
            unwind ()
        | _ -> ()
      in
      unwind ();
      (match !stack with
      | (pts, pfin) :: _ ->
          if not (ts >= pts -. eps && fin <= pfin +. eps) then
            fail "lane %s: span [%.1f, %.1f] us straddles parent [%.1f, %.1f]"
              lane ts fin pts pfin
      | [] -> ());
      stack := (ts, fin) :: !stack)
    sorted

let () =
  let trace_path = Filename.temp_file "oqmc_obs_smoke" ".trace.json" in
  let telemetry_path = Filename.temp_file "oqmc_obs_smoke" ".jsonl" in
  let sys = Validation.harmonic ~n:4 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current_f64 ~seed:700 sys in
  let ranks = 4 and generations = 10 and warmup = 3 in
  let params =
    {
      Supervisor.default_params with
      ranks;
      target_walkers = 16;
      warmup;
      generations;
      tau = 0.02;
      seed = 41;
      n_domains = 1;
      heartbeat_s = 30.;
      trace = Some trace_path;
      telemetry = Some telemetry_path;
      telemetry_every = 1;
    }
  in
  let res = Supervisor.run ~factory params in

  if res.Supervisor.live_ranks <> ranks then
    fail "expected %d live ranks, saw %d" ranks res.Supervisor.live_ranks;
  if not (Float.is_finite res.Supervisor.energy) then
    fail "non-finite energy %f" res.Supervisor.energy;

  (* --- trace: valid Chrome JSON, all pids present, spans nest --- *)
  let trace =
    match Jsonx.parse_string_exn (read_file trace_path) with
    | j -> j
    | exception Jsonx.Parse_error e -> fail "trace is not valid JSON: %s" e
  in
  let events =
    match Jsonx.(member "traceEvents" trace |> Option.get |> to_list) with
    | Some l -> l
    | None | (exception _) -> fail "trace has no traceEvents array"
  in
  if events = [] then fail "trace has no events";
  let pids =
    List.sort_uniq compare
      (List.map (fun e -> int_of_float (fget e "pid")) events)
  in
  if not (List.mem (-1) pids) then fail "no supervisor (pid -1) events";
  for r = 0 to ranks - 1 do
    if not (List.mem r pids) then fail "no events from rank %d" r
  done;
  let complete =
    List.filter_map
      (fun e ->
        match Jsonx.(member "ph" e |> Option.get |> to_str) with
        | Some "X" ->
            let lane =
              (int_of_float (fget e "pid"), int_of_float (fget e "tid"))
            in
            Some (lane, (fget e "ts", fget e "dur"))
        | _ -> None)
      events
  in
  if complete = [] then fail "trace has no complete spans";
  let lanes = List.sort_uniq compare (List.map fst complete) in
  List.iter
    (fun lane ->
      let spans =
        List.filter_map
          (fun (l, s) -> if l = lane then Some s else None)
          complete
      in
      check_lane_nesting
        ~lane:(Printf.sprintf "pid=%d/tid=%d" (fst lane) (snd lane))
        spans)
    lanes;

  (* --- telemetry: one well-formed record per measured generation --- *)
  let lines = read_lines telemetry_path in
  if List.length lines <> generations then
    fail "expected %d telemetry records, saw %d" generations
      (List.length lines);
  List.iteri
    (fun i line ->
      let j =
        match Jsonx.parse_string_exn line with
        | j -> j
        | exception Jsonx.Parse_error e ->
            fail "telemetry line %d is not valid JSON: %s" (i + 1) e
      in
      let gen = fget j "gen" in
      if int_of_float gen <> warmup + i + 1 then
        fail "telemetry line %d: expected gen %d, saw %g" (i + 1)
          (warmup + i + 1) gen;
      List.iter
        (fun key ->
          if not (Float.is_finite (fget j key)) then
            fail "telemetry line %d: non-finite %S" (i + 1) key)
        [ "e_gen"; "e_trial"; "population"; "acceptance"; "wall_s" ])
    lines;

  Sys.remove trace_path;
  Sys.remove telemetry_path;
  Printf.printf
    "obs smoke OK: E = %.6f +/- %.6f, %d trace events across %d lanes \
     (%d pids), %d telemetry records\n"
    res.Supervisor.energy res.Supervisor.energy_error (List.length events)
    (List.length lanes) (List.length pids) (List.length lines)
