(* Serve smoke: boot the daemon, run three jobs through it — a cold
   run, an identical resubmission that must be served from the result
   cache, and a deadline-bounded job that must drain to a partial
   result instead of hanging — then assert every job landed in a
   definite state, accounting is conserved, and the telemetry stream
   carries per-job queue waits.  Emits BENCH_serve.json (jobs/sec,
   queue-wait p50/p99, cache hit rate).  Run with
   `dune build @serve-smoke`. *)

open Oqmc_serve
module Jsonx = Oqmc_obs.Jsonx

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt
let check name ok = if not ok then die "%s" name

let base =
  let d = Printf.sprintf "/tmp/oqmc-ss.%d" (Unix.getpid ()) in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let socket = Filename.concat base "serve.sock"
let state_dir = Filename.concat base "state"
let telemetry = Filename.concat base "serve.jsonl"

let config =
  {
    Server.default_config with
    Server.socket;
    dir = state_dir;
    max_queue = 8;
    max_running = 2;
    default_retries = 2;
    grace_s = 3.;
    snapshot_every = 2;
    telemetry = Some telemetry;
  }

(* Harmonic-oscillator VMC: fast, deterministic enough for a smoke. *)
let deck ?(seed = 7) ?(blocks = 2) () =
  Printf.sprintf
    "method = vmc\nworkload = harmonic\nwalkers = 32\nblocks = %d\n\
     steps = 10\ntau = 0.3\nseed = %d\n"
    blocks seed

(* A long harmonic DMC run the deadline must truncate: many cheap
   generations so the drain lands at a generation boundary well before
   natural completion. *)
let long_deck =
  "method = dmc\nworkload = harmonic\nwalkers = 16\nblocks = 200\n\
   steps = 10\ntau = 0.01\nseed = 99\n"

(* Percentiles via the shared metrics machinery — the same log2-bucket
   quantile estimator the status endpoint serves. *)
let percentile p xs =
  match
    Oqmc_obs.Metrics.quantile (Oqmc_obs.Metrics.hview_of_values xs) (p /. 100.)
  with
  | Some (est, _err) -> est
  | None -> 0.

let run_deck ?deadline_s d =
  match Client.run_deck ~socket ~client:"smoke" ?deadline_s d with
  | Ok o -> o
  | Error reason -> die "job did not reach Done: %s" reason

let () =
  rm_rf state_dir;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (try Unix.unlink telemetry with Unix.Unix_error _ -> ());
  flush stdout;
  let daemon =
    match Unix.fork () with
    | 0 -> (
        try
          Server.serve config;
          Stdlib.exit 0
        with e ->
          prerr_endline ("daemon: " ^ Printexc.to_string e);
          Stdlib.exit 1)
    | pid -> pid
  in
  let t0 = Unix.gettimeofday () in

  (* Job 1: cold run to completion. *)
  let o1 = run_deck (deck ()) in
  check "job1 measured blocks" (o1.Job.gens > 0);
  check "job1 not drained" (not o1.Job.drained);
  check "job1 finite energy" (Float.is_finite o1.Job.energy);

  (* Job 2: byte-different deck (comments, key order), same physics —
     must be a cache hit with the identical result. *)
  let resub =
    "# same physics, different text\nseed = 7\nsteps = 10\ntau = 0.3\n\
     blocks = 2\nwalkers = 32\nworkload = harmonic\nmethod = vmc\n"
  in
  let fd = Client.connect socket in
  let o2 =
    match Client.submit fd ~client:"smoke" ~wait:true resub with
    | Proto.Accepted { cached; _ } -> (
        check "job2 admitted from the cache" cached;
        match Client.await fd with
        | Proto.Job_done { outcome; cached = true; _ } -> outcome
        | r ->
            die "job2: expected cached Job_done, got %s"
              (Jsonx.to_string (Proto.reply_to_json r)))
    | r ->
        die "job2: expected Accepted, got %s"
          (Jsonx.to_string (Proto.reply_to_json r))
  in
  Client.close fd;
  check "cache hit is bit-identical"
    (Int64.bits_of_float o1.Job.energy = Int64.bits_of_float o2.Job.energy
    && Array.length o1.Job.series = Array.length o2.Job.series
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         o1.Job.series o2.Job.series);

  (* Job 3: wall-clock deadline.  The job must end in a definite Done
     with a drained partial result — never a hang, never a lost job. *)
  let o3 = run_deck ~deadline_s:1.0 long_deck in
  check "job3 drained at the deadline" o3.Job.drained;
  check "job3 truncated early" (o3.Job.gens < 2000);
  check "job3 still measured something" (o3.Job.gens > 0);

  (* One rejection for the books: queue bound 8 is enforced per
     admission, malformed decks bounce with a reason. *)
  let fd = Client.connect socket in
  (match Client.submit fd ~client:"smoke" ~wait:false "method = warp\n" with
  | Proto.Rejected { reason; _ } ->
      check "malformed deck names the problem" (String.length reason > 0)
  | r ->
      die "bad deck: expected Rejected, got %s"
        (Jsonx.to_string (Proto.reply_to_json r)));

  (* Accounting must be conserved across everything above. *)
  let s = Client.stats fd in
  Client.close fd;
  let wall = Unix.gettimeofday () -. t0 in
  check "conserved accounting"
    (s.Proto.accepted
    = s.Proto.done_ + s.Proto.failed + s.Proto.cancelled + s.Proto.queued
      + s.Proto.running + s.Proto.retrying);
  check "three jobs done" (s.Proto.done_ = 3);
  check "one cache hit" (s.Proto.cache_hits = 1);
  check "one rejection" (s.Proto.rejected = 1);

  (* Graceful shutdown. *)
  Unix.kill daemon Sys.sigterm;
  let _, status = Unix.waitpid [] daemon in
  check "daemon drained cleanly" (status = Unix.WEXITED 0);

  (* Telemetry: every start event carries its queue wait. *)
  let records =
    In_channel.with_open_bin telemetry In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map Jsonx.parse_string_exn
  in
  let field name j = Option.bind (Jsonx.member name j) Jsonx.to_str in
  let events = List.filter_map (field "event") records in
  let count e = List.length (List.filter (( = ) e) events) in
  check "telemetry: two starts (the cache hit never runs)"
    (count "start" = 2);
  check "telemetry: three dones" (count "done" = 3);
  check "telemetry: the rejection is visible" (count "rejected" = 1);
  check "telemetry: the deadline drain is visible"
    (count "deadline_drain" = 1);
  let waits =
    List.filter_map
      (fun j ->
        match field "event" j with
        | Some "start" ->
            Option.bind (Jsonx.member "queue_wait_s" j) Jsonx.to_float
        | _ -> None)
      records
  in
  check "every start has a queue wait" (List.length waits = 2);
  check "queue waits are sane"
    (List.for_all (fun w -> w >= 0. && w < wall) waits);

  let p50 = percentile 50. waits and p99 = percentile 99. waits in
  let done_jobs = s.Proto.done_ in
  let bench =
    Jsonx.Obj
      [
        ("bench", Jsonx.Str "serve_smoke");
        ( "header",
          Jsonx.Obj
            [
              ("schema", Jsonx.Num 1.);
              ("precision", Jsonx.Str "f32");
              ("delay", Jsonx.Num 1.);
            ] );
        ("jobs", Jsonx.Num (float_of_int done_jobs));
        ("wall_s", Jsonx.Num wall);
        ("jobs_per_s", Jsonx.Num (float_of_int done_jobs /. wall));
        ("queue_p50_s", Jsonx.Num p50);
        ("queue_p99_s", Jsonx.Num p99);
        ( "cache_hit_rate",
          Jsonx.Num
            (float_of_int s.Proto.cache_hits /. float_of_int s.Proto.accepted)
        );
        ("rejected", Jsonx.Num (float_of_int s.Proto.rejected));
      ]
  in
  let out =
    match Sys.getenv_opt "OQMC_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_serve.json"
  in
  let oc = open_out out in
  output_string oc (Jsonx.to_string bench);
  output_char oc '\n';
  close_out oc;
  rm_rf base;
  Printf.printf
    "serve smoke OK: %d jobs in %.2f s (%.2f jobs/s), queue p50 %.1f ms p99 \
     %.1f ms, cache hit rate %.2f, BENCH -> %s\n%!"
    done_jobs wall
    (float_of_int done_jobs /. wall)
    (1000. *. p50) (1000. *. p99)
    (float_of_int s.Proto.cache_hits /. float_of_int s.Proto.accepted)
    out
