(* Observability layer: JSON codec, trace rings, metrics registry,
   telemetry sink — and the two contracts the drivers promise: spans
   cost nothing measurable when disabled, and trajectories are
   bit-identical with tracing on or off. *)

open Oqmc_containers
open Oqmc_core
open Oqmc_workloads
module Jsonx = Oqmc_obs.Jsonx
module Trace = Oqmc_obs.Trace
module Metrics = Oqmc_obs.Metrics
module Telemetry = Oqmc_obs.Telemetry
module Progress = Oqmc_obs.Progress

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf tol = Alcotest.(check (float tol))

let factory sys = Build.factory ~variant:Variant.Current ~seed:3 sys
let harmonic_sys = lazy (Validation.harmonic ~n:4 ~omega:1.0)

(* ---------- jsonx ---------- *)

let test_jsonx_roundtrip () =
  let v =
    Jsonx.(
      Obj
        [
          ("null", Null);
          ("flag", Bool true);
          ("num", Num 3.125);
          ("neg", Num (-0.5));
          ("int", Num 42.);
          ("str", Str "line\nquote\"back\\slash\ttab");
          ("arr", Arr [ Num 1.; Str "two"; Bool false; Null ]);
          ("nested", Obj [ ("k", Arr [ Obj [ ("deep", Num 7.) ] ]) ]);
        ])
  in
  let s = Jsonx.to_string v in
  check_bool "roundtrip" true (Jsonx.parse_string_exn s = v)

let test_jsonx_nonfinite () =
  Alcotest.(check string) "nan" "null" (Jsonx.to_string (Num nan));
  Alcotest.(check string) "inf" "null" (Jsonx.to_string (Num infinity))

let test_jsonx_accessors () =
  let v = Jsonx.parse_string_exn {|{"a": [1, 2.5], "b": "x"}|} in
  (match Jsonx.member "a" v with
  | Some a -> (
      match Jsonx.to_list a with
      | Some [ x; y ] ->
          checkf 1e-12 "elt 0" 1. (Option.get (Jsonx.to_float x));
          checkf 1e-12 "elt 1" 2.5 (Option.get (Jsonx.to_float y))
      | _ -> Alcotest.fail "a not a 2-list")
  | None -> Alcotest.fail "missing a");
  check_bool "b" true (Jsonx.(member "b" v |> Option.get |> to_str) = Some "x");
  check_bool "absent" true (Jsonx.member "zz" v = None)

let test_jsonx_rejects_garbage () =
  let bad s =
    match Jsonx.parse_string_exn s with
    | exception Jsonx.Parse_error _ -> true
    | _ -> false
  in
  check_bool "trailing" true (bad "{} x");
  check_bool "truncated" true (bad {|{"a": |});
  check_bool "bare word" true (bad "fnord");
  check_bool "empty" true (bad "")

(* ---------- trace ring ---------- *)

let test_trace_disabled_is_passthrough () =
  Trace.disable ();
  check_bool "disabled" false (Trace.enabled ());
  let r = Trace.with_span "noop" (fun () -> 17) in
  check_int "thunk value" 17 r;
  Trace.instant "nothing";
  check_int "no events" 0 (List.length (Trace.events ()))

let test_trace_ring_overwrite () =
  (* rings clamp to a minimum capacity of 16 events *)
  Trace.enable ~capacity:16 ();
  for i = 1 to 40 do
    Trace.instant ~args:[ ("i", string_of_int i) ] "tick"
  done;
  let evs = Trace.events () in
  check_bool "bounded" true (List.length evs <= 16);
  check_int "dropped" 24 (Trace.dropped ());
  (* survivors are the newest events *)
  List.iter
    (fun (e : Trace.event) ->
      let i = int_of_string (List.assoc "i" e.Trace.args) in
      check_bool "newest kept" true (i > 24))
    evs;
  Trace.disable ()

let test_trace_span_nesting () =
  Trace.enable ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1)));
  let find n =
    List.find (fun (e : Trace.event) -> e.Trace.name = n) (Trace.events ())
  in
  let o = find "outer" and i = find "inner" in
  check_bool "inner starts after outer" true (i.Trace.ts >= o.Trace.ts);
  check_bool "inner ends before outer" true
    (i.Trace.ts +. i.Trace.dur <= o.Trace.ts +. o.Trace.dur +. 1e-9);
  (* non-lexical pairs nest the same way *)
  Trace.clear ();
  Trace.span_begin "a";
  Trace.span_begin "b";
  Trace.span_end ();
  Trace.span_end ();
  let a = find "a" and b = find "b" in
  check_bool "begin/end nest" true
    (b.Trace.ts >= a.Trace.ts
    && b.Trace.ts +. b.Trace.dur <= a.Trace.ts +. a.Trace.dur +. 1e-9);
  Trace.disable ()

let test_trace_span_exception_safe () =
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  (* the span closed despite the exception: a fresh span still records *)
  Trace.with_span "after" (fun () -> ());
  let names =
    List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ())
  in
  check_bool "boom recorded" true (List.mem "boom" names);
  check_bool "after recorded" true (List.mem "after" names);
  Trace.disable ()

let test_trace_export_is_valid_chrome_json () =
  Trace.enable ();
  Trace.set_rank 3;
  Trace.with_span ~args:[ ("k", "v") ] "span" (fun () -> ());
  Trace.instant "mark";
  let j = Jsonx.parse_string_exn (Trace.export_string ()) in
  let evs =
    Jsonx.member "traceEvents" j |> Option.get |> Jsonx.to_list |> Option.get
  in
  check_bool "has events" true (List.length evs >= 2);
  List.iter
    (fun e ->
      check_bool "name" true (Jsonx.member "name" e <> None);
      check_bool "ph" true (Jsonx.member "ph" e <> None);
      check_bool "ts" true (Jsonx.member "ts" e <> None);
      checkf 1e-12 "pid = rank" 3.
        (Option.get Jsonx.(member "pid" e |> Option.get |> to_float)))
    evs;
  Trace.set_rank 0;
  Trace.disable ()

let test_trace_serialize_ingest () =
  Trace.enable ();
  Trace.with_span "shipped" (fun () -> ());
  Trace.instant ~args:[ ("why", "test") ] "mark";
  let blob = Trace.serialize () in
  Trace.clear ();
  check_int "cleared" 0 (List.length (Trace.events ()));
  Trace.ingest ~pid:42 blob;
  let evs = Trace.events () in
  check_int "ingested" 2 (List.length evs);
  List.iter
    (fun (e : Trace.event) -> check_int "pid from ingest" 42 e.Trace.pid)
    evs;
  let mark =
    List.find (fun (e : Trace.event) -> e.Trace.name = "mark") evs
  in
  check_bool "args survive" true (List.assoc "why" mark.Trace.args = "test");
  Alcotest.check_raises "corrupt blob" Trace.Malformed (fun () ->
      Trace.ingest ~pid:0 "this is not a trace blob");
  Trace.disable ()

(* ---------- timers shim + ordering ---------- *)

let test_timers_emit_spans_when_tracing () =
  Trace.enable ();
  let t = Timers.create () in
  Timers.time t "kernel.fake" (fun () -> ignore (Sys.opaque_identity 2));
  check_bool "span recorded" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.name = "kernel.fake")
       (Trace.events ()));
  check_int "timer still counts" 1 (Timers.count t "kernel.fake");
  Trace.disable ();
  let before = List.length (Trace.events ()) in
  Timers.time t "kernel.fake" (fun () -> ());
  check_int "no shim when disabled" before (List.length (Trace.events ()))

let test_timers_profile_ordering () =
  let t = Timers.create () in
  Timers.add t "zeta" 1.0;
  Timers.add t "alpha" 3.0;
  Timers.add t "mid" 2.0;
  (* profile and pp order by descending total… *)
  (match Timers.profile t with
  | (k1, f1) :: (k2, _) :: (k3, f3) :: _ ->
      Alcotest.(check string) "hottest first" "alpha" k1;
      Alcotest.(check string) "then mid" "mid" k2;
      Alcotest.(check string) "coolest last" "zeta" k3;
      checkf 1e-12 "fractions" 0.5 f1;
      checkf 1e-12 "fractions" (1. /. 6.) f3
  | _ -> Alcotest.fail "profile arity");
  let pp_str = Format.asprintf "%a" Timers.pp t in
  let pos key =
    let rec find i =
      if i + String.length key > String.length pp_str then -1
      else if String.sub pp_str i (String.length key) = key then i
      else find (i + 1)
    in
    find 0
  in
  check_bool "pp descending" true
    (pos "alpha" >= 0 && pos "alpha" < pos "mid" && pos "mid" < pos "zeta");
  (* …while snapshot stays key-sorted for stable diffs *)
  (match Timers.snapshot t with
  | [ (k1, _, _); (k2, _, _); (k3, _, _) ] ->
      check_bool "snapshot key-sorted" true
        (k1 = "alpha" && k2 = "mid" && k3 = "zeta")
  | _ -> Alcotest.fail "snapshot arity")

let test_timers_merge_monotone_under_pool () =
  (* Satellite: merged pool timers only ever grow across parallel
     regions, and the instrumented work is counted exactly once. *)
  let sys = Lazy.force harmonic_sys in
  Runner.with_runner ~n_domains:2 ~factory:(factory sys) @@ fun r ->
  let prev = ref (Timers.snapshot (Runner.merged_timers r)) in
  for _region = 1 to 3 do
    Runner.parallel_for r ~n:64 ~f:(fun ~domain i ->
        let tm = (Runner.engine r domain).Engine_api.timers in
        Timers.time tm "obs.work" (fun () ->
            ignore (Sys.opaque_identity (sin (float_of_int i)))));
    let cur = Timers.snapshot (Runner.merged_timers r) in
    List.iter
      (fun (k, tot, cnt) ->
        match List.find_opt (fun (k', _, _) -> k' = k) cur with
        | None -> Alcotest.fail ("timer key vanished: " ^ k)
        | Some (_, tot', cnt') ->
            check_bool "total monotone" true (tot' >= tot -. 1e-12);
            check_bool "count monotone" true (cnt' >= cnt))
      !prev;
    prev := cur
  done;
  match List.find_opt (fun (k, _, _) -> k = "obs.work") !prev with
  | None -> Alcotest.fail "obs.work never recorded"
  | Some (_, _, cnt) -> check_int "exactly once per index" (3 * 64) cnt

(* ---------- metrics registry ---------- *)

let test_metrics_counters_gauges () =
  Metrics.reset ();
  let c = Metrics.counter "t.counter" in
  Metrics.inc c;
  Metrics.add c 4;
  check_int "counter" 5 (Metrics.counter_value c);
  check_int "same handle" 5 (Metrics.counter_value (Metrics.counter "t.counter"));
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.5;
  checkf 1e-12 "gauge" 2.5 (Metrics.gauge_value g);
  check_bool "kind clash" true
    (match Metrics.gauge "t.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_histogram () =
  Metrics.reset ();
  let h = Metrics.histogram "t.histo" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; nan; infinity ];
  match Metrics.find (Metrics.snapshot ()) "t.histo" with
  | Some (Metrics.Histogram v) ->
      check_int "non-finite dropped" 3 v.Metrics.count;
      checkf 1e-12 "sum" 5.0 v.Metrics.sum;
      checkf 1e-12 "min" 0.5 v.Metrics.min;
      checkf 1e-12 "max" 3.0 v.Metrics.max;
      check_bool "buckets populated" true (v.Metrics.buckets <> []);
      List.iter
        (fun (ub, _) ->
          checkf 1e-9 "power-of-two bound" 0.
            (Float.rem (Float.log2 ub) 1.0))
        v.Metrics.buckets
  | _ -> Alcotest.fail "histogram missing"

let test_metrics_snapshot_diff () =
  Metrics.reset ();
  let c = Metrics.counter "t.d.counter" and g = Metrics.gauge "t.d.gauge" in
  Metrics.add c 10;
  Metrics.set g 1.0;
  let prev = Metrics.snapshot () in
  Metrics.add c 7;
  Metrics.set g 9.0;
  let d = Metrics.diff ~prev (Metrics.snapshot ()) in
  check_bool "counter delta" true
    (Metrics.find d "t.d.counter" = Some (Metrics.Counter 7));
  check_bool "gauge current" true
    (Metrics.find d "t.d.gauge" = Some (Metrics.Gauge 9.0));
  check_bool "snapshot sorted" true
    (let names = List.map fst prev in
     names = List.sort compare names)

let test_metrics_wire_roundtrip () =
  Metrics.reset ();
  Metrics.add (Metrics.counter "t.w.counter") 5;
  Metrics.set (Metrics.gauge "t.w.gauge") 2.5;
  let kvs = Metrics.wire_kvs (Metrics.snapshot ()) in
  check_bool "kinds" true
    (List.for_all (fun { Metrics.kind; _ } -> kind = 'c' || kind = 'g') kvs);
  Metrics.reset ();
  check_int "reset zeroes" 0 (Metrics.counter_value (Metrics.counter "t.w.counter"));
  Metrics.absorb_kvs kvs;
  Metrics.absorb_kvs [ { Metrics.kind = '?'; key = "x"; value = 1. } ];
  check_int "counter restored" 5
    (Metrics.counter_value (Metrics.counter "t.w.counter"));
  checkf 1e-12 "gauge restored" 2.5
    (Metrics.gauge_value (Metrics.gauge "t.w.gauge"));
  (* absorbing twice accumulates counters — the per-generation deltas
     the ranks ship are additive by construction *)
  Metrics.absorb_kvs kvs;
  check_int "counters additive" 10
    (Metrics.counter_value (Metrics.counter "t.w.counter"))

let test_metrics_json () =
  Metrics.reset ();
  Metrics.add (Metrics.counter "t.j.counter") 3;
  let j = Metrics.json_of_snapshot (Metrics.snapshot ()) in
  let parsed = Jsonx.parse_string_exn (Jsonx.to_string j) in
  check_bool "self-describing json" true
    (Jsonx.member "t.j.counter" parsed <> None)

(* ---------- telemetry sink + progress ---------- *)

let test_telemetry_jsonl () =
  let path = Filename.temp_file "oqmc_test" ".jsonl" in
  let n =
    Telemetry.with_sink path (fun sink ->
        for g = 1 to 3 do
          Telemetry.emit sink
            Jsonx.(Obj [ ("gen", Num (float_of_int g)); ("e", Num (-1.5)) ])
        done;
        Telemetry.records sink)
  in
  check_int "records counted" 3 n;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "one line per record" 3 (List.length lines);
  List.iteri
    (fun i line ->
      let j = Jsonx.parse_string_exn line in
      checkf 1e-12 "gen field"
        (float_of_int (i + 1))
        (Option.get Jsonx.(member "gen" j |> Option.get |> to_float)))
    lines

let test_progress_line () =
  let path = Filename.temp_file "oqmc_test" ".progress" in
  let oc = open_out path in
  let p = Progress.create ~oc ~min_interval:0. () in
  Progress.update p "gen 1/10";
  Progress.update p "gen 2/10";
  Progress.finish p;
  Progress.finish p;
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check_bool "painted something" true (len > 0)

(* ---------- progress interject: no torn lines ---------- *)

(* Naive substring scan; test inputs are tiny. *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = find_sub s sub <> None

let test_progress_interject () =
  let path = Filename.temp_file "oqmc_test" ".progress" in
  let oc = open_out path in
  let p = Progress.create ~oc ~min_interval:0. () in
  Progress.update p "gen 1/10";
  Progress.interject p "warning: rank 2 straggling";
  Progress.update p "gen 2/10";
  Progress.finish p;
  close_out oc;
  let out = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  (* The painted line is erased before the warning, the warning owns a
     full line, and the next update repaints immediately (throttle
     reset). *)
  check_bool "status erased before the warning" true
    (match find_sub out "warning:" with
    | None -> false
    | Some i ->
        let erase = "\r\027[K" in
        i >= String.length erase
        && String.sub out (i - String.length erase) (String.length erase)
           = erase);
  check_bool "warning on its own line" true
    (contains out "warning: rank 2 straggling\n");
  check_bool "repaint after interject" true (contains out "gen 2/10")

(* ---------- exposition ---------- *)

module Expo = Oqmc_obs.Expo

(* Golden rendering: 1.0/2.0/4.0 land in log2 buckets bounded 2/4/8. *)
let expo_snap () =
  [
    ("app.moves", Metrics.Counter 42);
    ("app.ratio", Metrics.Gauge 0.5);
    ("app.wall", Metrics.Histogram (Metrics.hview_of_values [ 1.0; 2.0; 4.0 ]));
  ]

let test_expo_golden_text () =
  let golden =
    String.concat "\n"
      [
        "# TYPE app_moves counter";
        "app_moves 42";
        "# TYPE app_ratio gauge";
        "app_ratio 0.5";
        "# TYPE app_wall histogram";
        "app_wall_bucket{le=\"2\"} 1";
        "app_wall_bucket{le=\"4\"} 2";
        "app_wall_bucket{le=\"8\"} 3";
        "app_wall_bucket{le=\"+Inf\"} 3";
        "app_wall_sum 7";
        "app_wall_count 3";
        "";
      ]
  in
  Alcotest.(check string) "prometheus text" golden (Expo.text (expo_snap ()))

let test_expo_json () =
  let j = Expo.json (expo_snap ()) in
  let wall = Option.get (Jsonx.member "app.wall" j) in
  check_int "count" 3
    (int_of_float (Option.get (Option.bind (Jsonx.member "count" wall) Jsonx.to_float)));
  let p50 =
    Option.get (Option.bind (Jsonx.member "p50" wall) Jsonx.to_float)
  in
  check_bool "p50 within data range" true (p50 >= 1.0 && p50 <= 4.0);
  (* The whole document roundtrips through the wire format. *)
  let s = Jsonx.to_string j in
  check_bool "roundtrips" true (Jsonx.parse_string_exn s = j)

(* ---------- quantiles: honest error bars (QCheck) ---------- *)

let samples_arb =
  QCheck.(list_of_size Gen.(int_range 1 100) (float_range 1e-6 1e6))

(* Empirical quantile: value at rank ceil(q*n), 1-based. *)
let emp_quantile vs q =
  let a = Array.of_list vs in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  a.(min (n - 1) (rank - 1))

let prop_quantile_honest =
  QCheck.Test.make ~count:300
    ~name:"quantile estimate within [min,max] and err covers the truth"
    QCheck.(pair samples_arb (float_range 0. 1.))
    (fun (vs, q) ->
      let hv = Metrics.hview_of_values vs in
      match Metrics.quantile hv q with
      | None -> false
      | Some (est, err) ->
          let t = emp_quantile vs q in
          est >= hv.Metrics.min
          && est <= hv.Metrics.max
          && err >= 0.
          && Float.abs (est -. t) <= err +. 1e-9)

let prop_quantile_monotone =
  QCheck.Test.make ~count:300 ~name:"quantile monotone in q"
    QCheck.(triple samples_arb (float_range 0. 1.) (float_range 0. 1.))
    (fun (vs, a, b) ->
      let qlo = Float.min a b and qhi = Float.max a b in
      let hv = Metrics.hview_of_values vs in
      match (Metrics.quantile hv qlo, Metrics.quantile hv qhi) with
      | Some (e1, _), Some (e2, _) -> e1 <= e2 +. 1e-12
      | _ -> false)

let prop_quantile_empty =
  QCheck.Test.make ~count:20 ~name:"empty histogram has no quantiles"
    QCheck.(float_range 0. 1.)
    (fun q -> Metrics.quantile (Metrics.hview_of_values []) q = None)

(* ---------- flight recorder ---------- *)

module Flightrec = Oqmc_obs.Flightrec

let test_flightrec_ring_wrap () =
  Flightrec.set_capacity 8;
  for i = 1 to 20 do
    Flightrec.record "tick" (Jsonx.Num (float_of_int i))
  done;
  let es = Flightrec.entries () in
  check_int "ring holds capacity" 8 (List.length es);
  check_int "recorded counts everything" 20 (Flightrec.recorded ());
  (* Oldest first, and the survivors are the newest 8. *)
  let nums =
    List.map
      (fun (e : Flightrec.entry) ->
        int_of_float (Option.get (Jsonx.to_float e.Flightrec.data)))
      es
  in
  Alcotest.(check (list int)) "newest 8, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    nums;
  Flightrec.set_capacity 512

let test_flightrec_dump_replay () =
  Flightrec.set_capacity 64;
  Flightrec.clear ();
  Flightrec.record "gen" (Jsonx.Obj [ ("gen", Jsonx.Num 7.) ]);
  Flightrec.note "rank %d respawned" 2;
  let path = Filename.temp_file "oqmc_test" ".flightrec" in
  Flightrec.dump ~reason:"unit test" ~path ();
  let pm = Flightrec.replay ~path in
  Sys.remove path;
  check_bool "complete (CRC matched)" true pm.Flightrec.complete;
  check_int "both records replayed" 2 (List.length pm.Flightrec.records);
  check_bool "kinds preserved" true
    (List.map (fun (e : Flightrec.entry) -> e.Flightrec.kind)
       pm.Flightrec.records
    = [ "gen"; "note" ]);
  check_bool "describe mentions the reason" true
    (contains (Flightrec.describe pm) "unit test")

let test_flightrec_torn_tail () =
  Flightrec.set_capacity 64;
  Flightrec.clear ();
  for i = 1 to 10 do
    Flightrec.record "gen" (Jsonx.Obj [ ("gen", Jsonx.Num (float_of_int i)) ])
  done;
  let path = Filename.temp_file "oqmc_test" ".flightrec" in
  Flightrec.dump ~reason:"torn" ~path ();
  (* Tear the file mid-line, as a crash during the dump would. *)
  let whole = In_channel.with_open_bin path In_channel.input_all in
  let torn = String.sub whole 0 (String.length whole - 17) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc torn);
  let pm = Flightrec.replay ~path in
  Sys.remove path;
  check_bool "flagged incomplete" true (not pm.Flightrec.complete);
  check_bool "recovered most records" true
    (List.length pm.Flightrec.records >= 8);
  (* Garbage is refused outright, not half-parsed. *)
  let bad = Filename.temp_file "oqmc_test" ".notflightrec" in
  Out_channel.with_open_bin bad (fun oc ->
      Out_channel.output_string oc "just some text\n");
  check_bool "non-dump raises Not_flightrec" true
    (match Flightrec.replay ~path:bad with
    | _ -> false
    | exception Flightrec.Not_flightrec _ -> true);
  Sys.remove bad

(* ---------- bit-identity: observability must not perturb physics ---------- *)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let test_dmc_bit_identical_with_tracing () =
  let sys = Lazy.force harmonic_sys in
  let params =
    {
      Dmc.target_walkers = 8;
      warmup = 4;
      generations = 8;
      tau = 0.02;
      seed = 11;
      n_domains = 1;
      ranks = 1;
    }
  in
  Trace.disable ();
  let off = Dmc.run ~factory:(factory sys) params in
  Trace.enable ();
  let path = Filename.temp_file "oqmc_test" ".jsonl" in
  let on =
    Telemetry.with_sink path (fun sink ->
        Dmc.run ~telemetry:sink ~telemetry_every:2 ~factory:(factory sys)
          params)
  in
  Trace.disable ();
  Sys.remove path;
  check_bool "trace recorded generations" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.name = "dmc.generation")
       (Trace.events ()));
  check_bool "energy series bit-identical" true
    (bits_equal off.Dmc.energy_series on.Dmc.energy_series);
  check_bool "population series identical" true
    (off.Dmc.population_series = on.Dmc.population_series);
  check_bool "e_trial bit-identical" true
    (Int64.bits_of_float off.Dmc.final_e_trial
    = Int64.bits_of_float on.Dmc.final_e_trial)

let test_vmc_bit_identical_with_tracing () =
  let sys = Lazy.force harmonic_sys in
  let params =
    {
      Vmc.n_walkers = 4;
      warmup = 10;
      blocks = 4;
      steps_per_block = 5;
      tau = 0.3;
      seed = 21;
      n_domains = 1;
    }
  in
  Trace.disable ();
  let off = Vmc.run ~factory:(factory sys) params in
  Trace.enable ();
  let path = Filename.temp_file "oqmc_test" ".jsonl" in
  let on =
    Telemetry.with_sink path (fun sink ->
        Vmc.run ~telemetry:sink ~factory:(factory sys) params)
  in
  Trace.disable ();
  Sys.remove path;
  check_bool "block energies bit-identical" true
    (bits_equal off.Vmc.block_energies on.Vmc.block_energies);
  check_bool "energy bit-identical" true
    (Int64.bits_of_float off.Vmc.energy = Int64.bits_of_float on.Vmc.energy)

let () =
  Alcotest.run "obs"
    [
      ( "jsonx",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonx_roundtrip;
          Alcotest.test_case "non-finite" `Quick test_jsonx_nonfinite;
          Alcotest.test_case "accessors" `Quick test_jsonx_accessors;
          Alcotest.test_case "rejects garbage" `Quick
            test_jsonx_rejects_garbage;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled passthrough" `Quick
            test_trace_disabled_is_passthrough;
          Alcotest.test_case "ring overwrite" `Quick test_trace_ring_overwrite;
          Alcotest.test_case "span nesting" `Quick test_trace_span_nesting;
          Alcotest.test_case "exception safe" `Quick
            test_trace_span_exception_safe;
          Alcotest.test_case "chrome export" `Quick
            test_trace_export_is_valid_chrome_json;
          Alcotest.test_case "serialize/ingest" `Quick
            test_trace_serialize_ingest;
        ] );
      ( "timers",
        [
          Alcotest.test_case "trace shim" `Quick
            test_timers_emit_spans_when_tracing;
          Alcotest.test_case "profile ordering" `Quick
            test_timers_profile_ordering;
          Alcotest.test_case "merge monotone under pool" `Quick
            test_timers_merge_monotone_under_pool;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters/gauges" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "snapshot/diff" `Quick test_metrics_snapshot_diff;
          Alcotest.test_case "wire roundtrip" `Quick
            test_metrics_wire_roundtrip;
          Alcotest.test_case "json" `Quick test_metrics_json;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "jsonl sink" `Quick test_telemetry_jsonl;
          Alcotest.test_case "progress line" `Quick test_progress_line;
          Alcotest.test_case "interject" `Quick test_progress_interject;
        ] );
      ( "expo",
        [
          Alcotest.test_case "golden text" `Quick test_expo_golden_text;
          Alcotest.test_case "json" `Quick test_expo_json;
        ] );
      ( "quantile",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantile_honest; prop_quantile_monotone; prop_quantile_empty ]
      );
      ( "flightrec",
        [
          Alcotest.test_case "ring wrap" `Quick test_flightrec_ring_wrap;
          Alcotest.test_case "dump/replay" `Quick test_flightrec_dump_replay;
          Alcotest.test_case "torn tail" `Quick test_flightrec_torn_tail;
        ] );
      ( "bit_identity",
        [
          Alcotest.test_case "dmc" `Quick test_dmc_bit_identical_with_tracing;
          Alcotest.test_case "vmc" `Quick test_vmc_bit_identical_with_tracing;
        ] );
    ]
