(* Persistent domain pool + crowd-batched kernels.

   Pins the pool's contract (exactly n_domains - 1 spawns per lifetime,
   exactly-once dynamic scheduling for uneven walker counts, idempotent
   shutdown) and the batched-kernel contract (batch results identical to
   scalar calls, including positions on the periodic wrap planes; crowd
   drivers bit-identical to the scalar reference path). *)

open Oqmc_containers
open Oqmc_rng
open Oqmc_particle
open Oqmc_wavefunction
open Oqmc_core
open Oqmc_workloads
module B3_64 = Oqmc_spline.Bspline3d.Make (Precision.F64)
module B3_32 = Oqmc_spline.Bspline3d.Make (Precision.F32)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let factory sys = Build.factory ~variant:Variant.Current ~seed:3 sys
let harmonic_sys = lazy (Validation.harmonic ~n:4 ~omega:1.0)

(* ---------- grain size ---------- *)

let test_grain_for () =
  check_int "tiny n" 1 (Runner.grain_for ~n:1 ~n_domains:4);
  check_int "n = 0" 1 (Runner.grain_for ~n:0 ~n_domains:4);
  check_int "below one grain each" 1 (Runner.grain_for ~n:8 ~n_domains:4);
  check_int "several grains per domain" 4
    (Runner.grain_for ~n:64 ~n_domains:4);
  check_int "capped at 32" 32 (Runner.grain_for ~n:4096 ~n_domains:4);
  (* enough grains that every domain can get work *)
  List.iter
    (fun (n, nd) ->
      let g = Runner.grain_for ~n ~n_domains:nd in
      check_bool "grain positive" true (g >= 1);
      if n >= nd then
        check_bool "at least one grain per domain" true
          ((n + g - 1) / g >= nd))
    [ (1, 1); (7, 2); (9, 3); (10, 3); (100, 4); (1000, 7) ]

(* ---------- explicit grain override ---------- *)

let test_explicit_grain () =
  let sys = Lazy.force harmonic_sys in
  List.iter
    (fun n_domains ->
      Runner.with_runner ~n_domains ~factory:(factory sys) @@ fun runner ->
      (* any explicit grain still covers every index exactly once *)
      List.iter
        (fun grain ->
          let hits = Array.init 13 (fun _ -> Atomic.make 0) in
          Runner.parallel_for ~grain runner ~n:13 ~f:(fun ~domain:_ i ->
              Atomic.incr hits.(i));
          Array.iteri
            (fun i c ->
              check_int
                (Printf.sprintf "grain=%d index %d hit once" grain i)
                1 (Atomic.get c))
            hits)
        [ 1; 2; 5; 13; 100 ];
      check_bool "grain < 1 rejected" true
        (match
           Runner.parallel_for ~grain:0 runner ~n:4 ~f:(fun ~domain:_ _ -> ())
         with
        | () -> false
        | exception Invalid_argument _ -> true))
    [ 1; 3 ]

(* ---------- exactly-once scheduling, uneven counts ---------- *)

let test_coverage_exactly_once () =
  let sys = Lazy.force harmonic_sys in
  List.iter
    (fun (n_domains, n) ->
      Runner.with_runner ~n_domains ~factory:(factory sys) @@ fun runner ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let domains_seen = Array.make n (-1) in
      Runner.parallel_for runner ~n ~f:(fun ~domain i ->
          Atomic.incr hits.(i);
          domains_seen.(i) <- domain);
      Array.iteri
        (fun i c ->
          check_int
            (Printf.sprintf "nd=%d n=%d index %d hit once" n_domains n i)
            1 (Atomic.get c))
        hits;
      Array.iter
        (fun d ->
          check_bool "domain in range" true (d >= 0 && d < n_domains))
        domains_seen;
      (* empty region is a no-op, not an error *)
      Runner.parallel_for runner ~n:0 ~f:(fun ~domain:_ _ ->
          failwith "must not run"))
    [ (1, 7); (2, 9); (3, 10); (4, 10); (3, 2); (4, 100) ]

(* ---------- spawn accounting ---------- *)

let test_spawn_count () =
  let sys = Lazy.force harmonic_sys in
  let before = Runner.total_spawns () in
  (Runner.with_runner ~n_domains:3 ~factory:(factory sys) @@ fun runner ->
   for _ = 1 to 50 do
     let sink = Atomic.make 0 in
     Runner.parallel_for runner ~n:11 ~f:(fun ~domain:_ _ ->
         Atomic.incr sink);
     check_int "region covers all" 11 (Atomic.get sink)
   done);
  check_int "exactly n_domains - 1 spawns for 50 regions" 2
    (Runner.total_spawns () - before);
  let before = Runner.total_spawns () in
  (Runner.with_runner ~n_domains:1 ~factory:(factory sys) @@ fun runner ->
   Runner.parallel_for runner ~n:5 ~f:(fun ~domain:_ _ -> ()));
  check_int "single domain never spawns" 0 (Runner.total_spawns () - before)

let test_shutdown_idempotent () =
  let sys = Lazy.force harmonic_sys in
  let runner = Runner.create ~n_domains:2 ~factory:(factory sys) in
  Runner.parallel_for runner ~n:4 ~f:(fun ~domain:_ _ -> ());
  Runner.shutdown runner;
  Runner.shutdown runner;
  check_bool "parallel_for after shutdown rejected" true
    (match
       Runner.parallel_for runner ~n:4 ~f:(fun ~domain:_ _ -> ())
     with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ---------- batched B-spline kernels vs scalar oracle ---------- *)

(* Positions straddling the periodic wrap planes plus random interior
   points; both paths must wrap identically. *)
let test_positions k rng =
  let fixed =
    [| 0.; 1e-12; 0.9999999999; 1.0; -0.25; 1.75; 0.5; 1. -. 1e-12 |]
  in
  Array.init k (fun i ->
      if i < Array.length fixed then fixed.(i)
      else Xoshiro.uniform_range rng ~lo:(-1.) ~hi:2.)

let fill_f ~orb ~i ~j ~k =
  cos (float_of_int ((orb * 13) + (i * 2) + (j * 7) + (k * 3)))

let test_vgh_batch_identity_f64 () =
  let t = B3_64.create ~nx:5 ~ny:6 ~nz:7 ~n_orb:5 in
  B3_64.fill t fill_f;
  let rng = Xoshiro.create 77 in
  let k = 12 in
  let u0 = test_positions k rng
  and u1 = test_positions k rng
  and u2 = test_positions k rng in
  let batch = B3_64.make_vgh_batch t ~cap:k in
  B3_64.eval_vgh_batch t batch ~n:k ~u0 ~u1 ~u2;
  let buf = B3_64.make_vgh_buf t in
  for s = 0 to k - 1 do
    B3_64.eval_vgh t ~u0:u0.(s) ~u1:u1.(s) ~u2:u2.(s) buf;
    let out = batch.B3_64.outs.(s) in
    List.iter
      (fun (name, a, b) ->
        Array.iteri
          (fun m x ->
            check_bool
              (Printf.sprintf "f64 %s slot %d orb %d bit-identical" name s m)
              true
              (Int64.equal (Int64.bits_of_float x)
                 (Int64.bits_of_float b.(m))))
          a)
      [
        ("v", buf.B3_64.v, out.B3_64.v);
        ("gx", buf.B3_64.gx, out.B3_64.gx);
        ("gy", buf.B3_64.gy, out.B3_64.gy);
        ("gz", buf.B3_64.gz, out.B3_64.gz);
        ("hxx", buf.B3_64.hxx, out.B3_64.hxx);
        ("hxy", buf.B3_64.hxy, out.B3_64.hxy);
        ("hxz", buf.B3_64.hxz, out.B3_64.hxz);
        ("hyy", buf.B3_64.hyy, out.B3_64.hyy);
        ("hyz", buf.B3_64.hyz, out.B3_64.hyz);
        ("hzz", buf.B3_64.hzz, out.B3_64.hzz);
      ]
  done

let ulp_close a b =
  Float.equal a b
  || abs_float (a -. b)
     <= epsilon_float *. Float.max (abs_float a) (abs_float b)

let test_vgh_batch_identity_f32 () =
  let t = B3_32.create ~nx:5 ~ny:6 ~nz:7 ~n_orb:5 in
  B3_32.fill t fill_f;
  let rng = Xoshiro.create 78 in
  let k = 12 in
  let u0 = test_positions k rng
  and u1 = test_positions k rng
  and u2 = test_positions k rng in
  let batch = B3_32.make_vgh_batch t ~cap:k in
  B3_32.eval_vgh_batch t batch ~n:k ~u0 ~u1 ~u2;
  let buf = B3_32.make_vgh_buf t in
  for s = 0 to k - 1 do
    B3_32.eval_vgh t ~u0:u0.(s) ~u1:u1.(s) ~u2:u2.(s) buf;
    let out = batch.B3_32.outs.(s) in
    List.iter
      (fun (name, a, b) ->
        Array.iteri
          (fun m x ->
            check_bool
              (Printf.sprintf "f32 %s slot %d orb %d within 1 ulp" name s m)
              true
              (ulp_close x b.(m)))
          a)
      [
        ("v", buf.B3_32.v, out.B3_32.v);
        ("gx", buf.B3_32.gx, out.B3_32.gx);
        ("hzz", buf.B3_32.hzz, out.B3_32.hzz);
      ]
  done

let test_v_batch_identity () =
  let t = B3_64.create ~nx:5 ~ny:6 ~nz:7 ~n_orb:5 in
  B3_64.fill t fill_f;
  let rng = Xoshiro.create 79 in
  let k = 10 in
  let u0 = test_positions k rng
  and u1 = test_positions k rng
  and u2 = test_positions k rng in
  let batch = B3_64.make_v_batch t ~cap:k in
  B3_64.eval_v_batch t batch ~n:k ~u0 ~u1 ~u2;
  let out = Array.make 5 0. in
  for s = 0 to k - 1 do
    B3_64.eval_v t ~u0:u0.(s) ~u1:u1.(s) ~u2:u2.(s) out;
    Array.iteri
      (fun m x ->
        check_bool
          (Printf.sprintf "v slot %d orb %d bit-identical" s m)
          true
          (Int64.equal (Int64.bits_of_float x)
             (Int64.bits_of_float batch.B3_64.vouts.(s).(m))))
      out
  done

let test_batch_bounds () =
  let t = B3_64.create ~nx:4 ~ny:4 ~nz:4 ~n_orb:2 in
  check_bool "cap < 1 rejected" true
    (match B3_64.make_vgh_batch t ~cap:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let b = B3_64.make_vgh_batch t ~cap:2 in
  let u = [| 0.1; 0.2; 0.3 |] in
  check_bool "n > cap rejected" true
    (match B3_64.eval_vgh_batch t b ~n:3 ~u0:u ~u1:u ~u2:u with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Through the SPO layer: the batched context must reproduce the scalar
   [eval_vgl] (metric applied) exactly. *)
let test_spo_batch_identity () =
  let lat = Lattice.orthorhombic 3. 5. 7. in
  let module SpoB = Spo_bspline.Make (Precision.F64) in
  let table = B3_64.create ~nx:8 ~ny:8 ~nz:8 ~n_orb:3 in
  let rng = Xoshiro.create 5 in
  B3_64.fill table (fun ~orb:_ ~i:_ ~j:_ ~k:_ ->
      Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.);
  let spo = SpoB.create ~table ~lattice:lat in
  let k = 6 in
  let pos =
    Array.init k (fun i ->
        (* include points outside the cell: wrap must match *)
        Vec3.make
          (Xoshiro.uniform_range rng ~lo:(-3.) ~hi:6.)
          (Xoshiro.uniform_range rng ~lo:(-5.) ~hi:10.)
          (float_of_int i *. 2.))
  in
  let batch = spo.Spo.make_vgl_batch k in
  batch.Spo.run pos k;
  let vgl = Spo.make_vgl 3 in
  for s = 0 to k - 1 do
    spo.Spo.eval_vgl pos.(s) vgl;
    let slot = batch.Spo.slots.(s) in
    List.iter
      (fun (name, a, b) ->
        Array.iteri
          (fun m x ->
            check_bool
              (Printf.sprintf "spo %s slot %d orb %d identical" name s m)
              true
              (Int64.equal (Int64.bits_of_float x)
                 (Int64.bits_of_float b.(m))))
          a)
      [
        ("v", vgl.Spo.v, slot.Spo.v);
        ("gx", vgl.Spo.gx, slot.Spo.gx);
        ("gy", vgl.Spo.gy, slot.Spo.gy);
        ("gz", vgl.Spo.gz, slot.Spo.gz);
        ("lap", vgl.Spo.lap, slot.Spo.lap);
      ]
  done

let test_serial_fallback_identity () =
  (* Analytic SPOs have no native batch kernel; the fallback must loop
     the scalar evaluator with identical results. *)
  let spo = Spo_analytic.harmonic ~omega:1.0 ~n_orb:4 in
  let pos = Array.init 5 (fun i -> Vec3.make (0.3 *. float_of_int i) 0.1 (-0.2)) in
  let batch = spo.Spo.make_vgl_batch 5 in
  batch.Spo.run pos 5;
  let vgl = Spo.make_vgl 4 in
  for s = 0 to 4 do
    spo.Spo.eval_vgl pos.(s) vgl;
    Array.iteri
      (fun m x ->
        check_bool "fallback identical" true
          (Float.equal x batch.Spo.slots.(s).Spo.v.(m)))
      vgl.Spo.v
  done;
  check_bool "fallback cap < 1 rejected" true
    (match spo.Spo.make_vgl_batch 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- crowd drivers vs scalar reference ---------- *)

let same_float_array name a b =
  check_int (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      check_bool
        (Printf.sprintf "%s [%d] bit-identical" name i)
        true
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))))
    a

let vmc_params =
  {
    Vmc.n_walkers = 6;
    warmup = 5;
    blocks = 2;
    steps_per_block = 8;
    tau = 0.3;
    seed = 11;
    n_domains = 1;
  }

let test_vmc_crowd_identity () =
  let sys = Lazy.force harmonic_sys in
  let scalar = Vmc.run ~crowd:1 ~factory:(factory sys) vmc_params in
  List.iter
    (fun crowd ->
      let r = Vmc.run ~crowd ~factory:(factory sys) vmc_params in
      same_float_array
        (Printf.sprintf "vmc crowd=%d block energies" crowd)
        scalar.Vmc.block_energies r.Vmc.block_energies;
      check_bool "energy identical" true
        (Float.equal scalar.Vmc.energy r.Vmc.energy);
      check_bool "acceptance identical" true
        (Float.equal scalar.Vmc.acceptance r.Vmc.acceptance))
    [ 2; 4; 6; 13 (* clamped to n_walkers *) ]

let test_vmc_crowd_identity_bspline () =
  (* End-to-end through the native batched B-spline kernels. *)
  let sys = Builder.make ~reduction:16 ~with_nlpp:false Spec.nio32 in
  let params = { vmc_params with Vmc.n_walkers = 4; blocks = 2; warmup = 2; steps_per_block = 3; tau = 0.1 } in
  let scalar = Vmc.run ~crowd:1 ~factory:(factory sys) params in
  let crowd = Vmc.run ~crowd:4 ~factory:(factory sys) params in
  same_float_array "bspline vmc block energies" scalar.Vmc.block_energies
    crowd.Vmc.block_energies;
  check_bool "bspline vmc energy identical" true
    (Float.equal scalar.Vmc.energy crowd.Vmc.energy)

let test_dmc_crowd_identity () =
  let sys = Lazy.force harmonic_sys in
  let params =
    {
      Dmc.target_walkers = 8;
      warmup = 3;
      generations = 8;
      tau = 0.05;
      seed = 21;
      n_domains = 1;
      ranks = 1;
    }
  in
  let scalar = Dmc.run ~crowd:1 ~factory:(factory sys) params in
  let crowd = Dmc.run ~crowd:3 ~factory:(factory sys) params in
  same_float_array "dmc energy series" scalar.Dmc.energy_series
    crowd.Dmc.energy_series;
  check_bool "dmc energy identical" true
    (Float.equal scalar.Dmc.energy crowd.Dmc.energy);
  check_int "dmc final population identical"
    (List.length scalar.Dmc.final_walkers)
    (List.length crowd.Dmc.final_walkers)

(* Guard against a silent fallback: the full-pipeline batched path must
   actually be engaged for the Otf (Current) variants, and must decline
   gracefully for the Store-layout reference variants. *)
let test_crowd_pipeline_active () =
  let sys = Lazy.force harmonic_sys in
  let cr = Crowd.create ~factory:(factory sys) ~base:0 ~size:3 () in
  check_bool "Current crowd pipelined" true (Crowd.pipelined cr);
  let cr64 =
    Crowd.create
      ~factory:(Build.factory ~variant:Variant.Current_f64 ~seed:3 sys)
      ~base:0 ~size:3 ()
  in
  check_bool "Current_f64 crowd pipelined" true (Crowd.pipelined cr64);
  let off = Crowd.create ~pipeline:false ~factory:(factory sys) ~base:0 ~size:3 () in
  check_bool "pipeline:false honoured" false (Crowd.pipelined off);
  let cref =
    Crowd.create
      ~factory:(Build.factory ~variant:Variant.Ref ~seed:3 sys)
      ~base:0 ~size:3 ()
  in
  check_bool "Store layout falls back" false (Crowd.pipelined cref)

(* The pipelined sweep, the staged (PR2) sweep and the scalar per-engine
   sweep must produce bit-identical trajectories. *)
let test_crowd_pipeline_vs_staged () =
  let sys = Lazy.force harmonic_sys in
  let size = 3 in
  let run_crowd ~pipeline =
    let cr = Crowd.create ~pipeline ~factory:(factory sys) ~base:0 ~size () in
    check_bool "pipelined as requested" pipeline (Crowd.pipelined cr);
    let rngs = Xoshiro.streams ~seed:77 size in
    for s = 0 to size - 1 do
      (Crowd.engine cr s).Engine_api.randomize rngs.(s)
    done;
    let sweep_rngs = Xoshiro.streams ~seed:123 size in
    let acc = ref 0 in
    for _ = 1 to 6 do
      let rs =
        Crowd.sweep cr ~active:size ~rng:(fun s -> sweep_rngs.(s)) ~tau:0.3
      in
      Array.iter (fun r -> acc := !acc + r.Engine_api.accepted) rs
    done;
    let es =
      Array.init size (fun s -> (Crowd.engine cr s).Engine_api.measure ())
    in
    (!acc, es)
  in
  let run_scalar () =
    let engines = Array.init size (factory sys) in
    let rngs = Xoshiro.streams ~seed:77 size in
    Array.iteri (fun s e -> e.Engine_api.randomize rngs.(s)) engines;
    let sweep_rngs = Xoshiro.streams ~seed:123 size in
    let acc = ref 0 in
    for _ = 1 to 6 do
      Array.iteri
        (fun s e ->
          let r = e.Engine_api.sweep sweep_rngs.(s) ~tau:0.3 in
          acc := !acc + r.Engine_api.accepted)
        engines
    done;
    (!acc, Array.map (fun e -> e.Engine_api.measure ()) engines)
  in
  let acc_p, e_p = run_crowd ~pipeline:true in
  let acc_s, e_s = run_crowd ~pipeline:false in
  let acc_r, e_r = run_scalar () in
  check_int "accepts pipeline = staged" acc_s acc_p;
  check_int "accepts pipeline = scalar" acc_r acc_p;
  same_float_array "local energies pipeline = staged" e_s e_p;
  same_float_array "local energies pipeline = scalar" e_r e_p

(* Crowd batching composed with delayed determinant updates: the whole
   VMC trajectory stays bit-identical to the scalar path at equal
   delay. *)
let test_vmc_crowd_identity_delayed () =
  let sys = Lazy.force harmonic_sys in
  let dfactory = Build.factory ~delay:4 ~variant:Variant.Current ~seed:3 sys in
  let scalar = Vmc.run ~crowd:1 ~factory:dfactory vmc_params in
  let crowd = Vmc.run ~crowd:3 ~factory:dfactory vmc_params in
  same_float_array "vmc delay=4 block energies" scalar.Vmc.block_energies
    crowd.Vmc.block_energies;
  check_bool "vmc delay=4 energy identical" true
    (Float.equal scalar.Vmc.energy crowd.Vmc.energy);
  check_bool "vmc delay=4 acceptance identical" true
    (Float.equal scalar.Vmc.acceptance crowd.Vmc.acceptance)

let () =
  Alcotest.run "pool"
    [
      ( "runner",
        [
          Alcotest.test_case "grain size" `Quick test_grain_for;
          Alcotest.test_case "explicit grain" `Quick test_explicit_grain;
          Alcotest.test_case "exactly-once coverage" `Quick
            test_coverage_exactly_once;
          Alcotest.test_case "spawn accounting" `Quick test_spawn_count;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
        ] );
      ( "batched kernels",
        [
          Alcotest.test_case "vgh batch f64 bit-identical" `Quick
            test_vgh_batch_identity_f64;
          Alcotest.test_case "vgh batch f32 ulp" `Quick
            test_vgh_batch_identity_f32;
          Alcotest.test_case "v batch bit-identical" `Quick
            test_v_batch_identity;
          Alcotest.test_case "bounds" `Quick test_batch_bounds;
          Alcotest.test_case "spo batch identity" `Quick
            test_spo_batch_identity;
          Alcotest.test_case "serial fallback" `Quick
            test_serial_fallback_identity;
        ] );
      ( "crowd",
        [
          Alcotest.test_case "vmc crowd bit-identical" `Quick
            test_vmc_crowd_identity;
          Alcotest.test_case "vmc crowd bspline" `Quick
            test_vmc_crowd_identity_bspline;
          Alcotest.test_case "dmc crowd bit-identical" `Quick
            test_dmc_crowd_identity;
          Alcotest.test_case "pipeline active" `Quick
            test_crowd_pipeline_active;
          Alcotest.test_case "pipeline vs staged vs scalar" `Quick
            test_crowd_pipeline_vs_staged;
          Alcotest.test_case "vmc crowd delayed bit-identical" `Quick
            test_vmc_crowd_identity_delayed;
        ] );
    ]
