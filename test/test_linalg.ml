open Oqmc_containers
open Oqmc_linalg
open Oqmc_rng

module M = Matrix.Make (Precision.F64)
module A = Aligned.Make (Precision.F64)
module B = Blas.Make (Precision.F64)
module L = Lu.Make (Precision.F64)
module Sm = Sherman_morrison.Make (Precision.F64)
module Du = Delayed_update.Make (Precision.F64)

let check_bool = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

let random_matrix rng n =
  (* Diagonally dominated so tests never hit a near-singular matrix. *)
  M.init n n (fun i j ->
      Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.
      +. if i = j then 4. else 0.)

let random_vec rng n =
  A.of_array (Array.init n (fun _ -> Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.))

(* ---------- BLAS ---------- *)

let test_dot_axpy () =
  let x = A.of_array [| 1.; 2.; 3. |] and y = A.of_array [| 4.; 5.; 6. |] in
  checkf 1e-12 "dot" 32. (B.dot x y 3);
  B.axpy 2. x y 3;
  checkf 1e-12 "axpy" 6. (A.get y 0);
  checkf 1e-12 "nrm2" (sqrt 14.) (B.nrm2 x 3);
  checkf 1e-12 "asum" 6. (B.asum x 3)

let test_gemv () =
  let a = M.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let x = A.of_array [| 1.; -1. |] in
  let y = A.create 3 in
  B.gemv a x y;
  checkf 1e-12 "y0" (-1.) (A.get y 0);
  checkf 1e-12 "y1" (-1.) (A.get y 1);
  checkf 1e-12 "y2" (-1.) (A.get y 2);
  let z = A.create 2 in
  let w = A.of_array [| 1.; 1.; 1. |] in
  B.gemv_t a w z;
  checkf 1e-12 "z0" 9. (A.get z 0);
  checkf 1e-12 "z1" 12. (A.get z 1)

let test_ger () =
  let a = M.create 2 2 in
  let x = A.of_array [| 1.; 2. |] and y = A.of_array [| 3.; 4. |] in
  B.ger 2. x y a;
  checkf 1e-12 "a00" 6. (M.get a 0 0);
  checkf 1e-12 "a11" 16. (M.get a 1 1)

let test_gemm_identity () =
  let rng = Xoshiro.create 1 in
  let a = random_matrix rng 5 in
  let i5 = M.identity 5 in
  let c = M.create 5 5 in
  B.gemm a i5 c;
  check_bool "A·I = A" true (M.max_abs_diff a c < 1e-12)

let test_gemm_assoc () =
  let rng = Xoshiro.create 2 in
  let a = random_matrix rng 4 and b = random_matrix rng 4 in
  let c = random_matrix rng 4 in
  let ab = M.create 4 4 and bc = M.create 4 4 in
  let abc1 = M.create 4 4 and abc2 = M.create 4 4 in
  B.gemm a b ab;
  B.gemm ab c abc1;
  B.gemm b c bc;
  B.gemm a bc abc2;
  check_bool "(AB)C = A(BC)" true (M.max_abs_diff abc1 abc2 < 1e-10)

(* ---------- LU ---------- *)

let test_lu_det_2x2 () =
  let m = M.of_arrays [| [| 3.; 1. |]; [| 2.; 5. |] |] in
  checkf 1e-10 "det" 13. (L.det m)

let test_lu_det_permutation () =
  (* Permutation matrix determinant is the permutation sign. *)
  let m = M.of_arrays [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 1.; 0.; 0. |] |] in
  checkf 1e-12 "cyclic perm det" 1. (L.det m);
  let m2 = M.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  checkf 1e-12 "swap det" (-1.) (L.det m2)

let test_lu_singular () =
  let m = M.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Lu.Singular (fun () -> ignore (L.det m))

let test_invert_transpose () =
  let rng = Xoshiro.create 3 in
  let n = 16 in
  let m = random_matrix rng n in
  let binv = M.create n n in
  let _sign, _logd = L.invert_transpose ~src:m ~dst:binv in
  (* binv = m⁻ᵀ, so m ᵀ· binvᵀ should be... check directly: binvᵀ · m = I. *)
  let prod = M.create n n in
  B.gemm (M.transpose binv) m prod;
  check_bool "B^T M = I" true (M.max_abs_diff prod (M.identity n) < 1e-9)

let test_solve_vec () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let d = Lu.decompose_arrays a 2 in
  let x = Lu.solve_vec d [| 5.; 10. |] in
  checkf 1e-12 "x0" 1. x.(0);
  checkf 1e-12 "x1" 3. x.(1)

(* ---------- Sherman-Morrison ---------- *)

let test_sm_ratio_matches_det () =
  let rng = Xoshiro.create 4 in
  let n = 12 in
  let m = random_matrix rng n in
  let binv = M.create n n in
  ignore (L.invert_transpose ~src:m ~dst:binv);
  let k = 5 in
  let v = random_vec rng n in
  (* Build the row-replaced matrix directly and compare determinants. *)
  let m' = M.copy m in
  for j = 0 to n - 1 do
    M.set m' k j (A.get v j)
  done;
  let expected = L.det m' /. L.det m in
  let ratio = Sm.ratio binv k v in
  checkf 1e-8 "ratio = det ratio" expected ratio

let test_sm_update_consistency () =
  let rng = Xoshiro.create 5 in
  let n = 10 in
  let m = random_matrix rng n in
  let binv = M.create n n in
  ignore (L.invert_transpose ~src:m ~dst:binv);
  let ws = Sm.make_workspace n in
  (* Accept several row replacements; binv must track m⁻ᵀ throughout. *)
  let m_cur = M.copy m in
  List.iter
    (fun k ->
      let v = random_vec rng n in
      let ratio = Sm.ratio binv k v in
      Sm.update_row binv k v ~ratio ~ws;
      for j = 0 to n - 1 do
        M.set m_cur k j (A.get v j)
      done)
    [ 0; 3; 7; 3; 9 ];
  let fresh = M.create n n in
  ignore (L.invert_transpose ~src:m_cur ~dst:fresh);
  check_bool "binv tracks inverse" true (M.max_abs_diff binv fresh < 1e-7)

let test_sm_zero_ratio_rejected () =
  let binv = M.identity 3 in
  let v = A.of_array [| 0.; 0.; 0. |] in
  let ws = Sm.make_workspace 3 in
  Alcotest.check_raises "zero ratio"
    (Invalid_argument "Sherman_morrison.update_row: zero ratio") (fun () ->
      Sm.update_row binv 0 v ~ratio:0. ~ws)

(* ---------- Delayed update ---------- *)

let test_delayed_matches_sm_ratios () =
  let rng = Xoshiro.create 6 in
  let n = 14 in
  let m = random_matrix rng n in
  let binv_sm = M.create n n and binv_du = M.create n n in
  ignore (L.invert_transpose ~src:m ~dst:binv_sm);
  M.blit ~src:binv_sm ~dst:binv_du;
  let du = Du.create ~delay:4 binv_du in
  let ws = Sm.make_workspace n in
  (* Ordered sweep over all electrons; every proposed ratio must agree. *)
  for k = 0 to n - 1 do
    let v = random_vec rng n in
    let r_sm = Sm.ratio binv_sm k v in
    let r_du = Du.ratio du k v in
    checkf 1e-7 (Printf.sprintf "ratio k=%d" k) r_sm r_du;
    if abs_float r_sm > 0.3 then begin
      Sm.update_row binv_sm k v ~ratio:r_sm ~ws;
      Du.accept du k v
    end
  done;
  Du.flush du;
  check_bool "inverses agree after flush" true
    (M.max_abs_diff binv_sm (Du.binv du) < 1e-6)

let test_delayed_autoflush () =
  let rng = Xoshiro.create 7 in
  let n = 8 in
  let m = random_matrix rng n in
  let binv = M.create n n in
  ignore (L.invert_transpose ~src:m ~dst:binv);
  let du = Du.create ~delay:2 binv in
  let v1 = random_vec rng n and v2 = random_vec rng n in
  Du.accept du 0 v1;
  Alcotest.(check int) "one pending" 1 (Du.pending du);
  Du.accept du 1 v2;
  Alcotest.(check int) "auto flush at delay" 0 (Du.pending du)

let test_delayed_repeat_row_flushes () =
  let rng = Xoshiro.create 8 in
  let n = 8 in
  let m = random_matrix rng n in
  let binv = M.create n n in
  ignore (L.invert_transpose ~src:m ~dst:binv);
  let du = Du.create ~delay:8 binv in
  let v1 = random_vec rng n and v2 = random_vec rng n in
  Du.accept du 3 v1;
  Du.accept du 3 v2;
  Alcotest.(check int) "flushed on repeat" 1 (Du.pending du)

let test_delayed_invalid () =
  let m = M.create 3 4 in
  Alcotest.check_raises "not square"
    (Invalid_argument "Delayed_update.create: not square") (fun () ->
      ignore (Du.create m))

let test_delayed_blocked_bit_identical () =
  (* The blocked GEMM-shaped flush evaluates each element through the
     same left-associative fused chain as the per-rank reference apply,
     so at f64 the two paths must agree to the last bit, not merely to
     rounding. *)
  let rng = Xoshiro.create 23 in
  let n = 24 in
  let m = random_matrix rng n in
  let binv = M.create n n in
  ignore (L.invert_transpose ~src:m ~dst:binv);
  let b_blk = M.create n n and b_ref = M.create n n in
  M.blit ~src:binv ~dst:b_blk;
  M.blit ~src:binv ~dst:b_ref;
  let du_blk = Du.create ~delay:8 b_blk in
  let du_ref = Du.create ~delay:8 ~blocked:false b_ref in
  for k = 0 to n - 1 do
    let v = random_vec rng n in
    let r_blk = Du.ratio du_blk k v in
    let r_ref = Du.ratio du_ref k v in
    checkf 0. (Printf.sprintf "ratio k=%d" k) r_ref r_blk;
    if abs_float r_blk > 0.3 then begin
      Du.accept du_blk k v;
      Du.accept du_ref k v
    end
  done;
  Du.flush du_blk;
  Du.flush du_ref;
  checkf 0. "flushed inverses bit-identical" 0.
    (M.max_abs_diff (Du.binv du_blk) (Du.binv du_ref))

(* ---------- properties ---------- *)

let prop_det_product =
  QCheck.Test.make ~name:"det(AB) = det(A)det(B)" ~count:50
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Xoshiro.create seed in
      let a = random_matrix rng 6 and b = random_matrix rng 6 in
      let ab = M.create 6 6 in
      B.gemm a b ab;
      let da = L.det a and db = L.det b and dab = L.det ab in
      abs_float (dab -. (da *. db)) <= 1e-6 *. abs_float dab +. 1e-9)

let prop_sm_sequence =
  QCheck.Test.make ~name:"SM inverse tracks over random sweeps" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Xoshiro.create seed in
      let n = 8 in
      let m = random_matrix rng n in
      let binv = M.create n n in
      ignore (L.invert_transpose ~src:m ~dst:binv);
      let ws = Sm.make_workspace n in
      let m_cur = M.copy m in
      for _ = 1 to 12 do
        let k = Xoshiro.int rng n in
        let v = random_vec rng n in
        let r = Sm.ratio binv k v in
        if abs_float r > 0.3 then begin
          Sm.update_row binv k v ~ratio:r ~ws;
          for j = 0 to n - 1 do
            M.set m_cur k j (A.get v j)
          done
        end
      done;
      let fresh = M.create n n in
      ignore (L.invert_transpose ~src:m_cur ~dst:fresh);
      M.max_abs_diff binv fresh < 1e-6)

let prop_delayed_equals_direct =
  QCheck.Test.make ~name:"delayed update equals direct inverse" ~count:20
    QCheck.(pair (int_range 1 1000) (int_range 1 6))
    (fun (seed, delay) ->
      let rng = Xoshiro.create seed in
      let n = 10 in
      let m = random_matrix rng n in
      let binv = M.create n n in
      ignore (L.invert_transpose ~src:m ~dst:binv);
      let du = Du.create ~delay binv in
      let m_cur = M.copy m in
      for k = 0 to n - 1 do
        let v = random_vec rng n in
        let r = Du.ratio du k v in
        if abs_float r > 0.3 then begin
          Du.accept du k v;
          for j = 0 to n - 1 do
            M.set m_cur k j (A.get v j)
          done
        end
      done;
      Du.flush du;
      let fresh = M.create n n in
      ignore (L.invert_transpose ~src:m_cur ~dst:fresh);
      M.max_abs_diff (Du.binv du) fresh < 1e-6)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "linalg"
    [
      ( "blas",
        [
          Alcotest.test_case "dot/axpy" `Quick test_dot_axpy;
          Alcotest.test_case "gemv" `Quick test_gemv;
          Alcotest.test_case "ger" `Quick test_ger;
          Alcotest.test_case "gemm identity" `Quick test_gemm_identity;
          Alcotest.test_case "gemm assoc" `Quick test_gemm_assoc;
        ] );
      ( "lu",
        [
          Alcotest.test_case "det 2x2" `Quick test_lu_det_2x2;
          Alcotest.test_case "det permutation" `Quick test_lu_det_permutation;
          Alcotest.test_case "singular" `Quick test_lu_singular;
          Alcotest.test_case "invert transpose" `Quick test_invert_transpose;
          Alcotest.test_case "solve" `Quick test_solve_vec;
        ] );
      ( "sherman_morrison",
        [
          Alcotest.test_case "ratio = det ratio" `Quick test_sm_ratio_matches_det;
          Alcotest.test_case "update consistency" `Quick test_sm_update_consistency;
          Alcotest.test_case "zero ratio" `Quick test_sm_zero_ratio_rejected;
        ] );
      ( "delayed_update",
        [
          Alcotest.test_case "matches SM" `Quick test_delayed_matches_sm_ratios;
          Alcotest.test_case "autoflush" `Quick test_delayed_autoflush;
          Alcotest.test_case "repeat row" `Quick test_delayed_repeat_row_flushes;
          Alcotest.test_case "invalid" `Quick test_delayed_invalid;
          Alcotest.test_case "blocked flush bit-identical" `Quick
            test_delayed_blocked_bit_identical;
        ] );
      ( "properties",
        qt [ prop_det_product; prop_sm_sequence; prop_delayed_equals_direct ] );
    ]
