open Oqmc_containers
open Oqmc_spline

module B3_64 = Bspline3d.Make (Precision.F64)
module B3_32 = Bspline3d.Make (Precision.F32)

let check_bool = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

(* ---------- basis ---------- *)

let test_basis_partition_of_unity () =
  List.iter
    (fun t ->
      checkf 1e-14 "partition of unity" 1. (Bspline_basis.sum (Bspline_basis.value t));
      checkf 1e-14 "derivative sums to 0" 0.
        (Bspline_basis.sum (Bspline_basis.first t));
      checkf 1e-13 "second derivative sums to 0" 0.
        (Bspline_basis.sum (Bspline_basis.second t)))
    [ 0.; 0.25; 0.5; 0.75; 0.999 ]

let test_basis_derivative_fd () =
  let h = 1e-6 in
  List.iter
    (fun t ->
      let w1 = Bspline_basis.value (t +. h) and w0 = Bspline_basis.value (t -. h) in
      let d = Bspline_basis.first t in
      let fd =
        Array.map2 (fun a b -> (a -. b) /. (2. *. h))
          (Bspline_basis.to_array w1) (Bspline_basis.to_array w0)
      in
      Array.iteri
        (fun i f -> checkf 1e-5 "fd matches" f (Bspline_basis.to_array d).(i))
        fd)
    [ 0.2; 0.5; 0.8 ]

(* ---------- 1-D spline ---------- *)

let test_spline1d_interpolates () =
  let f r = exp (-.r) *. cos r in
  let s = Cubic_spline_1d.fit ~f ~cutoff:4. ~intervals:40 () in
  for i = 0 to 40 do
    let r = 4. *. float_of_int i /. 40. in
    if r < 4. then checkf 1e-10 "interpolation at knots" (f r) (Cubic_spline_1d.evaluate s r)
  done

let test_spline1d_accuracy_between_knots () =
  let f r = sin r in
  let s = Cubic_spline_1d.fit ~f ~deriv0:(Some 1.) ~deriv_cut:(Some (cos 3.))
      ~cutoff:3. ~intervals:60 ()
  in
  let max_err = ref 0. in
  for i = 0 to 599 do
    let r = 3. *. (float_of_int i +. 0.5) /. 600. in
    max_err := Float.max !max_err (abs_float (Cubic_spline_1d.evaluate s r -. f r))
  done;
  check_bool "midpoint error small" true (!max_err < 1e-6)

let test_spline1d_cutoff_zero () =
  let s = Cubic_spline_1d.fit ~f:(fun r -> 1. -. r) ~cutoff:1. ~intervals:8 () in
  checkf 1e-12 "at cutoff" 0. (Cubic_spline_1d.evaluate s 1.);
  checkf 1e-12 "beyond cutoff" 0. (Cubic_spline_1d.evaluate s 5.);
  let v, dv, d2v = Cubic_spline_1d.evaluate_vgl s 2. in
  checkf 1e-12 "vgl v" 0. v;
  checkf 1e-12 "vgl dv" 0. dv;
  checkf 1e-12 "vgl d2v" 0. d2v

let test_spline1d_cusp () =
  (* Prescribed derivative at 0 (the Jastrow cusp condition). *)
  let cusp = -0.5 in
  let f r = -0.3 *. exp (-2. *. r) in
  let s = Cubic_spline_1d.fit ~f ~deriv0:(Some cusp) ~cutoff:3. ~intervals:30 () in
  let _, dv, _ = Cubic_spline_1d.evaluate_vgl s 1e-12 in
  checkf 1e-6 "cusp slope" cusp dv

let test_spline1d_vgl_fd () =
  let f r = exp (-.r *. r) in
  let s = Cubic_spline_1d.fit ~f ~cutoff:2.5 ~intervals:50 () in
  let h = 1e-5 in
  List.iter
    (fun r ->
      let v, dv, d2v = Cubic_spline_1d.evaluate_vgl s r in
      let vp = Cubic_spline_1d.evaluate s (r +. h) in
      let vm = Cubic_spline_1d.evaluate s (r -. h) in
      checkf 1e-12 "value consistent" v (Cubic_spline_1d.evaluate s r);
      checkf 1e-5 "first derivative" ((vp -. vm) /. (2. *. h)) dv;
      checkf 1e-3 "second derivative" ((vp +. vm -. (2. *. v)) /. (h *. h)) d2v)
    [ 0.3; 0.9; 1.7; 2.2 ]

let test_spline1d_invalid () =
  Alcotest.check_raises "too few coefficients"
    (Invalid_argument "Cubic_spline_1d: need at least 4 coefficients")
    (fun () -> ignore (Cubic_spline_1d.of_coefficients ~cutoff:1. [| 1.; 2. |]))

let test_spline1d_narrow () =
  (* narrow rounds every control point once through f32 storage
     (the precision_jastrow knob): idempotent, halves the footprint,
     and since the cubic basis weights are a partition of unity the
     evaluated values move by at most one f32 rounding of the largest
     coefficient. *)
  let f r = -0.3 *. exp (-1.7 *. r) in
  let s = Cubic_spline_1d.fit ~f ~cutoff:3. ~intervals:24 () in
  check_bool "fresh table is wide" false (Cubic_spline_1d.is_narrowed s);
  let n1 = Cubic_spline_1d.narrow s in
  let n2 = Cubic_spline_1d.narrow n1 in
  check_bool "narrowed" true (Cubic_spline_1d.is_narrowed n1);
  check_bool "idempotent" true (n1 == n2);
  check_bool "wide table untouched" false (Cubic_spline_1d.is_narrowed s);
  Alcotest.(check int) "bytes halve"
    (Cubic_spline_1d.bytes s / 2)
    (Cubic_spline_1d.bytes n1);
  let cmax =
    Array.fold_left
      (fun a c -> Float.max a (abs_float c))
      0.
      (Cubic_spline_1d.coefficients s)
  in
  let bound = cmax *. 1.2e-7 in
  List.iter
    (fun r ->
      let v = Cubic_spline_1d.evaluate s r in
      let vn = Cubic_spline_1d.evaluate n1 r in
      check_bool "eval drift bounded" true (abs_float (v -. vn) <= bound))
    [ 0.; 0.2; 0.77; 1.3; 2.1; 2.9 ]

(* ---------- tridiag ---------- *)

let test_tridiag_simple () =
  (* [4 1; 1 4; .. ] x = b, verified by multiplying back. *)
  let n = 12 in
  let rhs = Array.init n (fun i -> float_of_int (i + 1)) in
  let x = Tridiag.solve ~diag:4. ~off:1. rhs in
  for i = 0 to n - 1 do
    let v =
      (4. *. x.(i))
      +. (if i > 0 then x.(i - 1) else 0.)
      +. if i < n - 1 then x.(i + 1) else 0.
    in
    checkf 1e-10 "residual" rhs.(i) v
  done

let test_tridiag_cyclic () =
  let n = 16 in
  let rhs = Array.init n (fun i -> sin (float_of_int i)) in
  let x = Tridiag.solve_cyclic ~diag:4. ~off:1. rhs in
  for i = 0 to n - 1 do
    let v =
      (4. *. x.(i)) +. x.((i + 1) mod n) +. x.((i - 1 + n) mod n)
    in
    checkf 1e-10 "cyclic residual" rhs.(i) v
  done

(* ---------- 3-D spline ---------- *)

let test_bspline3d_constant () =
  (* A constant function must be reproduced exactly (partition of unity). *)
  let t = B3_64.create ~nx:6 ~ny:6 ~nz:6 ~n_orb:2 in
  B3_64.fill t (fun ~orb ~i:_ ~j:_ ~k:_ -> if orb = 0 then 2.5 else -1.
  );
  let out = Array.make 2 0. in
  List.iter
    (fun (x, y, z) ->
      B3_64.eval_v t ~u0:x ~u1:y ~u2:z out;
      checkf 1e-12 "constant orb0" 2.5 out.(0);
      checkf 1e-12 "constant orb1" (-1.) out.(1))
    [ (0.1, 0.2, 0.3); (0.9, 0.95, 0.05); (0.5, 0.5, 0.5) ]

let wrap_xy x = x

let test_bspline3d_interpolation () =
  (* Fit a smooth periodic function and check mid-grid accuracy. *)
  let nx = 16 and ny = 16 and nz = 16 in
  let f x y z =
    cos (2. *. Float.pi *. x) *. sin (2. *. Float.pi *. y)
    +. (0.5 *. cos (2. *. Float.pi *. z))
  in
  let t = B3_64.create ~nx ~ny ~nz ~n_orb:1 in
  B3_64.fit_periodic t ~samples:(fun ~orb:_ ~ix ~iy ~iz ->
      f
        (float_of_int ix /. float_of_int nx)
        (float_of_int iy /. float_of_int ny)
        (float_of_int iz /. float_of_int nz));
  let out = Array.make 1 0. in
  (* At grid points the spline interpolates exactly. *)
  B3_64.eval_v t ~u0:0.25 ~u1:0.5 ~u2:0.75 out;
  checkf 1e-10 "grid point" (f 0.25 0.5 0.75) out.(0);
  (* Between grid points the cubic converges ~h⁴; 16³ gives ≲1e-3. *)
  let max_err = ref 0. in
  for i = 0 to 20 do
    let x = (float_of_int i +. 0.5) /. 21. in
    B3_64.eval_v t ~u0:x ~u1:(wrap_xy x) ~u2:0.31 out;
    max_err := Float.max !max_err (abs_float (out.(0) -. f x (wrap_xy x) 0.31))
  done;
  check_bool "midpoint accuracy" true (!max_err < 5e-3)

let test_bspline3d_vgh_fd () =
  let nx = 12 and ny = 12 and nz = 12 in
  let f x y z =
    exp (cos (2. *. Float.pi *. x)) *. sin (2. *. Float.pi *. (y +. z))
  in
  let t = B3_64.create ~nx ~ny ~nz ~n_orb:1 in
  B3_64.fit_periodic t ~samples:(fun ~orb:_ ~ix ~iy ~iz ->
      f
        (float_of_int ix /. float_of_int nx)
        (float_of_int iy /. float_of_int ny)
        (float_of_int iz /. float_of_int nz));
  let buf = B3_64.make_vgh_buf t in
  let out = Array.make 1 0. in
  let h = 1e-5 in
  let eval x y z =
    B3_64.eval_v t ~u0:x ~u1:y ~u2:z out;
    out.(0)
  in
  List.iter
    (fun (x, y, z) ->
      B3_64.eval_vgh t ~u0:x ~u1:y ~u2:z buf;
      checkf 1e-10 "v" (eval x y z) buf.B3_64.v.(0);
      checkf 2e-4 "gx"
        ((eval (x +. h) y z -. eval (x -. h) y z) /. (2. *. h))
        buf.B3_64.gx.(0);
      checkf 2e-4 "gy"
        ((eval x (y +. h) z -. eval x (y -. h) z) /. (2. *. h))
        buf.B3_64.gy.(0);
      checkf 2e-4 "gz"
        ((eval x y (z +. h) -. eval x y (z -. h)) /. (2. *. h))
        buf.B3_64.gz.(0);
      checkf 0.5 "hxx"
        ((eval (x +. h) y z +. eval (x -. h) y z -. (2. *. eval x y z))
        /. (h *. h))
        buf.B3_64.hxx.(0);
      checkf 0.5 "hxy"
        ((eval (x +. h) (y +. h) z -. eval (x +. h) (y -. h) z
          -. eval (x -. h) (y +. h) z +. eval (x -. h) (y -. h) z)
        /. (4. *. h *. h))
        buf.B3_64.hxy.(0))
    [ (0.13, 0.41, 0.77); (0.6, 0.2, 0.9) ]

let test_bspline3d_periodic_wrap () =
  let t = B3_64.create ~nx:8 ~ny:8 ~nz:8 ~n_orb:1 in
  let rng = Oqmc_rng.Xoshiro.create 9 in
  B3_64.fill t (fun ~orb:_ ~i:_ ~j:_ ~k:_ ->
      Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.);
  let a = Array.make 1 0. and b = Array.make 1 0. in
  B3_64.eval_v t ~u0:0.125 ~u1:0.3 ~u2:0.99 a;
  B3_64.eval_v t ~u0:1.125 ~u1:(-0.7) ~u2:(0.99 -. 3.) b;
  checkf 1e-12 "periodic images equal" a.(0) b.(0)

let test_bspline3d_f32_close_to_f64 () =
  let nx = 8 in
  (* n_orb = 16 so both precisions pad to the same orbital stride and the
     byte comparison isolates the element width. *)
  let t64 = B3_64.create ~nx ~ny:nx ~nz:nx ~n_orb:16 in
  let t32 = B3_32.create ~nx ~ny:nx ~nz:nx ~n_orb:16 in
  let rng = Oqmc_rng.Xoshiro.create 10 in
  let vals = Array.init (nx * nx * nx * 16) (fun _ ->
      Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.)
  in
  let idx ~orb ~i ~j ~k = ((((i * nx) + j) * nx) + k) * 16 + orb in
  B3_64.fill t64 (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
  B3_32.fill t32 (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
  let o64 = Array.make 16 0. and o32 = Array.make 16 0. in
  B3_64.eval_v t64 ~u0:0.3 ~u1:0.6 ~u2:0.9 o64;
  B3_32.eval_v t32 ~u0:0.3 ~u1:0.6 ~u2:0.9 o32;
  for m = 0 to 15 do
    check_bool "f32 close" true (abs_float (o64.(m) -. o32.(m)) < 1e-5)
  done;
  check_bool "f32 table half the size" true
    (B3_32.bytes t32 * 2 = B3_64.bytes t64)

let test_bspline3d_table_bytes () =
  (* Table 1's B-spline column corresponds to complex double coefficients
     (16 bytes): NiO-64 (80³ grid, 240 SPOs) → 2.1 GB, and the other three
     workloads match as well. *)
  let gb ~nx ~ny ~nz ~n_orb =
    float_of_int (B3_64.table_bytes ~nx ~ny ~nz ~n_orb ~elt_bytes:16) /. 1e9
  in
  let near label expect got =
    check_bool label true (abs_float (got -. expect) /. expect < 0.15)
  in
  near "NiO-64 ~2.1 GB" 2.1 (gb ~nx:80 ~ny:80 ~nz:80 ~n_orb:240);
  near "NiO-32 ~1.3 GB" 1.3 (gb ~nx:80 ~ny:80 ~nz:80 ~n_orb:144);
  near "Be-64 ~1.4 GB" 1.4 (gb ~nx:84 ~ny:84 ~nz:144 ~n_orb:81);
  near "Graphite ~0.1 GB" 0.1 (gb ~nx:28 ~ny:28 ~nz:80 ~n_orb:80)

module B3T = Bspline3d_tiled.Make (Precision.F64)

let test_tiled_matches_untiled () =
  let nx = 8 and n_orb = 10 in
  let rng = Oqmc_rng.Xoshiro.create 33 in
  let vals = Array.init (nx * nx * nx * n_orb) (fun _ ->
      Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.)
  in
  let idx ~orb ~i ~j ~k = ((((i * nx) + j) * nx) + k) * n_orb + orb in
  let plain = B3_64.create ~nx ~ny:nx ~nz:nx ~n_orb in
  B3_64.fill plain (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
  List.iter
    (fun tile ->
      let tiled = B3T.create ~nx ~ny:nx ~nz:nx ~n_orb ~tile in
      B3T.fill tiled (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
      let o1 = Array.make n_orb 0. and o2 = Array.make n_orb 0. in
      let b1 = B3_64.make_vgh_buf plain and b2 = B3T.make_vgh_buf tiled in
      List.iter
        (fun (x, y, z) ->
          B3_64.eval_v plain ~u0:x ~u1:y ~u2:z o1;
          B3T.eval_v tiled ~u0:x ~u1:y ~u2:z o2;
          for m = 0 to n_orb - 1 do
            checkf 1e-12 "tiled value" o1.(m) o2.(m)
          done;
          B3_64.eval_vgh plain ~u0:x ~u1:y ~u2:z b1;
          B3T.eval_vgh tiled ~u0:x ~u1:y ~u2:z b2;
          for m = 0 to n_orb - 1 do
            checkf 1e-12 "tiled gx" b1.B3_64.gx.(m) b2.B3T.B.gx.(m);
            checkf 1e-12 "tiled hzz" b1.B3_64.hzz.(m) b2.B3T.B.hzz.(m)
          done)
        [ (0.1, 0.5, 0.9); (0.77, 0.2, 0.41) ])
    [ 1; 3; 4; 10; 16 ]

(* The batched crowd path: tiled must be BIT-identical to flat at f64 —
   exact float equality, not a tolerance — because the fused tiled
   phase 2 consumes the same doubles in the same order as the flat
   kernels.  This is the production path (oqmc_run's layout=tiled). *)
let test_tiled_batch_bit_identical () =
  let nx = 8 and n_orb = 10 and cap = 5 in
  let rng = Oqmc_rng.Xoshiro.create 77 in
  let vals = Array.init (nx * nx * nx * n_orb) (fun _ ->
      Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.)
  in
  let idx ~orb ~i ~j ~k = ((((i * nx) + j) * nx) + k) * n_orb + orb in
  let plain = B3_64.create ~nx ~ny:nx ~nz:nx ~n_orb in
  B3_64.fill plain (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
  let u0 = Array.init cap (fun _ -> Oqmc_rng.Xoshiro.uniform rng) in
  let u1 = Array.init cap (fun _ -> Oqmc_rng.Xoshiro.uniform rng) in
  let u2 = Array.init cap (fun _ -> Oqmc_rng.Xoshiro.uniform rng) in
  let fb = B3_64.make_vgh_batch plain ~cap in
  let fv = B3_64.make_v_batch plain ~cap in
  B3_64.eval_vgh_batch plain fb ~n:cap ~u0 ~u1 ~u2;
  B3_64.eval_v_batch plain fv ~n:cap ~u0 ~u1 ~u2;
  List.iter
    (fun tile ->
      let tiled = B3T.create ~nx ~ny:nx ~nz:nx ~n_orb ~tile in
      B3T.fill tiled (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
      let tb = B3T.make_vgh_batch tiled ~cap in
      let tv = B3T.make_v_batch tiled ~cap in
      B3T.eval_vgh_batch tiled tb ~n:cap ~u0 ~u1 ~u2;
      B3T.eval_v_batch tiled tv ~n:cap ~u0 ~u1 ~u2;
      for s = 0 to cap - 1 do
        let f = fb.B3_64.outs.(s) and t = tb.B3T.B.outs.(s) in
        for m = 0 to n_orb - 1 do
          check_bool "batch v bit-identical" true
            (fv.B3_64.vouts.(s).(m) = tv.B3T.B.vouts.(s).(m));
          List.iter2
            (fun a b -> check_bool "batch vgh bit-identical" true (a = b))
            [ f.B3_64.v.(m); f.B3_64.gx.(m); f.B3_64.gy.(m);
              f.B3_64.gz.(m); f.B3_64.hxx.(m); f.B3_64.hxy.(m);
              f.B3_64.hxz.(m); f.B3_64.hyy.(m); f.B3_64.hyz.(m);
              f.B3_64.hzz.(m) ]
            [ t.B3_64.v.(m); t.B3_64.gx.(m); t.B3_64.gy.(m);
              t.B3_64.gz.(m); t.B3_64.hxx.(m); t.B3_64.hxy.(m);
              t.B3_64.hxz.(m); t.B3_64.hyy.(m); t.B3_64.hyz.(m);
              t.B3_64.hzz.(m) ]
        done
      done)
    [ 1; 3; 4; 10; 16 ]

let test_tiled_shapes () =
  let t = B3T.create ~nx:8 ~ny:8 ~nz:8 ~n_orb:10 ~tile:4 in
  Alcotest.(check int) "tiles" 3 (B3T.n_tiles t);
  Alcotest.(check int) "orbitals" 10 (B3T.n_orb t);
  Alcotest.check_raises "orb range"
    (Invalid_argument "Bspline3d_tiled: orbital out of range") (fun () ->
      ignore (B3T.get_base t ~orb:10 ~i:0 ~j:0 ~k:0))

let prop_partition_of_unity =
  QCheck.Test.make ~name:"basis partition of unity" ~count:500
    QCheck.(float_range 0. 0.999999)
    (fun t -> abs_float (Bspline_basis.sum (Bspline_basis.value t) -. 1.) < 1e-12)

(* Random tile sizes never change the batched results: exact equality
   against the flat table at every orbital, for both eval_v and
   eval_vgh.  Complements the fixed-tile bit-identity test with
   arbitrary (tile, position) draws. *)
let prop_tile_invariant =
  let nx = 6 and n_orb = 7 in
  let rng = Oqmc_rng.Xoshiro.create 91 in
  let vals = Array.init (nx * nx * nx * n_orb) (fun _ ->
      Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.)
  in
  let idx ~orb ~i ~j ~k = ((((i * nx) + j) * nx) + k) * n_orb + orb in
  let plain = B3_64.create ~nx ~ny:nx ~nz:nx ~n_orb in
  B3_64.fill plain (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
  QCheck.Test.make ~name:"tile size never changes batched results" ~count:30
    QCheck.(
      pair (int_range 1 12)
        (triple (float_range 0. 0.999) (float_range 0. 0.999)
           (float_range 0. 0.999)))
    (fun (tile, (x, y, z)) ->
      let tiled = B3T.create ~nx ~ny:nx ~nz:nx ~n_orb ~tile in
      B3T.fill tiled (fun ~orb ~i ~j ~k -> vals.(idx ~orb ~i ~j ~k));
      let u0 = [| x |] and u1 = [| y |] and u2 = [| z |] in
      let fb = B3_64.make_vgh_batch plain ~cap:1 in
      let fv = B3_64.make_v_batch plain ~cap:1 in
      let tb = B3T.make_vgh_batch tiled ~cap:1 in
      let tv = B3T.make_v_batch tiled ~cap:1 in
      B3_64.eval_vgh_batch plain fb ~n:1 ~u0 ~u1 ~u2;
      B3_64.eval_v_batch plain fv ~n:1 ~u0 ~u1 ~u2;
      B3T.eval_vgh_batch tiled tb ~n:1 ~u0 ~u1 ~u2;
      B3T.eval_v_batch tiled tv ~n:1 ~u0 ~u1 ~u2;
      let ok = ref true in
      let f = fb.B3_64.outs.(0) and t = tb.B3_64.outs.(0) in
      for m = 0 to n_orb - 1 do
        if fv.B3_64.vouts.(0).(m) <> tv.B3_64.vouts.(0).(m) then ok := false;
        if
          f.B3_64.v.(m) <> t.B3_64.v.(m)
          || f.B3_64.gx.(m) <> t.B3_64.gx.(m)
          || f.B3_64.gy.(m) <> t.B3_64.gy.(m)
          || f.B3_64.gz.(m) <> t.B3_64.gz.(m)
          || f.B3_64.hxx.(m) <> t.B3_64.hxx.(m)
          || f.B3_64.hxy.(m) <> t.B3_64.hxy.(m)
          || f.B3_64.hxz.(m) <> t.B3_64.hxz.(m)
          || f.B3_64.hyy.(m) <> t.B3_64.hyy.(m)
          || f.B3_64.hyz.(m) <> t.B3_64.hyz.(m)
          || f.B3_64.hzz.(m) <> t.B3_64.hzz.(m)
        then ok := false
      done;
      !ok)

let prop_spline_zero_outside =
  QCheck.Test.make ~name:"1d spline zero outside cutoff" ~count:200
    QCheck.(pair (float_range 1.0 10.) (float_range 0. 20.))
    (fun (cutoff, r) ->
      let s =
        Cubic_spline_1d.fit ~f:(fun x -> 1. +. x) ~cutoff ~intervals:10 ()
      in
      r < cutoff || Cubic_spline_1d.evaluate s r = 0.)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spline"
    [
      ( "basis",
        [
          Alcotest.test_case "partition of unity" `Quick
            test_basis_partition_of_unity;
          Alcotest.test_case "derivative fd" `Quick test_basis_derivative_fd;
        ] );
      ( "spline1d",
        [
          Alcotest.test_case "interpolates" `Quick test_spline1d_interpolates;
          Alcotest.test_case "between knots" `Quick
            test_spline1d_accuracy_between_knots;
          Alcotest.test_case "cutoff zero" `Quick test_spline1d_cutoff_zero;
          Alcotest.test_case "cusp" `Quick test_spline1d_cusp;
          Alcotest.test_case "vgl fd" `Quick test_spline1d_vgl_fd;
          Alcotest.test_case "invalid" `Quick test_spline1d_invalid;
          Alcotest.test_case "narrow (f32 coefficients)" `Quick
            test_spline1d_narrow;
        ] );
      ( "tridiag",
        [
          Alcotest.test_case "simple" `Quick test_tridiag_simple;
          Alcotest.test_case "cyclic" `Quick test_tridiag_cyclic;
        ] );
      ( "bspline3d",
        [
          Alcotest.test_case "constant" `Quick test_bspline3d_constant;
          Alcotest.test_case "interpolation" `Quick test_bspline3d_interpolation;
          Alcotest.test_case "vgh fd" `Quick test_bspline3d_vgh_fd;
          Alcotest.test_case "periodic wrap" `Quick test_bspline3d_periodic_wrap;
          Alcotest.test_case "f32 vs f64" `Quick test_bspline3d_f32_close_to_f64;
          Alcotest.test_case "table bytes" `Quick test_bspline3d_table_bytes;
          Alcotest.test_case "tiled matches untiled" `Quick
            test_tiled_matches_untiled;
          Alcotest.test_case "tiled batch bit-identical" `Quick
            test_tiled_batch_bit_identical;
          Alcotest.test_case "tiled shapes" `Quick test_tiled_shapes;
        ] );
      ( "properties",
        qt
          [
            prop_partition_of_unity; prop_spline_zero_outside;
            prop_tile_invariant;
          ] );
    ]
