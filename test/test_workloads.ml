open Oqmc_containers
open Oqmc_core
open Oqmc_workloads
open Oqmc_spline

let checkf tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- specs (Table 1) ---------- *)

let test_spec_table1_numbers () =
  check_int "graphite N" 256 Spec.graphite.Spec.n;
  check_int "graphite ions" 64 Spec.graphite.Spec.n_ion;
  check_int "graphite SPOs" 80 Spec.graphite.Spec.n_spos;
  check_int "be N" 256 Spec.be64.Spec.n;
  check_int "nio32 N" 384 Spec.nio32.Spec.n;
  check_int "nio64 N" 768 Spec.nio64.Spec.n;
  check_int "nio64 SPOs" 240 Spec.nio64.Spec.n_spos;
  check_bool "nio electron count from Z*" true
    (Spec.nio32.Spec.n = 16 * (18 + 6))

let test_spec_bspline_sizes () =
  let near expect got = abs_float (got -. expect) /. expect < 0.15 in
  check_bool "graphite 0.1 GB" true (near 0.1 (Spec.bspline_gb Spec.graphite));
  check_bool "be 1.4 GB" true (near 1.4 (Spec.bspline_gb Spec.be64));
  check_bool "nio32 1.3 GB" true (near 1.3 (Spec.bspline_gb Spec.nio32));
  check_bool "nio64 2.1 GB" true (near 2.1 (Spec.bspline_gb Spec.nio64))

let test_spec_find () =
  Alcotest.(check string) "case-insensitive" "NiO-64"
    (Spec.find "nio-64").Spec.wname;
  Alcotest.check_raises "unknown"
    (Invalid_argument "Spec.find: unknown workload \"foo\"") (fun () ->
      ignore (Spec.find "foo"))

(* ---------- builder ---------- *)

let test_scaled_counts () =
  let s = Builder.scale Spec.nio32 ~reduction:8 in
  check_int "electrons" 48 s.Builder.n_el;
  check_bool "even" true (s.Builder.n_el mod 2 = 0);
  check_bool "ions >= species" true (s.Builder.n_ion >= 2);
  check_bool "spos cover electrons" true (s.Builder.n_spo >= s.Builder.n_el / 2);
  let nx, ny, nz = s.Builder.grid in
  check_bool "grid floors at 8" true (nx >= 8 && ny >= 8 && nz >= 8)

let test_builder_systems_validate () =
  List.iter
    (fun spec ->
      let sys = Builder.make ~reduction:12 spec in
      check_bool "has electrons" true (System.n_electrons sys > 0);
      check_bool "has ions" true (System.n_ions sys > 0);
      check_bool "spin balanced" true (sys.System.n_up = sys.System.n_down))
    Spec.all

let test_ion_positions_inside_box () =
  let box = (4., 6., 8.) in
  let pos = Builder.ion_positions box 17 in
  check_int "count" 17 (Array.length pos);
  Array.iter
    (fun p ->
      check_bool "inside" true
        (p.Vec3.x >= 0. && p.Vec3.x <= 4. && p.Vec3.y >= 0. && p.Vec3.y <= 6.
        && p.Vec3.z >= 0. && p.Vec3.z <= 8.))
    pos;
  (* distinct positions *)
  for i = 0 to 16 do
    for j = i + 1 to 16 do
      check_bool "distinct" true (Vec3.dist pos.(i) pos.(j) > 1e-6)
    done
  done

let test_builder_deterministic () =
  let s1 = Builder.make ~seed:5 ~reduction:12 Spec.graphite in
  let s2 = Builder.make ~seed:5 ~reduction:12 Spec.graphite in
  (* Same seed must produce identical orbital tables: compare an SPO
     evaluation. *)
  let out1 = Array.make s1.System.spo.Oqmc_wavefunction.Spo.n_orb 0. in
  let out2 = Array.make s2.System.spo.Oqmc_wavefunction.Spo.n_orb 0. in
  let r = Vec3.make 1. 2. 3. in
  s1.System.spo.Oqmc_wavefunction.Spo.eval_v r out1;
  s2.System.spo.Oqmc_wavefunction.Spo.eval_v r out2;
  Alcotest.(check (array (float 0.))) "identical tables" out1 out2

(* ---------- jastrow sets (Fig. 3) ---------- *)

let test_ee_cusps () =
  let cutoff = 4.0 in
  let set = Jastrow_sets.ee_set ~cutoff in
  let slope f =
    let _, d, _ = Cubic_spline_1d.evaluate_vgl f 1e-9 in
    d
  in
  checkf 1e-4 "uu cusp -1/4" (-0.25) (slope set.(0).(0));
  checkf 1e-4 "ud cusp -1/2" (-0.5) (slope set.(0).(1));
  check_bool "symmetric" true (set.(0).(1) == set.(1).(0));
  (* deeper at contact for the stronger cusp *)
  check_bool "ud above uu at 0" true
    (Cubic_spline_1d.evaluate set.(0).(1) 1e-9
    > Cubic_spline_1d.evaluate set.(0).(0) 1e-9)

let test_functors_vanish_at_cutoff () =
  let cutoff = 3.5 in
  let fns =
    Jastrow_sets.two_body ~cusp:(-0.5) ~cutoff ()
    :: Array.to_list (Jastrow_sets.ion_set ~cutoff Spec.nio32.Spec.species)
  in
  List.iter
    (fun f ->
      checkf 1e-8 "zero at cutoff" 0. (Cubic_spline_1d.evaluate f cutoff);
      checkf 1e-8 "zero beyond" 0. (Cubic_spline_1d.evaluate f (cutoff +. 1.)))
    fns

let test_ion_set_ordering () =
  (* Ni (Z*=18) binds deeper and shorter-ranged than O (Z*=6). *)
  let set = Jastrow_sets.ion_set ~cutoff:3.5 Spec.nio32.Spec.species in
  let ni = set.(0) and o = set.(1) in
  check_bool "Ni deeper at origin" true
    (Cubic_spline_1d.evaluate ni 1e-9 < Cubic_spline_1d.evaluate o 1e-9);
  check_bool "Ni shorter ranged" true
    (abs_float (Cubic_spline_1d.evaluate ni 1.5)
    < abs_float (Cubic_spline_1d.evaluate o 1.5) +. 1e-6)

let test_tabulate () =
  let f = Jastrow_sets.two_body ~cusp:(-0.5) ~cutoff:3.0 () in
  let tab = Jastrow_sets.tabulate f ~points:10 in
  check_int "points" 10 (Array.length tab);
  Array.iter
    (fun (r, u) ->
      checkf 1e-12 "consistent" (Cubic_spline_1d.evaluate f r) u)
    tab

(* ---------- nlpp channels ---------- *)

let test_nlpp_channels () =
  let chans = Builder.nlpp_channels Spec.nio32.Spec.species in
  check_int "two species" 2 (Array.length chans);
  List.iter
    (fun (c : Oqmc_hamiltonian.Nlpp.channel) ->
      check_bool "positive cutoff" true (c.Oqmc_hamiltonian.Nlpp.cutoff > 0.);
      check_bool "d channel for Ni" true (c.Oqmc_hamiltonian.Nlpp.l = 2))
    chans.(0).Oqmc_hamiltonian.Nlpp.channels;
  let be = Builder.nlpp_channels Spec.be64.Spec.species in
  check_bool "no pp for Be" true
    (be.(0).Oqmc_hamiltonian.Nlpp.channels = [])

(* ---------- validation systems ---------- *)

(* ---------- mixed-precision orbital tables ---------- *)

(* f32 coefficient storage rounds each coefficient once at store time;
   values, gradients and laplacians evaluated from the rounded table must
   stay within a few units of f32 epsilon (relative to the orbital set's
   magnitude) of the f64 table — and must NOT be bit-identical, or the
   precision knob is not actually narrowing the storage. *)
let test_spline_f32_vs_f64 spec () =
  let mk precision = Builder.make ~seed:7 ~reduction:16 ~precision spec in
  let s32 = mk `F32 and s64 = mk `F64 in
  let spo32 = s32.System.spo and spo64 = s64.System.spo in
  let n_orb = spo64.Oqmc_wavefunction.Spo.n_orb in
  check_int "same orbital count" n_orb spo32.Oqmc_wavefunction.Spo.n_orb;
  let vgl32 = Oqmc_wavefunction.Spo.make_vgl n_orb in
  let vgl64 = Oqmc_wavefunction.Spo.make_vgl n_orb in
  let bx, by, bz = (Builder.scale spec ~reduction:16).Builder.box in
  let rng = Oqmc_rng.Xoshiro.create 31 in
  let rel_tol = 1e-4 in
  let max_rel = ref 0. and max_abs32 = ref 0. in
  let check_arrays what (a64 : float array) (a32 : float array) =
    let scale = ref 0. in
    Array.iter (fun x -> scale := Float.max !scale (abs_float x)) a64;
    let scale = Float.max !scale 1e-12 in
    for m = 0 to n_orb - 1 do
      let d = abs_float (a64.(m) -. a32.(m)) /. scale in
      max_rel := Float.max !max_rel d;
      if d > rel_tol then
        Alcotest.failf "%s orbital %d: rel err %.3g > %.3g" what m d rel_tol
    done
  in
  for _ = 1 to 50 do
    let p =
      Vec3.make
        (Oqmc_rng.Xoshiro.uniform rng *. bx)
        (Oqmc_rng.Xoshiro.uniform rng *. by)
        (Oqmc_rng.Xoshiro.uniform rng *. bz)
    in
    spo64.Oqmc_wavefunction.Spo.eval_vgl p vgl64;
    spo32.Oqmc_wavefunction.Spo.eval_vgl p vgl32;
    check_arrays "value" vgl64.Oqmc_wavefunction.Spo.v
      vgl32.Oqmc_wavefunction.Spo.v;
    check_arrays "grad x" vgl64.Oqmc_wavefunction.Spo.gx
      vgl32.Oqmc_wavefunction.Spo.gx;
    check_arrays "grad y" vgl64.Oqmc_wavefunction.Spo.gy
      vgl32.Oqmc_wavefunction.Spo.gy;
    check_arrays "grad z" vgl64.Oqmc_wavefunction.Spo.gz
      vgl32.Oqmc_wavefunction.Spo.gz;
    check_arrays "laplacian" vgl64.Oqmc_wavefunction.Spo.lap
      vgl32.Oqmc_wavefunction.Spo.lap;
    for m = 0 to n_orb - 1 do
      max_abs32 :=
        Float.max !max_abs32
          (abs_float
             (vgl64.Oqmc_wavefunction.Spo.v.(m)
             -. vgl32.Oqmc_wavefunction.Spo.v.(m)))
    done
  done;
  check_bool "f32 storage actually rounds" true (!max_abs32 > 0.);
  check_bool "error within f32 budget" true (!max_rel <= rel_tol)

let test_validation_energies () =
  checkf 1e-12 "3 HO fermions"
    (1.5 +. 2.5 +. 2.5)
    (Validation.harmonic_exact_energy ~n:3 ~omega:1.0);
  let e1 = Validation.free_fermions_exact_energy ~n:3 ~box:5. in
  (* orbitals 1 (k=0), cos, sin of the smallest G: E = 2 × G²/2. *)
  let g = 2. *. Float.pi /. 5. in
  checkf 1e-10 "3 plane waves" (g *. g) e1

let () =
  Alcotest.run "workloads"
    [
      ( "spec",
        [
          Alcotest.test_case "table1 numbers" `Quick test_spec_table1_numbers;
          Alcotest.test_case "bspline sizes" `Quick test_spec_bspline_sizes;
          Alcotest.test_case "find" `Quick test_spec_find;
        ] );
      ( "builder",
        [
          Alcotest.test_case "scaled counts" `Quick test_scaled_counts;
          Alcotest.test_case "systems validate" `Quick
            test_builder_systems_validate;
          Alcotest.test_case "ion positions" `Quick
            test_ion_positions_inside_box;
          Alcotest.test_case "deterministic" `Quick test_builder_deterministic;
        ] );
      ( "jastrow_sets",
        [
          Alcotest.test_case "cusps" `Quick test_ee_cusps;
          Alcotest.test_case "cutoff" `Quick test_functors_vanish_at_cutoff;
          Alcotest.test_case "ion ordering" `Quick test_ion_set_ordering;
          Alcotest.test_case "tabulate" `Quick test_tabulate;
        ] );
      ("nlpp", [ Alcotest.test_case "channels" `Quick test_nlpp_channels ]);
      ( "mixed_precision",
        [
          Alcotest.test_case "nio32 f32 vs f64 vgl" `Quick
            (test_spline_f32_vs_f64 Spec.nio32);
          Alcotest.test_case "graphite f32 vs f64 vgl" `Quick
            (test_spline_f32_vs_f64 Spec.graphite);
        ] );
      ( "validation",
        [ Alcotest.test_case "exact energies" `Quick test_validation_energies ]
      );
    ]
