open Oqmc_core
open Oqmc_workloads
open Oqmc_perfmodel
open Oqmc_autotune

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Model-only choices against a published machine descriptor are pure
   functions of the system dimensions — no microbenchmarks, no noise —
   so the tests can pin exact behaviour. *)

let choose ?(walkers = 16) sys =
  Tuner.choose ~machine:Machine.bdw ~walkers ~domains:1
    ~variant:Variant.Current ~precision:`F32 ~sys ()

let test_small_det_keeps_rank1 () =
  (* 3x3 determinant per spin: delayed updates have nothing to amortize
     and the model must not pick a rank above 1. *)
  let sys = Validation.harmonic ~n:6 ~omega:1.0 in
  let c = choose sys in
  check_int "delay" 1 c.Tuner.knobs.Tuner.delay;
  check_bool "crowd sane" true
    (c.Tuner.knobs.Tuner.crowd >= 1 && c.Tuner.knobs.Tuner.crowd <= 16);
  check_bool "grain covers crowd" true
    (c.Tuner.knobs.Tuner.grain >= c.Tuner.knobs.Tuner.crowd)

let test_large_det_delays () =
  (* 96 electrons per spin: register reuse across accumulated ranks makes
     a delayed flush strictly cheaper in the model, so the chosen rank
     must rise above rank-1 (and stay in the candidate set). *)
  let sys = Validation.electron_gas ~n_up:96 ~n_down:96 ~box:10. () in
  let c = choose sys in
  check_bool "delay > 1" true (c.Tuner.knobs.Tuner.delay > 1);
  check_bool "delay in candidates" true
    (List.mem c.Tuner.knobs.Tuner.delay [ 4; 8; 16 ]);
  check_bool "speedup predicted" true (c.Tuner.predicted_speedup >= 1.)

let test_deterministic () =
  let sys = Validation.electron_gas ~n_up:24 ~n_down:24 ~box:8. () in
  let a = choose sys and b = choose sys in
  check_int "crowd" a.Tuner.knobs.Tuner.crowd b.Tuner.knobs.Tuner.crowd;
  check_int "delay" a.Tuner.knobs.Tuner.delay b.Tuner.knobs.Tuner.delay;
  check_int "grain" a.Tuner.knobs.Tuner.grain b.Tuner.knobs.Tuner.grain

let test_crowd_capped_by_walkers () =
  (* crowd can never exceed the walkers available to one domain. *)
  let sys = Validation.harmonic ~n:6 ~omega:1.0 in
  let c = choose ~walkers:2 sys in
  check_bool "crowd <= walkers" true (c.Tuner.knobs.Tuner.crowd <= 2)

let test_choice_json_roundtrip () =
  let sys = Validation.harmonic ~n:6 ~omega:1.0 in
  let c = choose sys in
  let doc = Oqmc_obs.Jsonx.to_string (Tuner.choice_json c) in
  match Oqmc_obs.Jsonx.parse_string_exn doc with
  | Oqmc_obs.Jsonx.Obj fields ->
      check_bool "has knobs" true (List.mem_assoc "knobs" fields);
      check_bool "has machine" true (List.mem_assoc "machine" fields);
      check_bool "has candidates" true (List.mem_assoc "candidates" fields)
  | _ -> Alcotest.fail "choice JSON is not an object"

let test_publish_gauges () =
  let sys = Validation.harmonic ~n:6 ~omega:1.0 in
  let c = choose sys in
  Tuner.publish c;
  let ms = Oqmc_obs.Metrics.snapshot () in
  let gauge name =
    match Oqmc_obs.Metrics.find ms name with
    | Some (Oqmc_obs.Metrics.Gauge g) -> g
    | _ -> Alcotest.failf "metric missing: %s" name
  in
  check_int "autotune.crowd gauge" c.Tuner.knobs.Tuner.crowd
    (int_of_float (gauge "autotune.crowd"));
  check_int "autotune.delay gauge" c.Tuner.knobs.Tuner.delay
    (int_of_float (gauge "autotune.delay"))

let () =
  Alcotest.run "autotune"
    [
      ( "tuner",
        [
          Alcotest.test_case "small det keeps rank-1" `Quick
            test_small_det_keeps_rank1;
          Alcotest.test_case "large det delays" `Quick test_large_det_delays;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "crowd capped by walkers" `Quick
            test_crowd_capped_by_walkers;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "choice json" `Quick test_choice_json_roundtrip;
          Alcotest.test_case "metrics gauges" `Quick test_publish_gauges;
        ] );
    ]
