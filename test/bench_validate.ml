(* Validate BENCH_*.json records: each file must parse as JSON and open
   with the shared header — {"header": {"schema": N, "precision": ...,
   "delay": ...}} — so benches stay diffable across PRs and scripts can
   refuse shapes they do not understand.  Driven by
   scripts/validate_bench.sh; exits non-zero naming the first offender. *)

module Jsonx = Oqmc_obs.Jsonx

let fail path fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "validate_bench: %s: %s\n" path s;
      exit 1)
    fmt

let validate path =
  let body =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error e -> fail path "unreadable: %s" e
  in
  let j =
    try Jsonx.parse_string_exn body
    with e -> fail path "does not parse as JSON: %s" (Printexc.to_string e)
  in
  let header =
    match Jsonx.member "header" j with
    | Some (Jsonx.Obj _ as h) -> h
    | Some _ -> fail path "header is not an object"
    | None -> fail path "missing the required \"header\" object"
  in
  let req_num key =
    match Option.bind (Jsonx.member key header) Jsonx.to_float with
    | Some v when Float.is_finite v -> v
    | _ -> fail path "header lacks a numeric %S" key
  in
  let schema = req_num "schema" in
  if schema <> 1. then fail path "unknown header schema version %g" schema;
  (match Option.bind (Jsonx.member "precision" header) Jsonx.to_str with
  | Some ("f32" | "f64") -> ()
  | Some other -> fail path "header precision must be f32|f64, got %S" other
  | None -> fail path "header lacks a string \"precision\"");
  let delay = req_num "delay" in
  if delay < 1. || not (Float.is_integer delay) then
    fail path "header delay must be a positive integer, got %g" delay;
  Printf.printf "validate_bench: %s OK (schema %g, %s, delay %g)\n" path
    schema
    (Option.get (Option.bind (Jsonx.member "precision" header) Jsonx.to_str))
    delay

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: bench_validate BENCH_foo.json ...";
    exit 2
  end;
  Array.iter validate (Array.sub Sys.argv 1 (Array.length Sys.argv - 1))
