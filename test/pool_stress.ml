(* Pool stress + smoke: the @bench-smoke alias.

   1. A tiny end-to-end experiment: VMC and DMC on the harmonic
      validation system through 2 domains and a 4-walker crowd — the
      whole pool + crowd stack in a few hundred milliseconds.
   2. A pool stress run: 1000 generations of real engine sweeps over a
      4-domain runner, asserting
        - no domain leak (exactly 3 spawns for the whole run),
        - every generation covers every walker exactly once,
        - merged kernel-timer totals and counts are monotone across the
          run (workers publish their timing into the pool's engines, not
          into lost per-spawn copies).

   Exits non-zero on any violated invariant, so it can gate CI. *)

open Oqmc_containers
open Oqmc_core
open Oqmc_rng

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check name cond = if not cond then fail "pool_stress: FAILED %s" name

let smoke () =
  let sys = Oqmc_workloads.Validation.harmonic ~n:4 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current ~seed:2 sys in
  let vmc =
    Vmc.run ~crowd:4 ~factory
      {
        Vmc.n_walkers = 8;
        warmup = 5;
        blocks = 2;
        steps_per_block = 10;
        tau = 0.3;
        seed = 7;
        n_domains = 2;
      }
  in
  check "vmc energy finite" (Float.is_finite vmc.Vmc.energy);
  let dmc =
    Dmc.run ~crowd:4 ~factory
      {
        Dmc.target_walkers = 8;
        warmup = 3;
        generations = 10;
        tau = 0.05;
        seed = 8;
        n_domains = 2;
        ranks = 1;
      }
  in
  check "dmc energy finite" (Float.is_finite dmc.Dmc.energy);
  Printf.printf "smoke: vmc E=%.6f dmc E=%.6f\n%!" vmc.Vmc.energy
    dmc.Dmc.energy

let stress () =
  let n_domains = 4 and generations = 1000 and n_walkers = 8 in
  let sys = Oqmc_workloads.Validation.harmonic ~n:2 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current ~seed:4 sys in
  let spawns_before = Runner.total_spawns () in
  let t0 = Timers.now () in
  Runner.with_runner ~n_domains ~factory (fun runner ->
      (* per-walker state, seeded from engine 0 *)
      let e0 = Runner.engine runner 0 in
      let rng0 = Xoshiro.create 99 in
      let walkers =
        Array.init n_walkers (fun _ ->
            let w = Oqmc_particle.Walker.create e0.Engine_api.n_electrons in
            e0.Engine_api.randomize rng0;
            e0.Engine_api.register_walker w;
            e0.Engine_api.save_walker w;
            w)
      in
      let rngs = Array.init n_walkers (fun i -> Xoshiro.create (1000 + i)) in
      let prev = ref [] in
      let covered = Atomic.make 0 in
      for gen = 1 to generations do
        Runner.iter_walkers runner
          (Array.mapi (fun i w -> (i, w)) walkers)
          ~f:(fun e (i, w) ->
            Atomic.incr covered;
            e.Engine_api.restore_walker w;
            ignore (e.Engine_api.sweep rngs.(i) ~tau:0.3);
            e.Engine_api.save_walker w);
        if gen mod 250 = 0 then begin
          check
            (Printf.sprintf "coverage at gen %d" gen)
            (Atomic.get covered = gen * n_walkers);
          (* Timer totals/counts must only grow: worker time lands in the
             pool's persistent engines. *)
          let snap = Timers.snapshot (Runner.merged_timers runner) in
          List.iter
            (fun (k, t_old, c_old) ->
              match
                List.find_opt (fun (k', _, _) -> String.equal k k') snap
              with
              | None -> fail "pool_stress: timer %s disappeared" k
              | Some (_, t_new, c_new) ->
                  check
                    (Printf.sprintf "timer %s total monotone" k)
                    (t_new >= t_old);
                  check
                    (Printf.sprintf "timer %s count monotone" k)
                    (c_new >= c_old))
            !prev;
          prev := snap
        end
      done);
  let spawned = Runner.total_spawns () - spawns_before in
  check
    (Printf.sprintf "no domain leak (spawned %d, want %d)" spawned
       (n_domains - 1))
    (spawned = n_domains - 1);
  Printf.printf
    "stress: %d generations x %d walkers on %d domains in %.2fs, %d spawns\n%!"
    generations n_walkers n_domains
    (Timers.now () -. t0)
    spawned

let () =
  smoke ();
  stress ();
  print_endline "pool_stress: OK"
