(* Serve soak — the service-layer acceptance harness.

   Phase 1 (kill-server acceptance): boot the daemon with four
   statistical hydrogen-DMC jobs sized so that two are running and two
   are queued, SIGKILL the daemon mid-flight, restart it on the same
   state directory, and prove that every job still reaches Done with
   energies and per-generation series BIT-IDENTICAL to an uninterrupted
   reference run — the journal replay re-queued the queued jobs and the
   interrupted runners resumed from their snapshots.  The journal must
   show exactly one Submit and at most one terminal record per job: no
   loss, no duplication.

   Phase 2 (service chaos): a seeded job mix driven by
   Chaos.plan_service — clients that hang up before their reply, the
   daemon SIGKILLed again, submission storms beyond the admission
   bound, and cache entries corrupted on disk.  Every job must
   terminate in a definite state, accounting must stay conserved, and
   no client call may hang.

   Run with `dune build @serve-soak`. *)

open Oqmc_serve
module Jsonx = Oqmc_obs.Jsonx
module Chaos = Oqmc_core.Chaos
module Input = Oqmc_core.Input

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt
let check name ok = if not ok then die "%s" name
let info fmt = Printf.printf (fmt ^^ "\n%!")

let base =
  let d = Printf.sprintf "/tmp/oqmc-sk.%d" (Unix.getpid ()) in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fork_daemon config =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> (
      try
        Server.serve config;
        Stdlib.exit 0
      with e ->
        prerr_endline ("daemon: " ^ Printexc.to_string e);
        Stdlib.exit 1)
  | pid -> pid

let wait_pid pid = snd (Unix.waitpid [] pid)

let stats_of socket =
  let fd = Client.connect ~attempts:200 socket in
  Fun.protect ~finally:(fun () -> Client.close fd) (fun () -> Client.stats fd)

let query_of socket id =
  let fd = Client.connect ~attempts:200 socket in
  Fun.protect ~finally:(fun () -> Client.close fd) (fun () -> Client.query fd id)

(* A request that races the daemon's death sees the socket close under
   it; the polls below treat that as "not yet" and retry against the
   next incarnation, bounded by their own timeout. *)
let transient = function
  | Oqmc_dist.Wire.Closed | Oqmc_dist.Wire.Timeout -> true
  | Unix.Unix_error
      ((Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.EPIPE | Unix.ENOENT), _, _)
    ->
      true
  | _ -> false

(* Poll [f] every 100 ms until it returns [Some], or die after
   [timeout] — a soak that waits forever is itself a hung client. *)
let poll ~timeout ~what f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match f () with
    | Some v -> v
    | None ->
        if Unix.gettimeofday () -. t0 > timeout then
          die "timed out after %.0f s waiting for %s" timeout what;
        Unix.sleepf 0.1;
        go ()
  in
  go ()

(* Poll to a DEFINITE state: Done, Failed, Rejected — or Error, the
   daemon's definite answer for a result that is no longer servable
   (e.g. journal says done but the cache entry was corrupted away). *)
let await_terminal socket ids ~timeout =
  List.map
    (fun id ->
      ( id,
        poll ~timeout ~what:(id ^ " to reach a definite state") (fun () ->
            match query_of socket id with
            | Proto.Job_done { outcome; _ } -> Some (`Done outcome)
            | Proto.Job_failed { reason; _ } -> Some (`Failed reason)
            | Proto.Rejected { reason; _ } -> Some (`Rejected reason)
            | Proto.Error reason -> Some (`Lost reason)
            | _ -> None
            | exception e when transient e -> None) ))
    ids

let await_done socket ids ~timeout =
  List.map
    (fun (id, state) ->
      match state with
      | `Done outcome -> outcome
      | `Failed reason -> die "%s failed: %s" id reason
      | `Rejected reason -> die "%s rejected: %s" id reason
      | `Lost reason -> die "%s lost: %s" id reason)
    (await_terminal socket ids ~timeout)

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let same_physics (a : Job.outcome) (b : Job.outcome) =
  same_float a.Job.energy b.Job.energy
  && same_float a.Job.error b.Job.error
  && same_float a.Job.variance b.Job.variance
  && same_float a.Job.acceptance b.Job.acceptance
  && a.Job.gens = b.Job.gens
  && Array.length a.Job.series = Array.length b.Job.series
  && Array.for_all2 same_float a.Job.series b.Job.series

(* ---------- phase 1: SIGKILL the server mid-job ---------- *)

(* Statistical workload (hydrogen DMC): unlike the zero-variance
   harmonic check, every trajectory differs, so bit-identity across a
   kill + snapshot-resume is a real statement. *)
let p1_deck i =
  Printf.sprintf
    "method = dmc\nworkload = hydrogen\nwalkers = 48\nblocks = 20\n\
     steps = 10\ntau = 0.02\nseed = %d\n"
    (100 + i)

let p1_config socket dir =
  {
    Server.default_config with
    Server.socket;
    dir;
    max_queue = 8;
    max_running = 2;
    default_retries = 5;
    grace_s = 3.;
    snapshot_every = 2;
    telemetry = None;
  }

let phase1 () =
  info "phase 1: kill-server acceptance";
  (* Uninterrupted reference outcomes. *)
  let ref_socket = Filename.concat base "ref.sock" in
  let ref_dir = Filename.concat base "ref" in
  let refd = fork_daemon (p1_config ref_socket ref_dir) in
  let reference =
    List.init 4 (fun i ->
        match
          Client.run_deck ~socket:ref_socket ~client:"ref" (p1_deck i)
        with
        | Ok o -> o
        | Error e -> die "reference job %d: %s" i e)
  in
  Unix.kill refd Sys.sigterm;
  check "reference daemon drained" (wait_pid refd = Unix.WEXITED 0);

  (* The same four decks, two running + two queued, then SIGKILL. *)
  let socket = Filename.concat base "p1.sock" in
  let dir = Filename.concat base "p1" in
  let cfg = p1_config socket dir in
  let daemon = fork_daemon cfg in
  let fd = Client.connect ~attempts:200 socket in
  let ids =
    List.init 4 (fun i ->
        match
          Client.submit fd ~client:"soak" ~retries:5 ~wait:false (p1_deck i)
        with
        | Proto.Accepted { id; cached; _ } ->
            check "phase-1 jobs must run, not hit the cache" (not cached);
            id
        | r ->
            die "submit %d: %s" i (Jsonx.to_string (Proto.reply_to_json r)))
  in
  Client.close fd;
  poll ~timeout:30. ~what:"2 running + 2 queued" (fun () ->
      match stats_of socket with
      | s -> if s.Proto.running = 2 && s.Proto.queued = 2 then Some () else None
      | exception e when transient e -> None);
  (* Let the runners cross at least one snapshot boundary so the
     restart has something to resume from. *)
  let snapdir = Filename.concat dir "snap" in
  poll ~timeout:30. ~what:"a snapshot on disk" (fun () ->
      match Sys.readdir snapdir with
      | [||] -> None
      | _ -> Some ()
      | exception Sys_error _ -> None);
  Unix.sleepf 0.3;
  Unix.kill daemon Sys.sigkill;
  (match wait_pid daemon with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | st ->
      die "expected the daemon to die by SIGKILL, got %s"
        (match st with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s));
  info "  daemon SIGKILLed with 2 jobs running and 2 queued";

  (* Restart on the same state directory: journal replay + snapshot
     resume must finish all four, bit-identical to the reference. *)
  let daemon = fork_daemon cfg in
  let outcomes = await_done socket ids ~timeout:120. in
  List.iteri
    (fun i (got, want) ->
      check
        (Printf.sprintf "job %d bit-identical to the uninterrupted run" i)
        (same_physics got want);
      check (Printf.sprintf "job %d not drained" i) (not got.Job.drained))
    (List.combine outcomes reference);
  check "at least one job resumed from a snapshot"
    (List.exists (fun o -> o.Job.resumed_from > 0) outcomes);
  info "  all 4 jobs Done bit-identical (%d resumed from snapshots)"
    (List.length (List.filter (fun o -> o.Job.resumed_from > 0) outcomes));

  (* Journal audit across the kill: one Submit, at most one terminal
     per job — no loss, no duplication. *)
  let records = Journal.replay (Filename.concat dir "journal") in
  List.iter
    (fun id ->
      let submits =
        List.length
          (List.filter
             (function
               | Journal.Submit s -> s.Job.id = id | _ -> false)
             records)
      in
      let terminals =
        List.length
          (List.filter
             (function
               | Journal.Done { id = i; _ }
               | Journal.Failed { id = i; _ }
               | Journal.Cancelled { id = i; _ } ->
                   i = id
               | _ -> false)
             records)
      in
      check (id ^ ": exactly one Submit across the kill") (submits = 1);
      check (id ^ ": exactly one terminal record") (terminals = 1))
    ids;
  Unix.kill daemon Sys.sigterm;
  check "restarted daemon drained" (wait_pid daemon = Unix.WEXITED 0);
  let after = Journal.recover (Journal.replay (Filename.concat dir "journal")) in
  check "compacted journal has nothing pending"
    (after.Journal.r_pending = []);
  info "  journal: 1 Submit + 1 terminal per job, compacted clean"

(* ---------- phase 2: seeded service chaos ---------- *)

let p2_deck i =
  (* Quick VMC jobs; index 7 repeats index 2's physics for a natural
     cache hit (and the corruption target). *)
  let seed = if i = 7 then 202 else 200 + i in
  Printf.sprintf
    "method = vmc\nworkload = harmonic\nwalkers = 32\nblocks = 2\n\
     steps = 8\ntau = 0.3\nseed = %d\n"
    seed

let storm_deck i =
  Printf.sprintf
    "method = vmc\nworkload = harmonic\nwalkers = 16\nblocks = 2\n\
     steps = 6\ntau = 0.3\nseed = %d\n"
    (900 + i)

(* The smallest seed whose 4-event schedule exercises all four attack
   modes, so the soak covers the full matrix deterministically. *)
let chaos_seed =
  let covers seed =
    let c =
      Chaos.service_count (Chaos.plan_service ~seed ~jobs:10 ~events:4 ())
    in
    c.Chaos.disconnects >= 1 && c.Chaos.server_kills >= 1
    && c.Chaos.storms >= 1 && c.Chaos.corruptions >= 1
  in
  let rec find s = if covers s then s else find (s + 1) in
  find 1

let phase2 () =
  let schedule = Chaos.plan_service ~seed:chaos_seed ~jobs:10 ~events:4 () in
  info "phase 2: service chaos (seed %d: %s)" chaos_seed
    (String.concat ", "
       (List.map
          (fun (j, e) ->
            Printf.sprintf "%s@%d" (Chaos.pp_service_event e) j)
          schedule));
  let socket = Filename.concat base "p2.sock" in
  let dir = Filename.concat base "p2" in
  let cfg =
    {
      Server.default_config with
      Server.socket;
      dir;
      max_queue = 3;
      max_running = 2;
      default_retries = 3;
      grace_s = 3.;
      snapshot_every = 2;
      telemetry = Some (Filename.concat base "p2.jsonl");
    }
  in
  let daemon = ref (fork_daemon cfg) in
  let tracked = ref [] in
  let storms_rejected = ref 0 in
  let corruptions = ref 0 in
  (* Submit with a bounded re-poll: right after a storm the queue is
     legitimately full, and backpressure is the expected answer. *)
  let submit_tracked ?(client = "soak") ?(retries = 3) d =
    let id =
      poll ~timeout:60. ~what:"admission (queue drains)" (fun () ->
          (* A transient transport failure here means the reply to an
             admission we may never learn about was lost; resubmitting
             is at-least-once, and the possible untracked twin is
             idempotent (same deck, same cache slot). *)
          match
            let fd = Client.connect ~attempts:200 socket in
            Fun.protect
              ~finally:(fun () -> Client.close fd)
              (fun () -> Client.submit fd ~client ~retries ~wait:false d)
          with
          | Proto.Accepted { id; _ } -> Some id
          | Proto.Rejected { reason; _ } when reason = "queue full" -> None
          | r -> die "submit: %s" (Jsonx.to_string (Proto.reply_to_json r))
          | exception e when transient e -> None)
    in
    tracked := id :: !tracked;
    id
  in
  List.iteri
    (fun i deck ->
      (match List.assoc_opt i schedule with
      | Some Chaos.Client_disconnect ->
          (* Submit waiting for the terminal frame, then hang up before
             it arrives: the daemon must shrug, not crash or stall. *)
          let fd = Client.connect ~attempts:200 socket in
          (match Client.submit fd ~client:"ghost" ~wait:true deck with
          | Proto.Accepted { id; cached; _ } ->
              if not cached then tracked := id :: !tracked
          | Proto.Rejected _ -> ()
          | r ->
              die "ghost submit: %s" (Jsonx.to_string (Proto.reply_to_json r)));
          Client.close fd;
          info "  [%d] client disconnected before its reply" i
      | Some Chaos.Server_kill ->
          Unix.kill !daemon Sys.sigkill;
          ignore (wait_pid !daemon);
          daemon := fork_daemon cfg;
          info "  [%d] server SIGKILLed and restarted" i
      | Some (Chaos.Queue_storm n) ->
          (* Flood well past the admission bound; the daemon must answer
             every one — Accepted or Rejected, never silence. *)
          let fd = Client.connect ~attempts:200 socket in
          let flood = cfg.Server.max_queue + cfg.Server.max_running + n in
          for k = 0 to flood - 1 do
            match
              Client.submit fd ~client:"storm" ~wait:false (storm_deck k)
            with
            | Proto.Accepted { id; _ } -> tracked := id :: !tracked
            | Proto.Rejected { reason; _ } ->
                check "storm rejection names backpressure"
                  (reason = "queue full");
                incr storms_rejected
            | r -> die "storm: %s" (Jsonx.to_string (Proto.reply_to_json r))
          done;
          Client.close fd;
          info "  [%d] storm of %d: %d rejected at the bound" i flood
            !storms_rejected
      | Some Chaos.Cache_corrupt ->
          (* Garble the cached entry for deck 2's physics (if present):
             the next lookup must be a miss, never a wrong result. *)
          let hash = Input.deck_hash (Input.parse_string (p2_deck 2)) in
          let file = Filename.concat (Filename.concat dir "cache") hash in
          if Sys.file_exists file then (
            let body = In_channel.with_open_bin file In_channel.input_all in
            let b = Bytes.of_string body in
            Bytes.set b (Bytes.length b / 2) '\xf0';
            Out_channel.with_open_bin file (fun oc ->
                Out_channel.output_bytes oc b);
            incr corruptions;
            check "corrupt cache entry reads as a miss"
              (Cache.lookup ~dir:(Filename.concat dir "cache") ~hash = None);
            info "  [%d] cache entry corrupted -> miss" i)
          else info "  [%d] cache entry absent (corruption no-op)" i
      | None -> ());
      ignore (submit_tracked ~client:(Printf.sprintf "c%d" (i mod 3)) deck))
    (List.init 10 p2_deck);

  (* Every tracked job must reach a definite terminal state.  Done is
     the norm; a job whose cached result was corrupted away across a
     server kill may answer "lost" — definite, and the client knows to
     resubmit.  Silent limbo is the only failure. *)
  let ids = List.rev !tracked in
  let states = await_terminal socket ids ~timeout:120. in
  let done_, lost =
    List.partition_map
      (fun (id, st) ->
        match st with
        | `Done o -> Left o
        | `Lost reason -> Right (id, reason)
        | `Failed reason -> die "%s failed: %s" id reason
        | `Rejected reason -> die "%s rejected: %s" id reason)
      states
  in
  check "every completed chaos job measured something"
    (List.for_all (fun o -> o.Job.gens > 0) done_);
  check "losses only explainable by the corruption + kill combo"
    (List.length lost <= !corruptions);
  info "  %d jobs reached a definite state through the chaos (%d done, %d \
        lost to corruption)"
    (List.length ids) (List.length done_) (List.length lost);

  (* Conserved accounting in the final incarnation, nothing in flight,
     and a graceful drain.  Reaching this line at all is the zero-hung-
     clients claim: every request above was answered within its
     timeout.  An at-least-once resubmission above can leave an
     untracked twin still draining, so the in-flight check polls. *)
  let s =
    poll ~timeout:60. ~what:"nothing left in flight" (fun () ->
        match stats_of socket with
        | s
          when s.Proto.queued = 0 && s.Proto.running = 0
               && s.Proto.retrying = 0 ->
            Some s
        | _ -> None
        | exception e when transient e -> None)
  in
  check "conserved accounting"
    (s.Proto.accepted
    = s.Proto.done_ + s.Proto.failed + s.Proto.cancelled + s.Proto.queued
      + s.Proto.running + s.Proto.retrying);
  check "storm rejections were recorded"
    (!storms_rejected >= 1 && s.Proto.rejected >= 1);
  Unix.kill !daemon Sys.sigterm;
  check "chaos daemon drained" (wait_pid !daemon = Unix.WEXITED 0);
  info
    "  accounting conserved (accepted %d = done %d + failed %d + cancelled \
     %d), %d storm rejections"
    s.Proto.accepted s.Proto.done_ s.Proto.failed s.Proto.cancelled
    !storms_rejected

let () =
  rm_rf base;
  (try Unix.mkdir base 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let t0 = Unix.gettimeofday () in
  phase1 ();
  phase2 ();
  rm_rf base;
  info "serve soak OK in %.1f s" (Unix.gettimeofday () -. t0)
